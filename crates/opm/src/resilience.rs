//! Meter-local fault injection and the hardened OPM estimator.
//!
//! The netlist-level injector (`apollo_sim::fault`) upsets the *host*
//! design; this module upsets the *meter itself* — the accumulator, the
//! weight ROM and the epoch readout — and hardens the estimator against
//! those upsets:
//!
//! - **Saturating accumulators.** The paper sizes the accumulator at
//!   `B + ⌈log₂Q⌉ + ⌈log₂T⌉` bits, so a fault-free accumulation never
//!   reaches `2^acc_bits`. The hardened meter saturates at
//!   `2^acc_bits − 1` instead of wrapping: bit-exact when healthy, and
//!   a corrupted high bit can no longer alias a huge reading into a
//!   small one.
//! - **Plausibility envelope.** Window outputs have hard structural
//!   bounds (`0 ..= ΣWᵢ`) and, after calibration on a trace, much
//!   tighter empirical bounds. Readings outside the envelope are
//!   *flagged*, never silently consumed.
//! - **Median-of-3 redundancy.** Optionally three meter lanes with
//!   independent ROM copies and accumulators; the reading is the
//!   median, so any single-lane upset is outvoted.
//!
//! Fault decisions follow the same counter-based determinism contract
//! as the netlist injector: every decision is
//! `mix3(seed, epoch, site)`, so a seeded [`MeterFaultPlan`] replays
//! byte-identically, and an **empty** plan leaves the hardened meter
//! bit-exact with the baseline [`QuantizedOpm`].

use crate::quant::{ceil_log2, OpmSpec, QuantizedOpm};
use apollo_core::ApolloError;
use apollo_sim::fault::{mix3, rate_to_threshold};
use apollo_sim::ToggleMatrix;

/// Site salts for meter fault decisions (disjoint from the netlist
/// injector's `REG`/`MEM` salts).
const SITE_ACC: u64 = 0x4143_4300;
const SITE_ROM: u64 = 0x524F_4D00;
const SITE_DROP: u64 = 0x4452_5000;

/// A seeded, deterministic plan of faults inside the meter itself.
///
/// All rates are per **lane** per **epoch** probabilities in `[0, 1]`.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MeterFaultPlan {
    /// Seed for all meter fault decisions.
    pub seed: u64,
    /// Probability of a single-bit upset in a lane's accumulator at the
    /// end of an epoch (before the shift-divide).
    pub counter_flip_rate: f64,
    /// Probability of a *persistent* single-bit corruption of one
    /// (hash-chosen) weight-ROM entry of a lane.
    pub rom_flip_rate: f64,
    /// Probability that a lane's epoch readout is dropped (the lane
    /// holds its previous output, as a stuck readout register would).
    pub drop_rate: f64,
}

impl MeterFaultPlan {
    /// A plan that injects nothing (all rates zero).
    pub fn empty() -> Self {
        MeterFaultPlan {
            seed: 0,
            counter_flip_rate: 0.0,
            rom_flip_rate: 0.0,
            drop_rate: 0.0,
        }
    }

    /// `true` if the plan can never inject a fault.
    pub fn is_empty(&self) -> bool {
        self.counter_flip_rate <= 0.0 && self.rom_flip_rate <= 0.0 && self.drop_rate <= 0.0
    }

    /// Validates the rates.
    ///
    /// # Errors
    /// Returns [`ApolloError::Spec`] if any rate is not a probability.
    pub fn validate(&self) -> Result<(), ApolloError> {
        for (name, r) in [
            ("counter_flip_rate", self.counter_flip_rate),
            ("rom_flip_rate", self.rom_flip_rate),
            ("drop_rate", self.drop_rate),
        ] {
            if !(0.0..=1.0).contains(&r) || r.is_nan() {
                return Err(ApolloError::spec(format!(
                    "meter fault {name} = {r} is not a probability in [0, 1]"
                )));
            }
        }
        Ok(())
    }
}

/// One injected meter fault, in deterministic order.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum MeterFaultEvent {
    /// A transient accumulator bit flip at the end of `epoch`.
    CounterFlip {
        /// Epoch index (0-based).
        epoch: u64,
        /// Meter lane.
        lane: u8,
        /// Flipped accumulator bit.
        bit: u8,
    },
    /// A persistent weight-ROM corruption applied at the start of
    /// `epoch`.
    RomFlip {
        /// Epoch index (0-based).
        epoch: u64,
        /// Meter lane.
        lane: u8,
        /// Corrupted proxy index (ROM word).
        proxy: u32,
        /// Flipped weight bit (within `B`).
        bit: u8,
    },
    /// A lane's epoch readout was dropped; it holds the previous value.
    DroppedEpoch {
        /// Epoch index (0-based).
        epoch: u64,
        /// Meter lane.
        lane: u8,
    },
}

/// Mirrors one meter fault to telemetry the moment it is injected.
/// Before this hook, events only left the meter through an end-of-run
/// [`HardenedMeter::report`] call — runs that never requested a report
/// dropped them silently.
fn emit_meter_event(ev: &MeterFaultEvent) {
    use apollo_telemetry::FieldValue;
    apollo_telemetry::counter("opm.meter.fault_events").inc();
    if !apollo_telemetry::events_enabled() {
        return;
    }
    match ev {
        MeterFaultEvent::CounterFlip { epoch, lane, bit } => apollo_telemetry::emit_event(
            "opm.meter.counter_flip",
            &[
                ("epoch", FieldValue::from(*epoch)),
                ("lane", FieldValue::from(*lane)),
                ("bit", FieldValue::from(*bit)),
            ],
        ),
        MeterFaultEvent::RomFlip {
            epoch,
            lane,
            proxy,
            bit,
        } => apollo_telemetry::emit_event(
            "opm.meter.rom_flip",
            &[
                ("epoch", FieldValue::from(*epoch)),
                ("lane", FieldValue::from(*lane)),
                ("proxy", FieldValue::from(*proxy)),
                ("bit", FieldValue::from(*bit)),
            ],
        ),
        MeterFaultEvent::DroppedEpoch { epoch, lane } => apollo_telemetry::emit_event(
            "opm.meter.dropped_epoch",
            &[
                ("epoch", FieldValue::from(*epoch)),
                ("lane", FieldValue::from(*lane)),
            ],
        ),
    }
}

/// Summary of everything a [`MeterFaultPlan`] injected.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MeterFaultReport {
    /// The plan's seed.
    pub seed: u64,
    /// Epochs processed.
    pub epochs: u64,
    /// Transient accumulator flips injected.
    pub counter_flips: u64,
    /// Persistent ROM corruptions applied.
    pub rom_flips: u64,
    /// Dropped lane readouts.
    pub dropped_epochs: u64,
    /// Every event, in deterministic order.
    pub events: Vec<MeterFaultEvent>,
}

/// Plausibility bounds on a window output.
///
/// [`Envelope::structural`] is always sound: a window output is a
/// shift-divided average of per-cycle sums, each at most `ΣWᵢ`.
/// [`Envelope::calibrate`] tightens it from observed healthy outputs
/// with a symmetric margin.
#[derive(Copy, Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Envelope {
    /// Smallest plausible window output.
    pub min: u64,
    /// Largest plausible window output.
    pub max: u64,
}

impl Envelope {
    /// The loosest sound envelope: `0 ..= ΣWᵢ`.
    pub fn structural(opm: &QuantizedOpm) -> Self {
        let max = opm.weights.iter().map(|&w| w as u64).sum();
        Envelope { min: 0, max }
    }

    /// Calibrates from the healthy window outputs of a trace: the
    /// observed range widened by `margin` (e.g. `0.5` = ±50%), clamped
    /// to the structural bounds.
    pub fn calibrate(opm: &QuantizedOpm, matrix: &ToggleMatrix, margin: f64) -> Self {
        let outs = opm.window_outputs(matrix);
        let structural = Self::structural(opm);
        let (Some(&lo), Some(&hi)) = (outs.iter().min(), outs.iter().max()) else {
            return structural;
        };
        let m = margin.max(0.0);
        let min = ((lo as f64) * (1.0 - m)).floor().max(0.0) as u64;
        let max = (((hi as f64) * (1.0 + m)).ceil() as u64).min(structural.max);
        Envelope { min, max }
    }

    /// `true` if `v` is inside the envelope.
    pub fn contains(&self, v: u64) -> bool {
        (self.min..=self.max).contains(&v)
    }
}

/// Redundancy mode of the hardened meter.
#[derive(Copy, Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Redundancy {
    /// One meter lane (area-neutral hardening only).
    Single,
    /// Three lanes with independent ROM copies and accumulators; the
    /// reading is the median.
    MedianOfThree,
}

impl Redundancy {
    fn lanes(self) -> usize {
        match self {
            Redundancy::Single => 1,
            Redundancy::MedianOfThree => 3,
        }
    }
}

/// One epoch's hardened reading.
#[derive(Copy, Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MeterReading {
    /// Epoch index (0-based).
    pub epoch: u64,
    /// The selected (single-lane or median) window output.
    pub value: u64,
    /// `true` if the reading is untrustworthy: outside the plausibility
    /// envelope, or every lane's readout was dropped this epoch.
    pub flagged: bool,
}

struct Lane {
    rom: Vec<u64>,
    acc: u64,
    last_output: u64,
}

/// An online, fault-tolerant software meter: per-cycle accumulation
/// with saturating arithmetic, per-epoch plausibility checks, optional
/// median-of-3 lanes, and deterministic meter-local fault injection.
///
/// Feed it one cycle at a time with [`HardenedMeter::step`]; it yields
/// a [`MeterReading`] every `T` cycles. With an empty plan its readings
/// are bit-exact with [`QuantizedOpm::window_outputs`] over the same
/// toggle stream.
pub struct HardenedMeter {
    spec: OpmSpec,
    envelope: Envelope,
    lanes: Vec<Lane>,
    acc_max: u64,
    weight_mask: u64,
    shift: u8,
    seed: u64,
    acc_threshold: u64,
    rom_threshold: u64,
    drop_threshold: u64,
    cycle_in_epoch: usize,
    epoch: u64,
    counter_flips: u64,
    rom_flips: u64,
    dropped_epochs: u64,
    events: Vec<MeterFaultEvent>,
}

impl HardenedMeter {
    /// Builds a hardened meter over a quantized model.
    ///
    /// # Errors
    /// Returns [`ApolloError::Spec`] if the model's spec or the plan's
    /// rates are invalid.
    pub fn new(
        opm: &QuantizedOpm,
        envelope: Envelope,
        redundancy: Redundancy,
        plan: &MeterFaultPlan,
    ) -> Result<Self, ApolloError> {
        opm.spec.validate()?;
        plan.validate()?;
        let rom: Vec<u64> = opm.weights.iter().map(|&w| w as u64).collect();
        let lanes = (0..redundancy.lanes())
            .map(|_| Lane {
                rom: rom.clone(),
                acc: 0,
                last_output: 0,
            })
            .collect();
        let acc_bits = opm.spec.accumulator_bits();
        let acc_max = if acc_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << acc_bits) - 1
        };
        Ok(HardenedMeter {
            spec: opm.spec,
            envelope,
            lanes,
            acc_max,
            weight_mask: (1u64 << opm.spec.b) - 1,
            shift: ceil_log2(opm.spec.t),
            seed: plan.seed,
            acc_threshold: rate_to_threshold(plan.counter_flip_rate),
            rom_threshold: rate_to_threshold(plan.rom_flip_rate),
            drop_threshold: rate_to_threshold(plan.drop_rate),
            cycle_in_epoch: 0,
            epoch: 0,
            counter_flips: 0,
            rom_flips: 0,
            dropped_epochs: 0,
            events: Vec::new(),
        })
    }

    /// Accumulator saturation ceiling (`2^acc_bits − 1`). A fault-free
    /// accumulation never reaches it — see the module docs.
    pub fn acc_max(&self) -> u64 {
        self.acc_max
    }

    /// Feeds one cycle of proxy toggles (`toggled(k)` = proxy `k`
    /// toggled this cycle) and returns the epoch reading when the
    /// window completes.
    pub fn step(&mut self, toggled: impl Fn(usize) -> bool) -> Option<MeterReading> {
        if self.cycle_in_epoch == 0 {
            self.corrupt_roms();
        }
        let q = self.spec.q;
        let mut sums = [0u64; 3];
        for (li, lane) in self.lanes.iter().enumerate() {
            let mut s = 0u64;
            for k in 0..q {
                if toggled(k) {
                    s += lane.rom[k];
                }
            }
            sums[li] = s;
        }
        for (li, lane) in self.lanes.iter_mut().enumerate() {
            lane.acc = lane.acc.saturating_add(sums[li]).min(self.acc_max);
        }
        self.cycle_in_epoch += 1;
        if self.cycle_in_epoch < self.spec.t {
            return None;
        }
        self.cycle_in_epoch = 0;
        Some(self.finish_epoch())
    }

    /// Applies persistent ROM corruption decisions at an epoch start.
    fn corrupt_roms(&mut self) {
        if self.rom_threshold == 0 {
            return;
        }
        for li in 0..self.lanes.len() {
            let h = mix3(self.seed, self.epoch, SITE_ROM ^ li as u64);
            if h < self.rom_threshold {
                let pick = mix3(self.seed, self.epoch, SITE_ROM ^ li as u64 ^ 0x100);
                let proxy = (pick % self.spec.q as u64) as u32;
                let bit = ((pick >> 32) % self.spec.b as u64) as u8;
                let lane = &mut self.lanes[li];
                lane.rom[proxy as usize] =
                    (lane.rom[proxy as usize] ^ (1 << bit)) & self.weight_mask;
                self.rom_flips += 1;
                let ev = MeterFaultEvent::RomFlip {
                    epoch: self.epoch,
                    lane: li as u8,
                    proxy,
                    bit,
                };
                emit_meter_event(&ev);
                self.events.push(ev);
            }
        }
    }

    /// Ends the current epoch: injects counter flips and drops, reads
    /// out each lane, selects the reading and checks the envelope.
    fn finish_epoch(&mut self) -> MeterReading {
        let acc_bits = self.spec.accumulator_bits().min(63);
        let mut outputs = [0u64; 3];
        let mut all_dropped = true;
        let (seed, epoch) = (self.seed, self.epoch);
        let events = &mut self.events;
        for (li, lane) in self.lanes.iter_mut().enumerate() {
            if self.acc_threshold > 0 {
                let h = mix3(seed, epoch, SITE_ACC ^ li as u64);
                if h < self.acc_threshold {
                    let bit =
                        (mix3(seed, epoch, SITE_ACC ^ li as u64 ^ 0x100) % acc_bits as u64) as u8;
                    lane.acc ^= 1 << bit;
                    self.counter_flips += 1;
                    let ev = MeterFaultEvent::CounterFlip {
                        epoch,
                        lane: li as u8,
                        bit,
                    };
                    emit_meter_event(&ev);
                    events.push(ev);
                }
            }
            let dropped = self.drop_threshold > 0
                && mix3(seed, epoch, SITE_DROP ^ li as u64) < self.drop_threshold;
            if dropped {
                self.dropped_epochs += 1;
                let ev = MeterFaultEvent::DroppedEpoch {
                    epoch,
                    lane: li as u8,
                };
                emit_meter_event(&ev);
                events.push(ev);
            } else {
                lane.last_output = (lane.acc & self.acc_max) >> self.shift;
                all_dropped = false;
            }
            outputs[li] = lane.last_output;
            lane.acc = 0;
        }
        let value = match self.lanes.len() {
            1 => outputs[0],
            _ => {
                let mut v = [outputs[0], outputs[1], outputs[2]];
                v.sort_unstable();
                v[1]
            }
        };
        let flagged = all_dropped || !self.envelope.contains(value);
        if flagged {
            apollo_telemetry::counter("opm.meter.flagged_epochs").inc();
            apollo_telemetry::emit_event(
                "opm.meter.flagged",
                &[
                    ("epoch", apollo_telemetry::FieldValue::from(self.epoch)),
                    ("value", apollo_telemetry::FieldValue::from(value)),
                    (
                        "all_dropped",
                        apollo_telemetry::FieldValue::from(all_dropped),
                    ),
                ],
            );
        }
        let reading = MeterReading {
            epoch: self.epoch,
            value,
            flagged,
        };
        self.epoch += 1;
        reading
    }

    /// Everything injected so far, in deterministic order.
    pub fn report(&self) -> MeterFaultReport {
        MeterFaultReport {
            seed: self.seed,
            epochs: self.epoch,
            counter_flips: self.counter_flips,
            rom_flips: self.rom_flips,
            dropped_epochs: self.dropped_epochs,
            events: self.events.clone(),
        }
    }
}

/// Result of running the hardened meter offline over a toggle matrix.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HardenedRun {
    /// One reading per complete window.
    pub readings: Vec<MeterReading>,
    /// What the plan injected.
    pub report: MeterFaultReport,
}

/// A hardened software OPM: the baseline [`QuantizedOpm`] plus an
/// envelope and a redundancy mode, runnable offline over captured
/// toggle matrices.
#[derive(Clone, Debug)]
pub struct HardenedOpm {
    /// The underlying quantized model.
    pub quant: QuantizedOpm,
    /// Plausibility envelope for window outputs.
    pub envelope: Envelope,
    /// Redundancy mode.
    pub redundancy: Redundancy,
}

impl HardenedOpm {
    /// Wraps a quantized model with its structural envelope and no
    /// redundancy.
    pub fn new(quant: QuantizedOpm) -> Self {
        let envelope = Envelope::structural(&quant);
        HardenedOpm {
            quant,
            envelope,
            redundancy: Redundancy::Single,
        }
    }

    /// Sets the redundancy mode.
    pub fn with_redundancy(mut self, redundancy: Redundancy) -> Self {
        self.redundancy = redundancy;
        self
    }

    /// Sets the plausibility envelope.
    pub fn with_envelope(mut self, envelope: Envelope) -> Self {
        self.envelope = envelope;
        self
    }

    /// Runs the hardened meter over a *full-design* toggle matrix
    /// (columns indexed by flat signal bit, like
    /// [`QuantizedOpm::window_outputs`]), injecting `plan`.
    ///
    /// With an empty plan the reading values are bit-exact with
    /// [`QuantizedOpm::window_outputs`] and nothing is flagged under
    /// the structural envelope.
    ///
    /// # Errors
    /// Returns [`ApolloError::Spec`] on an invalid spec or plan.
    pub fn run(
        &self,
        matrix: &ToggleMatrix,
        plan: &MeterFaultPlan,
    ) -> Result<HardenedRun, ApolloError> {
        let mut meter = HardenedMeter::new(&self.quant, self.envelope, self.redundancy, plan)?;
        let bits = &self.quant.bits;
        let mut readings = Vec::with_capacity(matrix.n_cycles() / self.quant.spec.t);
        for c in 0..matrix.n_cycles() {
            if let Some(r) = meter.step(|k| matrix.get(bits[k], c)) {
                readings.push(r);
            }
        }
        Ok(HardenedRun {
            readings,
            report: meter.report(),
        })
    }

    /// De-scales a window output into power units.
    pub fn descale(&self, value: u64) -> f64 {
        self.quant.intercept + value as f64 / self.quant.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::OpmSpec;

    fn synthetic(q: usize, b: u8, t: usize) -> (QuantizedOpm, ToggleMatrix) {
        let quant = QuantizedOpm {
            spec: OpmSpec { q, b, t },
            bits: (0..q).collect(),
            is_clock_gate: vec![false; q],
            weights: (0..q).map(|k| ((k * 31 + 5) % (1 << b)) as u32).collect(),
            scale: 1.0,
            intercept: 0.0,
        };
        let n = 256;
        let mut m = ToggleMatrix::new(q, n);
        let mut s = 0x1234_5678u64;
        for c in 0..n {
            for k in 0..q {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                if s & 3 == 0 {
                    m.set(k, c);
                }
            }
        }
        (quant, m)
    }

    #[test]
    fn empty_plan_is_bit_exact_with_baseline() {
        for redundancy in [Redundancy::Single, Redundancy::MedianOfThree] {
            let (quant, m) = synthetic(11, 8, 8);
            let expected = quant.window_outputs(&m);
            let hard = HardenedOpm::new(quant).with_redundancy(redundancy);
            let run = hard.run(&m, &MeterFaultPlan::empty()).unwrap();
            assert_eq!(run.readings.len(), expected.len());
            for (r, &e) in run.readings.iter().zip(&expected) {
                assert_eq!(r.value, e, "epoch {}", r.epoch);
                assert!(!r.flagged);
            }
            assert!(run.report.events.is_empty());
        }
    }

    #[test]
    fn seeded_plan_replays_byte_identically() {
        let (quant, m) = synthetic(9, 6, 8);
        let plan = MeterFaultPlan {
            seed: 0xFEED,
            counter_flip_rate: 0.3,
            rom_flip_rate: 0.2,
            drop_rate: 0.1,
        };
        let hard = HardenedOpm::new(quant).with_redundancy(Redundancy::MedianOfThree);
        let a = hard.run(&m, &plan).unwrap();
        let b = hard.run(&m, &plan).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        assert!(a.report.counter_flips > 0 || a.report.rom_flips > 0);
    }

    #[test]
    fn median_of_three_outvotes_single_lane_upsets() {
        // Counter flips only, single-lane probability 0.25: with three
        // lanes the chance that two+ lanes are hit in the same epoch is
        // small, so the median tracks the baseline far better than a
        // single lane does.
        let (quant, m) = synthetic(13, 8, 8);
        let expected = quant.window_outputs(&m);
        let plan = MeterFaultPlan {
            seed: 7,
            counter_flip_rate: 0.25,
            rom_flip_rate: 0.0,
            drop_rate: 0.0,
        };
        let single = HardenedOpm::new(quant.clone()).run(&m, &plan).unwrap();
        let tmr = HardenedOpm::new(quant)
            .with_redundancy(Redundancy::MedianOfThree)
            .run(&m, &plan)
            .unwrap();
        let errs = |run: &HardenedRun| {
            run.readings
                .iter()
                .zip(&expected)
                .filter(|(r, &e)| r.value != e)
                .count()
        };
        assert!(single.report.counter_flips > 0, "plan must actually inject");
        assert!(
            errs(&tmr) < errs(&single),
            "median-of-3 {} errors vs single {} errors",
            errs(&tmr),
            errs(&single)
        );
    }

    #[test]
    fn saturation_never_engages_fault_free_and_caps_under_faults() {
        let (quant, _m) = synthetic(5, 4, 4);
        let meter = HardenedMeter::new(
            &quant,
            Envelope::structural(&quant),
            Redundancy::Single,
            &MeterFaultPlan::empty(),
        )
        .unwrap();
        // Worst case: every proxy toggles every cycle for T cycles.
        let max_cycle_sum: u64 = quant.weights.iter().map(|&w| w as u64).sum();
        assert!(
            max_cycle_sum * quant.spec.t as u64 <= meter.acc_max(),
            "paper-width accumulator must hold the worst case"
        );
    }

    #[test]
    fn envelope_calibration_tightens_and_flags_outliers() {
        let (quant, m) = synthetic(11, 8, 8);
        let structural = Envelope::structural(&quant);
        let calibrated = Envelope::calibrate(&quant, &m, 0.5);
        assert!(calibrated.max <= structural.max);
        // An absurd reading (beyond calibrated max) is outside.
        assert!(!calibrated.contains(structural.max.max(calibrated.max + 1)));
        // All healthy outputs stay inside.
        for v in quant.window_outputs(&m) {
            assert!(calibrated.contains(v), "healthy output {v} flagged");
        }
    }

    #[test]
    fn dropped_epochs_hold_and_all_dropped_flags() {
        let (quant, m) = synthetic(7, 6, 8);
        let plan = MeterFaultPlan {
            seed: 11,
            counter_flip_rate: 0.0,
            rom_flip_rate: 0.0,
            drop_rate: 1.0,
        };
        let hard = HardenedOpm::new(quant);
        let run = hard.run(&m, &plan).unwrap();
        // Every epoch dropped: every reading flagged and stuck at the
        // initial held value (0).
        for r in &run.readings {
            assert!(r.flagged, "all-dropped epoch must be flagged");
            assert_eq!(r.value, 0);
        }
        assert_eq!(run.report.dropped_epochs, run.readings.len() as u64);
    }

    #[test]
    fn bad_rates_rejected() {
        let plan = MeterFaultPlan {
            seed: 0,
            counter_flip_rate: 1.5,
            rom_flip_rate: 0.0,
            drop_rate: 0.0,
        };
        assert!(plan.validate().is_err());
    }
}
