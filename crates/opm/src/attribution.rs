//! Per-functional-unit power attribution over the quantized OPM.
//!
//! The OPM's window output is a single weighted toggle sum. Because
//! the sum is linear, it decomposes exactly: fold each proxy's
//! weighted contribution onto the functional unit that owns the proxy
//! signal (fetch / decode / issue / ALU / vector / LSU / L2 …, with
//! gated-clock proxies in their own class) and the per-class integer
//! accumulators sum to the OPM's raw window accumulator *bit-exactly*
//! — no float redistribution, no rounding slack. The readings a
//! dashboard shows per unit therefore provably add up to the total
//! prediction.
//!
//! Everything here is integer arithmetic on the same `u64` raw sums
//! the hardware reference ([`crate::quant::QuantizedOpm`]) uses, so
//! attribution inherits the simulator's thread-count determinism.

use crate::quant::{ceil_log2, QuantizedOpm};
use apollo_core::ApolloModel;
use apollo_cpu::units::{group_of, unit_label};
use apollo_rtl::{Netlist, NodeId, Unit};

/// Pre-resolved `(node, bit)` taps for the proxy set, the shared
/// sampling primitive of the governor and the introspection monitor.
#[derive(Clone, Debug)]
pub struct ProxyTaps {
    taps: Vec<(NodeId, u8)>,
}

impl ProxyTaps {
    /// Resolves flat proxy bit indices against `netlist`.
    pub fn new(netlist: &Netlist, bits: &[usize]) -> Self {
        ProxyTaps {
            taps: bits.iter().map(|&b| netlist.bit_owner(b)).collect(),
        }
    }

    /// Number of proxies.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// Returns `true` when there are no taps.
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }

    /// Whether proxy `k` toggled this cycle.
    #[inline]
    pub fn toggled(&self, sim: &apollo_sim::Simulator<'_>, k: usize) -> bool {
        let (node, sub) = self.taps[k];
        (sim.toggle_word(node) >> sub) & 1 == 1
    }
}

/// One attribution class: a functional unit (or the gated-clock
/// bucket) that owns at least one proxy.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct AttributionClass {
    /// Stable label, e.g. `alu`, `fetch`, `gated`.
    pub label: String,
    /// Pipeline-region rollup (from [`apollo_cpu::units::UNIT_HIERARCHY`]).
    pub group: &'static str,
    /// Number of proxies folded into this class.
    pub proxies: usize,
}

/// Maps each proxy of a model to its attribution class.
///
/// Classes are the functional units of [`Unit::ALL`] (in that stable
/// order) plus a final `gated` class for gated-clock proxies; classes
/// owning no proxy are dropped, so the class list is deterministic
/// for a given model.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct AttributionMap {
    /// Surviving classes, in stable order.
    pub classes: Vec<AttributionClass>,
    /// Per proxy (model order), index into `classes`.
    pub class_of: Vec<u16>,
}

impl AttributionMap {
    /// Builds the map from a trained model's proxy metadata.
    pub fn from_model(model: &ApolloModel) -> Self {
        // Dense class index per (unit, gated) key before compaction.
        let gated_slot = Unit::ALL.len();
        let slot_of = |p: &apollo_core::Proxy| {
            if p.is_clock_gate {
                gated_slot
            } else {
                Unit::ALL
                    .iter()
                    .position(|&u| u == p.unit)
                    .expect("unit in ALL")
            }
        };
        let mut count = vec![0usize; gated_slot + 1];
        for p in &model.proxies {
            count[slot_of(p)] += 1;
        }
        let mut slot_to_class = vec![u16::MAX; gated_slot + 1];
        let mut classes = Vec::new();
        for (slot, &n) in count.iter().enumerate() {
            if n == 0 {
                continue;
            }
            slot_to_class[slot] = classes.len() as u16;
            if slot == gated_slot {
                classes.push(AttributionClass {
                    label: "gated".to_owned(),
                    group: "clocks",
                    proxies: n,
                });
            } else {
                let unit = Unit::ALL[slot];
                classes.push(AttributionClass {
                    label: unit_label(unit).to_owned(),
                    group: group_of(unit).name,
                    proxies: n,
                });
            }
        }
        let class_of = model
            .proxies
            .iter()
            .map(|p| slot_to_class[slot_of(p)])
            .collect();
        AttributionMap { classes, class_of }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }
}

/// One completed window of per-unit attribution.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct WindowAttribution {
    /// Zero-based window index.
    pub window: u64,
    /// Raw (pre-shift) integer contribution per class; sums to
    /// `total` exactly.
    pub raw: Vec<u64>,
    /// The OPM's raw window accumulator (Σ over cycles of the weighted
    /// toggle sum) — equals `raw.iter().sum()` bit-exactly.
    pub total: u64,
    /// The hardware's window output: `total >> log2(T)` (the paper's
    /// shift-divide), identical to
    /// [`QuantizedOpm::window_outputs`](crate::quant::QuantizedOpm::window_outputs).
    pub output: u64,
}

impl WindowAttribution {
    /// Fraction of the raw accumulator attributed to class `i`
    /// (0 for an all-idle window — no division by zero).
    pub fn share(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.raw[i] as f64 / self.total as f64
        }
    }
}

/// Streaming per-cycle accumulator producing [`WindowAttribution`]s.
///
/// Mirrors the hardware exactly: per cycle each toggled proxy adds its
/// quantized weight both to its class accumulator and (implicitly) to
/// the window total; after `T` cycles the window closes.
#[derive(Clone, Debug)]
pub struct AttributionAccumulator {
    weights: Vec<u64>,
    class_of: Vec<u16>,
    t: usize,
    shift: u8,
    scale: f64,
    intercept: f64,
    filled: usize,
    next_window: u64,
    raw: Vec<u64>,
    total: u64,
}

impl AttributionAccumulator {
    /// Builds the accumulator for a quantized OPM and its attribution
    /// map (from the same model: lengths must agree).
    ///
    /// # Panics
    /// Panics if `map.class_of` does not cover the OPM's proxies.
    pub fn new(opm: &QuantizedOpm, map: &AttributionMap) -> Self {
        assert_eq!(
            map.class_of.len(),
            opm.weights.len(),
            "attribution map and OPM must come from the same model"
        );
        AttributionAccumulator {
            weights: opm.weights.iter().map(|&w| w as u64).collect(),
            class_of: map.class_of.clone(),
            t: opm.spec.t,
            shift: ceil_log2(opm.spec.t),
            scale: opm.scale,
            intercept: opm.intercept,
            filled: 0,
            next_window: 0,
            raw: vec![0; map.n_classes()],
            total: 0,
        }
    }

    /// Window length `T` in cycles.
    pub fn window_cycles(&self) -> usize {
        self.t
    }

    /// Restarts window numbering at `window` with an empty cadence
    /// phase, for resuming a checkpointed pipeline at a window
    /// boundary. Any partially filled window is discarded.
    pub fn resume_at(&mut self, window: u64) {
        self.next_window = window;
        self.filled = 0;
        self.total = 0;
        self.raw.iter_mut().for_each(|r| *r = 0);
    }

    /// Feeds one cycle; `toggled(k)` reports whether proxy `k` toggled.
    /// Returns the finished window when this cycle completes it.
    pub fn cycle(&mut self, toggled: impl Fn(usize) -> bool) -> Option<WindowAttribution> {
        for (k, &w) in self.weights.iter().enumerate() {
            if w != 0 && toggled(k) {
                self.raw[self.class_of[k] as usize] += w;
                self.total += w;
            }
        }
        self.filled += 1;
        if self.filled < self.t {
            return None;
        }
        let n_classes = self.raw.len();
        let out = WindowAttribution {
            window: self.next_window,
            raw: std::mem::replace(&mut self.raw, vec![0; n_classes]),
            total: self.total,
            output: self.total >> self.shift,
        };
        self.total = 0;
        self.filled = 0;
        self.next_window += 1;
        Some(out)
    }

    /// De-scaled window power estimate — identical to
    /// [`QuantizedOpm::predict_windows`](crate::quant::QuantizedOpm::predict_windows)
    /// for the same window.
    pub fn est_power(&self, w: &WindowAttribution) -> f64 {
        self.intercept + w.output as f64 / self.scale
    }

    /// Mean per-cycle power attributed to class `i` over the window
    /// (above the intercept baseline). `scale` is always positive
    /// ([`QuantizedOpm::from_model`] uses 1.0 for degenerate all-zero
    /// models), so this never divides by zero.
    pub fn unit_power(&self, w: &WindowAttribution, i: usize) -> f64 {
        w.raw[i] as f64 / (self.t as f64 * self.scale)
    }
}

/// Order-independent fleet-scope rollup of per-unit raw attribution.
///
/// Keyed by class label in a sorted map, so folding per-core window
/// attributions in *any* order — any core→shard assignment, any shard
/// count, any merge tree — produces identical contents (`u64`
/// addition is associative and commutative, and the label set fixes
/// the iteration order). This extends the window-level integer
/// invariant to fleet scope: the rollup's `total` equals the sum of
/// every ingested window's raw accumulator bit-exactly.
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct AttributionRollup {
    /// Raw integer attribution per class label, label-sorted.
    pub raw: std::collections::BTreeMap<String, u64>,
    /// Grand total: Σ of every ingested raw vector.
    pub total: u64,
}

impl AttributionRollup {
    /// An empty rollup.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one labeled raw vector in (e.g. one core's window row
    /// from a fleet batch). Lengths must agree.
    ///
    /// # Panics
    /// Panics if `labels` and `raw` differ in length.
    pub fn ingest(&mut self, labels: &[String], raw: &[u64]) {
        assert_eq!(labels.len(), raw.len(), "labels and raw must align");
        for (label, &r) in labels.iter().zip(raw) {
            if r != 0 {
                *self.raw.entry(label.clone()).or_insert(0) += r;
            }
            self.total += r;
        }
    }

    /// Folds one window's attribution in, labeling classes via `map`
    /// (which must come from the same model as the window).
    pub fn ingest_window(&mut self, map: &AttributionMap, w: &WindowAttribution) {
        for (class, &r) in map.classes.iter().zip(&w.raw) {
            if r != 0 {
                *self.raw.entry(class.label.clone()).or_insert(0) += r;
            }
            self.total += r;
        }
    }

    /// Merges another rollup in (label-wise integer sums).
    pub fn merge(&mut self, other: &AttributionRollup) {
        for (label, &r) in &other.raw {
            *self.raw.entry(label.clone()).or_insert(0) += r;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apollo_core::{Proxy, SelectionPenalty};

    fn model_with_units(specs: &[(f64, Unit, bool)]) -> ApolloModel {
        ApolloModel {
            design_name: "t".into(),
            proxies: specs
                .iter()
                .enumerate()
                .map(|(i, &(w, unit, gated))| Proxy {
                    bit: i,
                    weight: w,
                    name: format!("s{i}"),
                    unit,
                    is_clock_gate: gated,
                })
                .collect(),
            intercept: 5.0,
            selection_lambda: 1.0,
            penalty: SelectionPenalty::Mcp { gamma: 10.0 },
            candidates: 10,
            m_bits: 100,
        }
    }

    #[test]
    fn map_folds_units_and_gated_clocks() {
        let model = model_with_units(&[
            (1.0, Unit::Alu, false),
            (2.0, Unit::Fetch, false),
            (3.0, Unit::Alu, false),
            (4.0, Unit::ClockTree, true),
        ]);
        let map = AttributionMap::from_model(&model);
        let labels: Vec<&str> = map.classes.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels, vec!["fetch", "alu", "gated"]);
        assert_eq!(map.classes[1].proxies, 2);
        assert_eq!(map.classes[2].group, "clocks");
        assert_eq!(map.class_of, vec![1, 0, 1, 2]);
    }

    #[test]
    fn window_attribution_sums_exactly_and_matches_reference() {
        let model = model_with_units(&[
            (1.5, Unit::Alu, false),
            (0.5, Unit::Fetch, false),
            (2.5, Unit::Vector, false),
        ]);
        let quant = QuantizedOpm::from_model(&model, 8, 4).unwrap();
        let map = AttributionMap::from_model(&model);
        let mut acc = AttributionAccumulator::new(&quant, &map);

        // Deterministic toggle pattern over 8 cycles (2 windows).
        let mut m = apollo_sim::ToggleMatrix::new(3, 8);
        for c in 0..8 {
            for k in 0..3 {
                if (c * 3 + k * 5) % 4 != 0 {
                    m.set(k, c);
                }
            }
        }
        let reference = quant.window_outputs(&m);
        let mut windows = Vec::new();
        for c in 0..8 {
            if let Some(w) = acc.cycle(|k| m.get(k, c)) {
                windows.push(w);
            }
        }
        assert_eq!(windows.len(), 2);
        for (w, &r) in windows.iter().zip(&reference) {
            assert_eq!(w.raw.iter().sum::<u64>(), w.total, "exact integer sum");
            assert_eq!(
                w.output, r,
                "window output must match the hardware reference"
            );
            let est = acc.est_power(w);
            let pred = quant.intercept + r as f64 / quant.scale;
            assert!((est - pred).abs() == 0.0, "descale must be identical");
        }
    }

    #[test]
    fn rollup_is_order_independent_and_sum_exact() {
        let model = model_with_units(&[
            (1.5, Unit::Alu, false),
            (0.5, Unit::Fetch, false),
            (2.5, Unit::Vector, false),
        ]);
        let quant = QuantizedOpm::from_model(&model, 8, 4).unwrap();
        let map = AttributionMap::from_model(&model);
        let mut acc = AttributionAccumulator::new(&quant, &map);
        let mut m = apollo_sim::ToggleMatrix::new(3, 16);
        for c in 0..16 {
            for k in 0..3 {
                if (c * 7 + k * 3) % 5 != 0 {
                    m.set(k, c);
                }
            }
        }
        let mut windows = Vec::new();
        for c in 0..16 {
            if let Some(w) = acc.cycle(|k| m.get(k, c)) {
                windows.push(w);
            }
        }
        assert_eq!(windows.len(), 4);

        // Forward, reverse, and split-then-merged ingestion must all
        // produce bit-identical contents.
        let mut fwd = AttributionRollup::new();
        for w in &windows {
            fwd.ingest_window(&map, w);
        }
        let mut rev = AttributionRollup::new();
        for w in windows.iter().rev() {
            rev.ingest_window(&map, w);
        }
        assert_eq!(fwd, rev);
        let mut a = AttributionRollup::new();
        let mut b = AttributionRollup::new();
        a.ingest_window(&map, &windows[0]);
        a.ingest_window(&map, &windows[3]);
        b.ingest_window(&map, &windows[2]);
        b.ingest_window(&map, &windows[1]);
        let mut merged = AttributionRollup::new();
        merged.merge(&b);
        merged.merge(&a);
        assert_eq!(fwd, merged);

        // Fleet-scope integer invariant: rollup total == Σ window totals.
        let want: u64 = windows.iter().map(|w| w.total).sum();
        assert_eq!(fwd.total, want);
        assert_eq!(fwd.raw.values().sum::<u64>(), want);

        // The labeled path matches the map path.
        let labels: Vec<String> = map.classes.iter().map(|c| c.label.clone()).collect();
        let mut labeled = AttributionRollup::new();
        for w in &windows {
            labeled.ingest(&labels, &w.raw);
        }
        assert_eq!(fwd, labeled);
    }

    #[test]
    fn idle_window_has_zero_shares_without_nan() {
        let model = model_with_units(&[(0.0, Unit::Alu, false), (0.0, Unit::L2, false)]);
        let quant = QuantizedOpm::from_model(&model, 8, 2).unwrap();
        assert_eq!(quant.scale, 1.0, "degenerate model gets unit scale");
        let map = AttributionMap::from_model(&model);
        let mut acc = AttributionAccumulator::new(&quant, &map);
        assert!(
            acc.cycle(|_| true).is_none(),
            "window t=2 closes on the second cycle"
        );
        let w = acc.cycle(|_| true).unwrap();
        assert_eq!(w.total, 0);
        for i in 0..map.n_classes() {
            assert_eq!(w.share(i), 0.0);
            assert_eq!(acc.unit_power(&w, i), 0.0);
        }
        assert!(acc.est_power(&w).is_finite());
    }
}
