//! OPM hardware generation (paper Figure 8) and co-simulation.
//!
//! The OPM netlist has three components, exactly as in the paper:
//! an **interface** that registers the monitored signals and extracts
//! per-cycle toggles (1-bit XOR detectors; gated-clock proxies latch the
//! enable instead), a **power computation** stage that AND-gates the
//! hard-wired quantized weights with the toggle bits and sums them in a
//! balanced adder tree (no multipliers), and a **T-cycle average** stage
//! with an accumulator and a shift-divide. Total latency: 2 cycles.

// Lockstep multi-array index loops are intentional throughout this
// module; iterator zips would obscure the hardware/math being expressed.
#![allow(clippy::needless_range_loop)]

use crate::quant::{ceil_log2, QuantizedOpm};
use apollo_core::ApolloError;
use apollo_rtl::{CapModel, NetlistBuilder, NodeId, Unit, CLOCK_ROOT};
use apollo_sim::{BitsliceSimulator, PowerConfig, PowerSample, Simulator, ToggleMatrix};

/// A generated OPM circuit with handles to its ports.
#[derive(Clone, Debug)]
pub struct OpmHardware {
    /// The OPM netlist (standalone; in a real flow it is placed inside
    /// the CPU floorplan and wired to the proxy nets).
    pub netlist: apollo_rtl::Netlist,
    /// Monitored-signal inputs, one per proxy, in model order.
    pub inputs: Vec<NodeId>,
    /// Registered adder-tree output (valid 2 cycles after its input
    /// cycle).
    pub sum_reg: NodeId,
    /// Windowed output register (updated every `T` cycles).
    pub out_reg: NodeId,
    /// The quantized model this hardware implements.
    pub model: QuantizedOpm,
}

/// Builds the Figure-8 OPM circuit for a quantized model.
///
/// # Errors
/// Returns [`ApolloError::Spec`] if the model's specification is invalid
/// (e.g. the model is empty) and [`ApolloError::Rtl`] if netlist
/// construction fails.
pub fn build_opm(model: &QuantizedOpm) -> Result<OpmHardware, ApolloError> {
    let spec = model.spec;
    spec.validate()?;
    let q = spec.q;
    let sum_w = spec.sum_bits();
    let acc_w = spec.accumulator_bits();
    let shift = ceil_log2(spec.t);

    let mut b = NetlistBuilder::new("apollo-opm");
    b.set_unit(Unit::Opm);

    // ---- interface ------------------------------------------------------
    let mut inputs = Vec::with_capacity(q);
    let mut toggles = Vec::with_capacity(q);
    for k in 0..q {
        let input = b.input(1, &format!("opm/in{k}"), Unit::Opm);
        inputs.push(input);
        let latched = b.delay(input, 0, CLOCK_ROOT, &format!("opm/latch{k}"), Unit::Opm);
        if model.is_clock_gate[k] {
            // Gated clock: the latched enable *is* the toggle indicator.
            toggles.push(latched);
        } else {
            let prev = b.delay(latched, 0, CLOCK_ROOT, &format!("opm/prev{k}"), Unit::Opm);
            let t = b.xor(latched, prev);
            b.name(t, &format!("opm/tgl{k}"), Unit::Opm);
            toggles.push(t);
        }
    }

    // ---- power computation ----------------------------------------------
    // Weight AND-gating: a toggle bit selects the hard-wired weight.
    let zero_sum = b.constant(0, sum_w);
    let mut terms: Vec<NodeId> = Vec::with_capacity(q);
    for k in 0..q {
        let w = b.constant(model.weights[k] as u64, sum_w);
        let term = b.mux(toggles[k], w, zero_sum);
        terms.push(term);
    }
    // Balanced adder tree.
    let mut level = terms;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut i = 0;
        while i < level.len() {
            if i + 1 < level.len() {
                next.push(b.add(level[i], level[i + 1]));
            } else {
                next.push(level[i]);
            }
            i += 2;
        }
        level = next;
    }
    let sum = level[0];
    b.name(sum, "opm/sum", Unit::Opm);
    let sum_reg = b.delay(sum, 0, CLOCK_ROOT, "opm/sum_reg", Unit::Opm);

    // ---- T-cycle average --------------------------------------------------
    let out_reg = if spec.t == 1 {
        let sum_acc = b.zext(sum_reg, acc_w);
        b.delay(sum_acc, 0, CLOCK_ROOT, "opm/out", Unit::Opm)
    } else {
        let tbits = ceil_log2(spec.t);
        // Counter aligned so that a window starts when the first valid
        // sum (pipeline latency 2) reaches the accumulator.
        // After k simulator steps the counter reads init+k+1; the first
        // valid sum of window 0 sits in sum_reg at step 2, so the
        // counter must read 0 there: init = -3 mod T.
        let ctr_init = (2 * spec.t - 3) as u64 % spec.t as u64;
        let ctr = b.reg(tbits, ctr_init, CLOCK_ROOT, "opm/tctr", Unit::Opm);
        let one = b.constant(1, tbits);
        let ctr_next = b.add(ctr, one);
        b.connect(ctr, ctr_next);
        let ctr_zero = {
            let z = b.constant(0, tbits);
            b.eq(ctr, z)
        };
        let ctr_last = {
            let last = b.constant((spec.t - 1) as u64, tbits);
            b.eq(ctr, last)
        };
        let acc = b.reg(acc_w, 0, CLOCK_ROOT, "opm/acc", Unit::Opm);
        let sum_ext = b.zext(sum_reg, acc_w);
        let zero_acc = b.constant(0, acc_w);
        let base = b.mux(ctr_zero, zero_acc, acc);
        let acc_next = b.add(base, sum_ext);
        b.connect(acc, acc_next);
        // At the last cycle of a window, capture (acc + sum) >> log2(T).
        let shift_c = b.constant(shift as u64, acc_w);
        let shifted = b.shr(acc_next, shift_c);
        let out = b.reg(acc_w, 0, CLOCK_ROOT, "opm/out", Unit::Opm);
        let hold = b.mux(ctr_last, shifted, out);
        b.connect(out, hold);
        out
    };

    let netlist = b.build()?;
    Ok(OpmHardware {
        netlist,
        inputs,
        sum_reg,
        out_reg,
        model: model.clone(),
    })
}

/// Result of co-simulating the OPM hardware over a proxy toggle trace.
#[derive(Clone, Debug)]
pub struct OpmCosim {
    /// Registered adder-tree outputs aligned to input cycles (entry `i`
    /// is the hardware sum for input cycle `i`).
    pub sums: Vec<u64>,
    /// Window outputs, one per complete `T`-cycle window.
    pub windows: Vec<u64>,
    /// Mean power drawn by the OPM circuit itself (same arbitrary units
    /// as the host CPU's power engine).
    pub mean_power: PowerSample,
}

impl OpmHardware {
    /// Drives the hardware with a proxy toggle trace (columns in model
    /// order, as produced by proxy-only capture with
    /// [`ApolloModel::bits`](apollo_core::ApolloModel::bits)) and
    /// returns aligned outputs plus the OPM's own power.
    ///
    /// For ordinary proxies the monitored *values* are reconstructed as
    /// the prefix-XOR of the toggle stream, so the interface's XOR
    /// detectors regenerate the exact toggles; gated-clock proxies are
    /// driven with the enable (= toggle) directly.
    pub fn cosim(&self, proxy_toggles: &ToggleMatrix) -> OpmCosim {
        assert_eq!(
            proxy_toggles.m_bits(),
            self.inputs.len(),
            "trace columns must match proxy count"
        );
        let n = proxy_toggles.n_cycles();
        let cap = CapModel::default().annotate(&self.netlist);
        let power = PowerConfig {
            leakage: 0.0,
            noise_rel: 0.0,
            ..PowerConfig::default()
        };
        let mut sim = Simulator::new(&self.netlist, &cap, power);

        let q = self.inputs.len();
        let mut values = vec![0u64; q];
        let mut sums = Vec::with_capacity(n);
        let mut windows = Vec::new();
        let mut total_power = PowerSample::default();
        let t = self.model.spec.t;

        // Drive n input cycles plus drain cycles for the pipeline.
        for i in 0..n + 3 {
            for k in 0..q {
                let bit = if i < n {
                    proxy_toggles.get(k, i) as u64
                } else {
                    0
                };
                let v = if self.model.is_clock_gate[k] {
                    bit
                } else {
                    values[k] ^= bit;
                    values[k]
                };
                sim.set_input(self.inputs[k], v);
            }
            sim.step();
            total_power = total_power + sim.power();
            // After the step of iteration `i` the simulator is in state
            // S_i, where sum_reg holds the sum for input cycle i-2
            // (2-cycle latency: input latch + sum register).
            if i >= 2 && sums.len() < n {
                sums.push(sim.value(self.sum_reg));
            }
            // Window w's output lands in out_reg at state S_{wT+T+2}.
            if t > 1 && i >= 2 && (i - 2) % t == 0 && (i - 2) / t >= 1 {
                windows.push(sim.value(self.out_reg));
            }
        }
        if t == 1 {
            windows = sums.clone();
        } else {
            // Collect any final complete window.
            let complete = n / t;
            while windows.len() > complete {
                windows.pop();
            }
        }
        let inv = 1.0 / (n as f64 + 3.0);
        let mean_power = PowerSample {
            total: total_power.total * inv,
            switching: total_power.switching * inv,
            clock: total_power.clock * inv,
            memory: total_power.memory * inv,
            glitch: total_power.glitch * inv,
            short_circuit: total_power.short_circuit * inv,
            leakage: total_power.leakage * inv,
        };
        OpmCosim {
            sums,
            windows,
            mean_power,
        }
    }

    /// Like [`OpmHardware::cosim`] for up to 64 proxy traces at once:
    /// each trace occupies one lane of a [`BitsliceSimulator`], so a
    /// single netlist pass advances every co-simulation by a cycle —
    /// the windowed evaluation path for validation sweeps that replay
    /// many captured segments through the same OPM.
    ///
    /// Traces may have different lengths; lane `k` drives zeros after
    /// its trace ends and its outputs and power stop accumulating at
    /// its own drain point, so every entry of the returned vector is
    /// bit-identical to `self.cosim(traces[k])`.
    pub fn cosim_batch(&self, traces: &[&ToggleMatrix]) -> Vec<OpmCosim> {
        assert!(
            (1..=64).contains(&traces.len()),
            "cosim_batch takes 1..=64 traces, got {}",
            traces.len()
        );
        let q = self.inputs.len();
        for tr in traces {
            assert_eq!(tr.m_bits(), q, "trace columns must match proxy count");
        }
        let lanes = traces.len();
        let cap = CapModel::default().annotate(&self.netlist);
        let power = PowerConfig {
            leakage: 0.0,
            noise_rel: 0.0,
            ..PowerConfig::default()
        };
        let mut sim = BitsliceSimulator::new(&self.netlist, &cap, power, lanes);

        let t = self.model.spec.t;
        let mut values = vec![vec![0u64; q]; lanes];
        let mut sums: Vec<Vec<u64>> = traces
            .iter()
            .map(|tr| Vec::with_capacity(tr.n_cycles()))
            .collect();
        let mut windows: Vec<Vec<u64>> = vec![Vec::new(); lanes];
        let mut totals = vec![PowerSample::default(); lanes];
        let longest = traces.iter().map(|tr| tr.n_cycles()).max().unwrap();
        for i in 0..longest + 3 {
            for (lane, tr) in traces.iter().enumerate() {
                let n = tr.n_cycles();
                for k in 0..q {
                    let bit = if i < n { tr.get(k, i) as u64 } else { 0 };
                    let v = if self.model.is_clock_gate[k] {
                        bit
                    } else {
                        values[lane][k] ^= bit;
                        values[lane][k]
                    };
                    sim.set_input(lane, self.inputs[k], v);
                }
            }
            sim.step();
            for (lane, tr) in traces.iter().enumerate() {
                let n = tr.n_cycles();
                if i < n + 3 {
                    totals[lane] = totals[lane] + sim.power(lane);
                }
                if i >= 2 && sums[lane].len() < n {
                    sums[lane].push(sim.value(lane, self.sum_reg));
                }
                if t > 1 && i < n + 3 && i >= 2 && (i - 2) % t == 0 && (i - 2) / t >= 1 {
                    windows[lane].push(sim.value(lane, self.out_reg));
                }
            }
        }
        traces
            .iter()
            .enumerate()
            .map(|(lane, tr)| {
                let n = tr.n_cycles();
                let sums = std::mem::take(&mut sums[lane]);
                let windows = if t == 1 {
                    sums.clone()
                } else {
                    let mut w = std::mem::take(&mut windows[lane]);
                    w.truncate(n / t);
                    w
                };
                let total = totals[lane];
                let inv = 1.0 / (n as f64 + 3.0);
                OpmCosim {
                    sums,
                    windows,
                    mean_power: PowerSample {
                        total: total.total * inv,
                        switching: total.switching * inv,
                        clock: total.clock * inv,
                        memory: total.memory * inv,
                        glitch: total.glitch * inv,
                        short_circuit: total.short_circuit * inv,
                        leakage: total.leakage * inv,
                    },
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::OpmSpec;

    fn synthetic_model(q: usize, b: u8, t: usize, with_gate: bool) -> (QuantizedOpm, ToggleMatrix) {
        let weights: Vec<u32> = (0..q).map(|k| ((k * 37 + 11) % (1 << b)) as u32).collect();
        let mut is_clock_gate = vec![false; q];
        if with_gate {
            is_clock_gate[0] = true;
        }
        let model = QuantizedOpm {
            spec: OpmSpec { q, b, t },
            bits: (0..q).collect(),
            is_clock_gate,
            weights,
            scale: 1.0,
            intercept: 0.0,
        };
        let n = 64;
        let mut m = ToggleMatrix::new(q, n);
        let mut s = 0xACE1u64;
        for c in 0..n {
            for k in 0..q {
                s ^= s << 7;
                s ^= s >> 9;
                if s & 3 == 0 {
                    m.set(k, c);
                }
            }
        }
        (model, m)
    }

    #[test]
    fn cosim_sums_match_software_reference() {
        let (model, trace) = synthetic_model(13, 8, 1, true);
        let hw = build_opm(&model).unwrap();
        let cosim = hw.cosim(&trace);
        let expected = model.raw_sums(&trace);
        assert_eq!(cosim.sums.len(), expected.len());
        for (i, (h, s)) in cosim.sums.iter().zip(&expected).enumerate() {
            assert_eq!(h, s, "cycle {i}");
        }
    }

    #[test]
    fn cosim_windows_match_software_reference() {
        for t in [4usize, 8, 16] {
            let (model, trace) = synthetic_model(9, 6, t, false);
            let hw = build_opm(&model).unwrap();
            let cosim = hw.cosim(&trace);
            let expected = model.window_outputs(&trace);
            assert_eq!(cosim.windows.len(), expected.len(), "T={t}");
            for (i, (h, s)) in cosim.windows.iter().zip(&expected).enumerate() {
                assert_eq!(h, s, "T={t} window {i}");
            }
        }
    }

    #[test]
    fn opm_netlist_has_no_multipliers() {
        let (model, _) = synthetic_model(16, 10, 8, false);
        let hw = build_opm(&model).unwrap();
        let mults = hw
            .netlist
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, apollo_rtl::Op::Mul(..) | apollo_rtl::Op::Udiv(..)))
            .count();
        assert_eq!(mults, 0, "Figure 8 structure uses AND gates + adders only");
    }

    #[test]
    fn cosim_batch_matches_scalar_cosim() {
        for (t, with_gate) in [(1usize, true), (8, false)] {
            let (model, _) = synthetic_model(11, 8, t, with_gate);
            let hw = build_opm(&model).unwrap();
            // Ragged trace lengths, including a window-misaligned one.
            let traces: Vec<ToggleMatrix> = [64usize, 40, 33, 17]
                .iter()
                .enumerate()
                .map(|(j, &n)| {
                    let mut m = ToggleMatrix::new(11, n);
                    let mut s = 0xBEEF ^ (j as u64) << 13;
                    for c in 0..n {
                        for k in 0..11 {
                            s ^= s << 7;
                            s ^= s >> 9;
                            if s & 3 == 0 {
                                m.set(k, c);
                            }
                        }
                    }
                    m
                })
                .collect();
            let refs: Vec<&ToggleMatrix> = traces.iter().collect();
            let batch = hw.cosim_batch(&refs);
            for (lane, tr) in traces.iter().enumerate() {
                let single = hw.cosim(tr);
                assert_eq!(batch[lane].sums, single.sums, "T={t} lane {lane}: sums");
                assert_eq!(
                    batch[lane].windows, single.windows,
                    "T={t} lane {lane}: windows"
                );
                assert_eq!(
                    batch[lane].mean_power.total.to_bits(),
                    single.mean_power.total.to_bits(),
                    "T={t} lane {lane}: mean power"
                );
            }
        }
    }

    #[test]
    fn opm_power_is_positive_and_small() {
        let (model, trace) = synthetic_model(16, 10, 8, false);
        let hw = build_opm(&model).unwrap();
        let cosim = hw.cosim(&trace);
        assert!(cosim.mean_power.total > 0.0);
    }
}
