//! Per-cycle ΔI analysis and proactive Ldi/dt droop mitigation
//! (paper Figure 17 and §8.2).
//!
//! The OPM's per-cycle estimate is a measure of CPU current demand;
//! its first difference (ΔI) predicts Ldi/dt events. [`DroopAnalysis`]
//! reproduces the Figure-17 scatter statistics (Pearson correlation,
//! quadrant agreement in the deep-droop/overshoot tails), and
//! [`PdnModel`] closes the loop with a second-order power-delivery
//! model plus an adaptive-clocking mitigation experiment.

use apollo_mlkit::metrics::pearson;

/// ΔI agreement statistics between an OPM estimate and ground truth.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct DroopAnalysis {
    /// Number of ΔI samples.
    pub n: usize,
    /// Pearson correlation between estimated and true ΔI.
    pub pearson: f64,
    /// Fraction of deep-droop precursors (true ΔI in the top tail) the
    /// estimate also places in its top tail.
    pub droop_recall: f64,
    /// Fraction of deep-overshoot precursors (bottom tail) captured.
    pub overshoot_recall: f64,
    /// Tail threshold used, as a quantile (e.g. 0.95).
    pub tail_quantile: f64,
}

/// First difference of a power/current trace.
pub fn delta(v: &[f64]) -> Vec<f64> {
    v.windows(2).map(|w| w[1] - w[0]).collect()
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

impl DroopAnalysis {
    /// Compares per-cycle estimates against ground truth.
    ///
    /// # Panics
    /// Panics if the traces are shorter than 3 cycles or lengths differ.
    pub fn analyze(estimate: &[f64], truth: &[f64], tail_quantile: f64) -> DroopAnalysis {
        assert_eq!(estimate.len(), truth.len(), "trace length mismatch");
        assert!(estimate.len() >= 3, "trace too short");
        let de = delta(estimate);
        let dt = delta(truth);
        let r = pearson(&de, &dt);

        let mut sorted_t = dt.clone();
        sorted_t.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut sorted_e = de.clone();
        sorted_e.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let hi_t = quantile(&sorted_t, tail_quantile);
        let lo_t = quantile(&sorted_t, 1.0 - tail_quantile);
        let hi_e = quantile(&sorted_e, tail_quantile);
        let lo_e = quantile(&sorted_e, 1.0 - tail_quantile);

        let mut droop_hits = 0usize;
        let mut droop_total = 0usize;
        let mut over_hits = 0usize;
        let mut over_total = 0usize;
        for (e, t) in de.iter().zip(&dt) {
            if *t >= hi_t {
                droop_total += 1;
                if *e >= hi_e {
                    droop_hits += 1;
                }
            }
            if *t <= lo_t {
                over_total += 1;
                if *e <= lo_e {
                    over_hits += 1;
                }
            }
        }
        DroopAnalysis {
            n: de.len(),
            pearson: r,
            droop_recall: droop_hits as f64 / droop_total.max(1) as f64,
            overshoot_recall: over_hits as f64 / over_total.max(1) as f64,
            tail_quantile,
        }
    }
}

/// A second-order power-delivery-network model: series R-L from the
/// regulator into the on-die capacitance C, discharged by the per-cycle
/// load current.
///
/// Discretized per clock cycle; parameters are in normalized units with
/// the nominal supply at 1.0.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PdnModel {
    /// Series resistance.
    pub r: f64,
    /// Series inductance (per cycle²-unit).
    pub l: f64,
    /// On-die decap.
    pub c: f64,
    /// Nominal supply voltage.
    pub vdd: f64,
}

impl Default for PdnModel {
    fn default() -> Self {
        // Underdamped with a resonance of roughly 12 cycles.
        PdnModel {
            r: 0.06,
            l: 0.4,
            c: 9.0,
            vdd: 1.0,
        }
    }
}

impl PdnModel {
    /// Simulates the supply voltage under a load-current trace
    /// (normalized so that its mean maps to roughly `vdd − r·mean`).
    pub fn simulate(&self, load: &[f64]) -> Vec<f64> {
        let mut v = self.vdd;
        let mut i_l = load.first().copied().unwrap_or(0.0);
        let mut out = Vec::with_capacity(load.len());
        for &i_load in load {
            // Inductor current responds to the voltage across L.
            let dv_l = self.vdd - v - self.r * i_l;
            i_l += dv_l / self.l;
            // Capacitor integrates the current mismatch.
            v += (i_l - i_load) / self.c;
            out.push(v);
        }
        out
    }

    /// Normalizes a power trace into a load-current trace with unit
    /// mean (constant-voltage approximation: I ∝ P).
    pub fn normalize_load(power: &[f64]) -> Vec<f64> {
        let mean = power.iter().sum::<f64>() / power.len().max(1) as f64;
        power.iter().map(|p| p / mean.max(1e-12)).collect()
    }
}

/// Result of the adaptive-clocking mitigation experiment.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct MitigationReport {
    /// Minimum voltage without mitigation.
    pub vmin_baseline: f64,
    /// Minimum voltage with OPM-triggered mitigation.
    pub vmin_mitigated: f64,
    /// Droop-limit violations without mitigation.
    pub violations_baseline: usize,
    /// Droop-limit violations with mitigation.
    pub violations_mitigated: usize,
    /// Cycles in which mitigation engaged.
    pub throttled_cycles: usize,
    /// The droop limit used.
    pub v_limit: f64,
}

impl MitigationReport {
    /// Voltage guardband required to cover the worst droop, without
    /// mitigation (`vdd_nominal − vmin`).
    pub fn margin_baseline(&self, vdd: f64) -> f64 {
        vdd - self.vmin_baseline
    }

    /// Guardband required with OPM-triggered mitigation.
    pub fn margin_mitigated(&self, vdd: f64) -> f64 {
        vdd - self.vmin_mitigated
    }

    /// Fractional guardband reduction enabled by the OPM — the paper's
    /// first future-work item ("quantify margin reduction using
    /// proactive Ldi/dt mitigation with OPM").
    pub fn margin_reduction(&self, vdd: f64) -> f64 {
        let base = self.margin_baseline(vdd);
        if base <= 0.0 {
            0.0
        } else {
            (base - self.margin_mitigated(vdd)) / base
        }
    }
}

/// Runs the §8.2 experiment: the OPM watches its own per-cycle current
/// estimate; when estimated ΔI exceeds `di_threshold`, the core engages
/// adaptive clocking for `hold` cycles, modeled as capping the load
/// current's upward slew at `slew_cap` per cycle.
pub fn mitigate(
    pdn: &PdnModel,
    opm_estimate: &[f64],
    true_power: &[f64],
    di_threshold: f64,
    slew_cap: f64,
    hold: usize,
    v_limit: f64,
) -> MitigationReport {
    assert_eq!(opm_estimate.len(), true_power.len());
    let load = PdnModel::normalize_load(true_power);
    let baseline_v = pdn.simulate(&load);

    // OPM-triggered slew capping.
    let est = PdnModel::normalize_load(opm_estimate);
    let mut throttled = 0usize;
    let mut active = 0usize;
    let mut shaped = Vec::with_capacity(load.len());
    let mut prev = load[0];
    for i in 0..load.len() {
        if i > 0 && est[i] - est[i - 1] > di_threshold {
            active = hold;
        }
        let mut cur = load[i];
        if active > 0 {
            active -= 1;
            throttled += 1;
            if cur > prev + slew_cap {
                cur = prev + slew_cap;
            }
        }
        shaped.push(cur);
        prev = cur;
    }
    let mitigated_v = pdn.simulate(&shaped);

    let vmin_b = baseline_v.iter().copied().fold(f64::INFINITY, f64::min);
    let vmin_m = mitigated_v.iter().copied().fold(f64::INFINITY, f64::min);
    MitigationReport {
        vmin_baseline: vmin_b,
        vmin_mitigated: vmin_m,
        violations_baseline: baseline_v.iter().filter(|&&v| v < v_limit).count(),
        violations_mitigated: mitigated_v.iter().filter(|&&v| v < v_limit).count(),
        throttled_cycles: throttled,
        v_limit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_computes_first_difference() {
        assert_eq!(delta(&[1.0, 4.0, 2.0]), vec![3.0, -2.0]);
    }

    #[test]
    fn perfect_estimate_has_unit_pearson_and_full_recall() {
        let truth: Vec<f64> = (0..200)
            .map(|i| ((i as f64) * 0.3).sin() * 10.0 + 50.0)
            .collect();
        let a = DroopAnalysis::analyze(&truth, &truth, 0.9);
        assert!((a.pearson - 1.0).abs() < 1e-9);
        assert_eq!(a.droop_recall, 1.0);
        assert_eq!(a.overshoot_recall, 1.0);
    }

    #[test]
    fn noisy_estimate_degrades_gracefully() {
        let truth: Vec<f64> = (0..400)
            .map(|i| ((i as f64) * 0.5).sin() * 10.0 + 50.0)
            .collect();
        let noisy: Vec<f64> = truth
            .iter()
            .enumerate()
            .map(|(i, v)| v + ((i as f64 * 1.7).cos()) * 0.5)
            .collect();
        let a = DroopAnalysis::analyze(&noisy, &truth, 0.9);
        assert!(a.pearson > 0.9, "pearson = {}", a.pearson);
        // Random ranking would give ~0.1 recall at the 0.9 quantile; a
        // mildly noisy estimate must do far better.
        assert!(a.droop_recall > 0.4, "droop recall = {}", a.droop_recall);
        assert!(
            a.overshoot_recall > 0.4,
            "overshoot recall = {}",
            a.overshoot_recall
        );
    }

    #[test]
    fn pdn_settles_at_ir_drop() {
        let pdn = PdnModel::default();
        let load = vec![1.0; 2000];
        let v = pdn.simulate(&load);
        let settled = v[1999];
        assert!(
            (settled - (pdn.vdd - pdn.r)).abs() < 0.01,
            "settled {settled}"
        );
    }

    #[test]
    fn current_step_causes_droop_then_recovery() {
        let pdn = PdnModel::default();
        let mut load = vec![0.5; 300];
        load.extend(vec![2.0; 300]);
        let v = pdn.simulate(&load);
        let vmin = v.iter().copied().fold(f64::INFINITY, f64::min);
        let settled_after = v[599];
        assert!(vmin < settled_after - 0.01, "underdamped droop expected");
    }

    #[test]
    fn margin_reduction_math() {
        let r = MitigationReport {
            vmin_baseline: 0.80,
            vmin_mitigated: 0.90,
            violations_baseline: 10,
            violations_mitigated: 2,
            throttled_cycles: 5,
            v_limit: 0.93,
        };
        assert!((r.margin_baseline(1.0) - 0.20).abs() < 1e-12);
        assert!((r.margin_mitigated(1.0) - 0.10).abs() < 1e-12);
        assert!((r.margin_reduction(1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mitigation_reduces_droop() {
        let pdn = PdnModel::default();
        // Bursty workload: idle then a sharp power virus.
        let mut power = vec![100.0; 200];
        for k in 0..6 {
            power.extend(vec![320.0; 40]);
            power.extend(vec![110.0; 40]);
            let _ = k;
        }
        let estimate = power.clone(); // ideal OPM
        let report = mitigate(&pdn, &estimate, &power, 0.4, 0.05, 12, 0.9);
        assert!(report.vmin_mitigated > report.vmin_baseline, "{report:?}");
        assert!(report.violations_mitigated <= report.violations_baseline);
        assert!(report.throttled_cycles > 0);
    }
}
