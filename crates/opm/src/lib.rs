//! # apollo-opm
//!
//! The runtime on-chip power meter (OPM) side of the APOLLO
//! reproduction (paper §6, Figure 8):
//!
//! - [`quant`] — B-bit fixed-point weight quantization and the
//!   bit-exact software reference OPM;
//! - [`hardware`] — generation of the OPM circuit (interface / power
//!   computation / T-cycle average) as an [`apollo_rtl`] netlist, plus
//!   co-simulation against the software reference;
//! - [`area`] — gate-equivalent area and power-overhead estimation for
//!   the OPM against its host CPU (Figure 15b, Table 1);
//! - [`structure`] — hardware-structure comparison across OPM families
//!   (Table 3: counters and multipliers per method);
//! - [`droop`] — per-cycle ΔI analysis for proactive Ldi/dt voltage-
//!   droop mitigation (Figure 17, §8.2), with a second-order PDN model
//!   and an adaptive-clocking mitigation experiment;
//! - [`resilience`] — meter-local fault injection (counter upsets,
//!   weight-ROM corruption, dropped epochs) and the hardened estimator:
//!   saturating accumulators, a plausibility envelope and optional
//!   median-of-3 redundancy;
//! - [`governor`] — closed-loop power capping from OPM readings, with a
//!   fail-safe mode that throttles conservatively on flagged or stuck
//!   meter readings;
//! - [`attribution`] — exact per-functional-unit decomposition of each
//!   OPM window (the linear weighted toggle sum folded onto the CPU's
//!   unit hierarchy, summing bit-exactly to the window total);
//! - [`drift`] — streaming model-health monitors: EWMA residual
//!   tracking, two-sided CUSUM drift alarms and the fail-safe arming
//!   latch that translates sustained drift into a throttle floor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod attribution;
pub mod drift;
pub mod droop;
pub mod governor;
pub mod hardware;
pub mod quant;
pub mod resilience;
pub mod structure;

pub use area::{cpu_gate_area, opm_gate_area, AreaReport};
pub use attribution::{
    AttributionAccumulator, AttributionClass, AttributionMap, AttributionRollup, ProxyTaps,
    WindowAttribution,
};
pub use drift::{ArmConfig, DriftConfig, DriftDetector, DriftSignal, FailSafeArm};
pub use droop::{DroopAnalysis, PdnModel};
pub use governor::{
    run_governed, run_governed_resilient, GovernorConfig, GovernorReport, ResilientGovernorConfig,
    ResilientGovernorReport,
};
pub use hardware::{build_opm, OpmHardware};
pub use quant::{OpmSpec, QuantizedOpm};
pub use resilience::{
    Envelope, HardenedMeter, HardenedOpm, HardenedRun, MeterFaultEvent, MeterFaultPlan,
    MeterFaultReport, MeterReading, Redundancy,
};
