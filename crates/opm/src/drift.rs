//! Streaming model-health monitors: EWMA residual tracking and
//! two-sided CUSUM drift detection over per-window OPM residuals.
//!
//! The introspection pipeline feeds each detector one residual per
//! OPM window — `est − reference`, where the reference is either the
//! full float per-cycle model (quantization health) or the
//! ground-truth simulated power (model health). The detector:
//!
//! 1. **Calibrates** during a warmup of `warmup` windows, estimating
//!    the residual's baseline mean μ and standard deviation σ with
//!    Welford's algorithm (serial, deterministic).
//! 2. **Tracks** the EWMA of the residual,
//!    `ewma ← α·r + (1−α)·ewma`.
//! 3. **Detects** drift with a standard two-sided CUSUM on the
//!    standardized residual `z = (r − μ)/σ`:
//!    `S⁺ ← max(0, S⁺ + z − k)`, `S⁻ ← max(0, S⁻ − z − k)`;
//!    an alarm fires when either side exceeds `h`, after which that
//!    side resets (so persistent drift re-alarms).
//!
//! Alarms emit typed `opm.drift.alarm` telemetry events (validated by
//! `trace-lint` against [`apollo_telemetry::known`]); the optional
//! [`FailSafeArm`] turns alarms into a throttle floor for the PR-2
//! fail-safe governor actuator, with hysteresis on release.
//!
//! All state is `f64` arithmetic applied in window order from a serial
//! point, so detector state is bit-identical across simulator thread
//! counts.

use apollo_telemetry::FieldValue;

/// Drift-detector configuration.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DriftConfig {
    /// EWMA smoothing factor α in `(0, 1]`.
    pub ewma_alpha: f64,
    /// CUSUM slack `k` (standard deviations) absorbed per window.
    pub cusum_k: f64,
    /// CUSUM alarm threshold `h` (standard deviations).
    pub cusum_h: f64,
    /// Calibration windows before alarms may fire (≥ 2).
    pub warmup: u64,
    /// Floor on the calibrated σ, as a fraction of |μ| (guards the
    /// degenerate zero-variance warmup — never divides by zero).
    pub min_sigma_rel: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            ewma_alpha: 0.2,
            cusum_k: 0.5,
            cusum_h: 8.0,
            warmup: 16,
            min_sigma_rel: 1e-3,
        }
    }
}

/// What one window's observation did to a detector.
#[derive(Copy, Clone, Debug, PartialEq, serde::Serialize)]
pub struct DriftSignal {
    /// Window index (detector-local, starting at 0).
    pub window: u64,
    /// The observed residual.
    pub residual: f64,
    /// EWMA after this window.
    pub ewma: f64,
    /// Positive-side CUSUM after this window (pre-reset value when
    /// `alarm` is set).
    pub cusum_pos: f64,
    /// Negative-side CUSUM after this window (pre-reset value when
    /// `alarm` is set).
    pub cusum_neg: f64,
    /// Whether a drift alarm fired this window.
    pub alarm: bool,
    /// Whether the detector is still calibrating.
    pub warming_up: bool,
}

/// Streaming EWMA + two-sided CUSUM drift detector.
///
/// The full state (including the frozen baseline and both CUSUM
/// sides) round-trips through serde, so a checkpointed detector
/// resumes bit-exactly instead of re-warming.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DriftDetector {
    /// Monitor name, used in emitted `opm.drift.*` events.
    pub name: String,
    cfg: DriftConfig,
    windows: u64,
    // Welford calibration state.
    warm_mean: f64,
    warm_m2: f64,
    // Frozen baseline after warmup.
    mu: f64,
    sigma: f64,
    ewma: f64,
    cusum_pos: f64,
    cusum_neg: f64,
    alarms: u64,
    since_alarm: bool,
}

impl DriftDetector {
    /// New detector named `name` (e.g. `quant` or `truth`).
    ///
    /// # Panics
    /// Panics on an invalid configuration (α outside `(0, 1]`,
    /// non-positive `k`/`h`, or `warmup < 2`).
    pub fn new(name: &str, cfg: DriftConfig) -> Self {
        assert!(
            cfg.ewma_alpha > 0.0 && cfg.ewma_alpha <= 1.0,
            "alpha in (0,1]"
        );
        assert!(cfg.cusum_k >= 0.0 && cfg.cusum_h > 0.0, "k >= 0, h > 0");
        assert!(cfg.warmup >= 2, "warmup needs at least 2 windows");
        DriftDetector {
            name: name.to_owned(),
            cfg,
            windows: 0,
            warm_mean: 0.0,
            warm_m2: 0.0,
            mu: 0.0,
            sigma: 0.0,
            ewma: 0.0,
            cusum_pos: 0.0,
            cusum_neg: 0.0,
            alarms: 0,
            since_alarm: false,
        }
    }

    /// Windows observed.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Alarms fired so far.
    pub fn alarms(&self) -> u64 {
        self.alarms
    }

    /// Current EWMA of the residual.
    pub fn ewma(&self) -> f64 {
        self.ewma
    }

    /// Calibrated baseline `(μ, σ)` (zeros while warming up).
    pub fn baseline(&self) -> (f64, f64) {
        (self.mu, self.sigma)
    }

    /// Feeds one window's residual; updates state, emits `opm.drift.*`
    /// events on transitions, and returns the signal.
    pub fn observe(&mut self, residual: f64) -> DriftSignal {
        let window = self.windows;
        self.windows += 1;
        if window == 0 {
            self.ewma = residual;
        } else {
            let a = self.cfg.ewma_alpha;
            self.ewma = a * residual + (1.0 - a) * self.ewma;
        }

        if window < self.cfg.warmup {
            // Welford update.
            let n = (window + 1) as f64;
            let delta = residual - self.warm_mean;
            self.warm_mean += delta / n;
            self.warm_m2 += delta * (residual - self.warm_mean);
            if window + 1 == self.cfg.warmup {
                self.mu = self.warm_mean;
                let var = self.warm_m2 / (n - 1.0);
                let floor = (self.mu.abs() * self.cfg.min_sigma_rel).max(f64::MIN_POSITIVE);
                self.sigma = var.sqrt().max(floor);
            }
            return DriftSignal {
                window,
                residual,
                ewma: self.ewma,
                cusum_pos: 0.0,
                cusum_neg: 0.0,
                alarm: false,
                warming_up: true,
            };
        }

        let z = (residual - self.mu) / self.sigma;
        self.cusum_pos = (self.cusum_pos + z - self.cfg.cusum_k).max(0.0);
        self.cusum_neg = (self.cusum_neg - z - self.cfg.cusum_k).max(0.0);
        let alarm = self.cusum_pos > self.cfg.cusum_h || self.cusum_neg > self.cfg.cusum_h;
        let signal = DriftSignal {
            window,
            residual,
            ewma: self.ewma,
            cusum_pos: self.cusum_pos,
            cusum_neg: self.cusum_neg,
            alarm,
            warming_up: false,
        };
        if alarm {
            self.alarms += 1;
            self.since_alarm = true;
            apollo_telemetry::emit_event(
                "opm.drift.alarm",
                &[
                    ("monitor", FieldValue::from(self.name.as_str())),
                    ("window", FieldValue::from(window)),
                    ("residual", FieldValue::from(residual)),
                    ("ewma", FieldValue::from(self.ewma)),
                    ("cusum_pos", FieldValue::from(self.cusum_pos)),
                    ("cusum_neg", FieldValue::from(self.cusum_neg)),
                ],
            );
            apollo_telemetry::counter("opm.drift.alarms").inc();
            // Reset the tripped side(s) so persistent drift re-alarms.
            if self.cusum_pos > self.cfg.cusum_h {
                self.cusum_pos = 0.0;
            }
            if self.cusum_neg > self.cfg.cusum_h {
                self.cusum_neg = 0.0;
            }
        } else if self.since_alarm
            && self.cusum_pos < self.cfg.cusum_h / 2.0
            && self.cusum_neg < self.cfg.cusum_h / 2.0
        {
            self.since_alarm = false;
            apollo_telemetry::emit_event(
                "opm.drift.clear",
                &[
                    ("monitor", FieldValue::from(self.name.as_str())),
                    ("window", FieldValue::from(window)),
                ],
            );
        }
        signal
    }
}

/// Fail-safe arming configuration: how drift alarms translate into a
/// throttle floor for the governor actuator.
#[derive(Copy, Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ArmConfig {
    /// Throttle floor applied while armed (the PR-2 fail-safe
    /// conservative level).
    pub conservative_level: u8,
    /// Windows the floor is held after the last alarm (hysteresis).
    pub hold_windows: u64,
}

impl Default for ArmConfig {
    fn default() -> Self {
        ArmConfig {
            conservative_level: 3,
            hold_windows: 8,
        }
    }
}

/// Drift → governor wiring: latches drift alarms into a held throttle
/// floor, mirroring the fail-safe governor's "distrusted ⇒ throttled"
/// invariant for model-health distrust.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FailSafeArm {
    cfg: ArmConfig,
    hold: u64,
    /// Windows spent armed.
    pub armed_windows: u64,
}

impl FailSafeArm {
    /// New, disarmed.
    pub fn new(cfg: ArmConfig) -> Self {
        FailSafeArm {
            cfg,
            hold: 0,
            armed_windows: 0,
        }
    }

    /// Whether the floor is currently applied.
    pub fn armed(&self) -> bool {
        self.hold > 0
    }

    /// Feeds one window's alarm state (`monitor` names the triggering
    /// detector in emitted events); returns the throttle floor to
    /// apply this window (0 when disarmed).
    pub fn update(&mut self, alarm: bool, window: u64, monitor: &str) -> u8 {
        let was_armed = self.armed();
        if alarm {
            self.hold = self.cfg.hold_windows;
        } else if self.hold > 0 {
            self.hold -= 1;
        }
        if self.armed() && !was_armed {
            apollo_telemetry::emit_event(
                "opm.drift.armed",
                &[
                    ("monitor", FieldValue::from(monitor)),
                    ("window", FieldValue::from(window)),
                    ("level", FieldValue::from(self.cfg.conservative_level)),
                ],
            );
        } else if !self.armed() && was_armed {
            apollo_telemetry::emit_event(
                "opm.drift.disarmed",
                &[
                    ("monitor", FieldValue::from(monitor)),
                    ("window", FieldValue::from(window)),
                ],
            );
        }
        if self.armed() {
            self.armed_windows += 1;
            self.cfg.conservative_level
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(
        det: &mut DriftDetector,
        residuals: impl IntoIterator<Item = f64>,
    ) -> Vec<DriftSignal> {
        residuals.into_iter().map(|r| det.observe(r)).collect()
    }

    #[test]
    fn stationary_residuals_never_alarm() {
        let mut det = DriftDetector::new("quant", DriftConfig::default());
        // Deterministic small oscillation around 0.1.
        let signals = drive(
            &mut det,
            (0..200).map(|i| 0.1 + 0.01 * ((i % 7) as f64 - 3.0)),
        );
        assert!(
            signals.iter().all(|s| !s.alarm),
            "no alarms on stationary input"
        );
        assert_eq!(det.alarms(), 0);
        let (mu, sigma) = det.baseline();
        assert!((mu - 0.1).abs() < 0.02, "baseline mean ≈ 0.1, got {mu}");
        assert!(sigma > 0.0);
    }

    #[test]
    fn mean_shift_alarms_and_persists() {
        let mut det = DriftDetector::new("truth", DriftConfig::default());
        let warm: Vec<f64> = (0..32).map(|i| 0.01 * ((i % 5) as f64 - 2.0)).collect();
        drive(&mut det, warm);
        assert_eq!(det.alarms(), 0);
        // A sustained +10σ-ish shift must alarm quickly and re-alarm.
        let shifted = drive(&mut det, std::iter::repeat_n(0.5, 100));
        let first = shifted.iter().position(|s| s.alarm);
        assert!(first.is_some(), "shift must alarm");
        assert!(
            first.unwrap() < 30,
            "alarm should fire quickly, got {first:?}"
        );
        assert!(
            det.alarms() >= 2,
            "persistent drift must re-alarm: {}",
            det.alarms()
        );
    }

    #[test]
    fn negative_shift_trips_the_negative_side() {
        let mut det = DriftDetector::new("truth", DriftConfig::default());
        drive(&mut det, (0..32).map(|i| 0.01 * ((i % 5) as f64 - 2.0)));
        let shifted = drive(&mut det, std::iter::repeat_n(-0.5, 50));
        let alarm = shifted
            .iter()
            .find(|s| s.alarm)
            .expect("negative drift alarms");
        assert!(alarm.cusum_neg > alarm.cusum_pos);
    }

    #[test]
    fn constant_warmup_does_not_divide_by_zero() {
        let mut det = DriftDetector::new(
            "quant",
            DriftConfig {
                warmup: 4,
                ..DriftConfig::default()
            },
        );
        let signals = drive(&mut det, std::iter::repeat_n(2.0, 50));
        assert!(signals
            .iter()
            .all(|s| s.cusum_pos.is_finite() && s.cusum_neg.is_finite()));
        assert_eq!(det.alarms(), 0, "identical residuals are not drift");
        let (_, sigma) = det.baseline();
        assert!(sigma > 0.0, "sigma floored, not zero");
    }

    #[test]
    fn detector_state_is_deterministic() {
        let run = || {
            let mut det = DriftDetector::new("quant", DriftConfig::default());
            drive(&mut det, (0..100).map(|i| ((i * 37) % 11) as f64 * 0.03));
            det
        };
        assert_eq!(run(), run(), "identical inputs give bit-identical state");
    }

    #[test]
    fn failsafe_arm_holds_and_releases() {
        let cfg = ArmConfig {
            conservative_level: 2,
            hold_windows: 3,
        };
        let mut arm = FailSafeArm::new(cfg);
        assert_eq!(arm.update(false, 0, "quant"), 0);
        assert_eq!(arm.update(true, 1, "quant"), 2);
        assert!(arm.armed());
        assert_eq!(arm.update(false, 2, "quant"), 2);
        assert_eq!(arm.update(false, 3, "quant"), 2);
        assert_eq!(arm.update(false, 4, "quant"), 0, "hold expires");
        assert!(!arm.armed());
        assert_eq!(arm.armed_windows, 3);
    }
}
