//! Hardware-structure comparison across power-meter families
//! (paper Table 3): counters and multipliers required per method.

use std::fmt;

/// Structural cost of one monitoring approach.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize)]
pub struct MonitorStructure {
    /// Method / citation label.
    pub method: String,
    /// Number of hardware counters.
    pub counters: usize,
    /// Number of hardware multipliers.
    pub multipliers: usize,
    /// Notes.
    pub note: String,
}

impl fmt::Display for MonitorStructure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<28} counters={:<6} multipliers={:<8} {}",
            self.method, self.counters, self.multipliers, self.note
        )
    }
}

/// Reproduces the paper's Table 3 for a given design size `m` and proxy
/// count `q`.
pub fn table3(m: usize, q: usize) -> Vec<MonitorStructure> {
    vec![
        MonitorStructure {
            method: "Yang et al. [75]".into(),
            counters: 0,
            multipliers: m,
            note: "SVD instrumentation scales with all signals".into(),
        },
        MonitorStructure {
            method: "Simmani [40]".into(),
            counters: q,
            multipliers: q * q,
            note: "polynomial terms need Q^2 products".into(),
        },
        MonitorStructure {
            method: "Coarse OPMs [23,51,80,81]".into(),
            counters: q,
            multipliers: q,
            note: "counter + multiplier per proxy".into(),
        },
        MonitorStructure {
            method: "Pagliari et al. [53]".into(),
            counters: q,
            multipliers: 1,
            note: "time-multiplexed multiplier".into(),
        },
        MonitorStructure {
            method: "APOLLO per-cycle".into(),
            counters: 1,
            multipliers: 0,
            note: "AND-gated weights + adder tree".into(),
        },
        MonitorStructure {
            method: "APOLLO multi-cycle".into(),
            counters: 1,
            multipliers: 0,
            note: "same hardware; shift-divide by T".into(),
        },
    ]
}

/// Verifies a generated OPM netlist against the APOLLO row of Table 3.
pub fn verify_apollo_structure(hw: &crate::hardware::OpmHardware) -> MonitorStructure {
    let mut multipliers = 0usize;
    let mut counters = 0usize;
    for node in hw.netlist.nodes() {
        match node.op {
            apollo_rtl::Op::Mul(..) | apollo_rtl::Op::Udiv(..) => multipliers += 1,
            // The T-cycle window counter and the accumulator are the only
            // counter-like registers; identify by width > 1 register fed
            // by an adder (conservative census: every multi-bit register).
            apollo_rtl::Op::Reg { .. } if node.width > 1 => counters += 1,
            _ => {}
        }
    }
    MonitorStructure {
        method: "APOLLO (generated)".into(),
        counters,
        multipliers,
        note: format!("Q={} B={}", hw.inputs.len(), hw.model.spec.b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::build_opm;
    use crate::quant::{OpmSpec, QuantizedOpm};

    #[test]
    fn table_has_expected_shape() {
        let rows = table3(60_000, 150);
        let apollo = rows
            .iter()
            .find(|r| r.method.starts_with("APOLLO per"))
            .unwrap();
        assert_eq!(apollo.multipliers, 0);
        assert_eq!(apollo.counters, 1);
        let simmani = rows
            .iter()
            .find(|r| r.method.starts_with("Simmani"))
            .unwrap();
        assert_eq!(simmani.multipliers, 150 * 150);
        for r in &rows {
            assert!(!r.to_string().is_empty());
        }
    }

    #[test]
    fn generated_opm_matches_claim() {
        let q = 24;
        let model = QuantizedOpm {
            spec: OpmSpec { q, b: 10, t: 16 },
            bits: (0..q).collect(),
            is_clock_gate: vec![false; q],
            weights: vec![7; q],
            scale: 1.0,
            intercept: 0.0,
        };
        let hw = build_opm(&model).unwrap();
        let s = verify_apollo_structure(&hw);
        assert_eq!(s.multipliers, 0);
        // Window counter + accumulator + sum pipeline + output register:
        // a handful of multi-bit registers, far from Q.
        assert!(s.counters <= 4, "counter-like registers: {}", s.counters);
    }
}
