//! Property-based differential tests for the hardened OPM and the
//! deterministic fault layers.
//!
//! Properties:
//! 1. Under an **empty** meter fault plan the hardened estimator —
//!    saturating accumulators, envelope, any redundancy mode — is
//!    bit-exact with the baseline [`QuantizedOpm`] window outputs, for
//!    arbitrary specs and toggle streams.
//! 2. A seeded meter fault plan replays **byte-identically** (serialized
//!    report and readings), for arbitrary seeds and rates.
//! 3. A seeded netlist [`FaultPlan`] produces byte-identical fault
//!    reports at 1 and 2 simulator threads, for arbitrary seeds.

use apollo_opm::{HardenedOpm, MeterFaultPlan, OpmSpec, QuantizedOpm, Redundancy};
use apollo_rtl::{CapModel, NetlistBuilder, Unit, CLOCK_ROOT};
use apollo_sim::{FaultPlan, PowerConfig, Simulator, StuckAtFault, ToggleMatrix};
use proptest::prelude::*;

fn synthetic_opm(q: usize, b: u8, t: usize, wseed: u64) -> QuantizedOpm {
    let mut s = wseed | 1;
    let weights = (0..q)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % (1 << b)) as u32
        })
        .collect();
    QuantizedOpm {
        spec: OpmSpec { q, b, t },
        bits: (0..q).collect(),
        is_clock_gate: vec![false; q],
        weights,
        scale: 1.0,
        intercept: 0.0,
    }
}

fn random_toggles(q: usize, cycles: usize, seed: u64) -> ToggleMatrix {
    let mut m = ToggleMatrix::new(q, cycles);
    let mut s = seed | 1;
    for c in 0..cycles {
        for k in 0..q {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            if s & 3 == 0 {
                m.set(k, c);
            }
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Property 1: zero-fault hardened == baseline, bit for bit.
    #[test]
    fn hardened_is_bit_exact_with_baseline_under_empty_plan(
        q in 1usize..24,
        b in 2u8..13,
        t_exp in 0u32..6,
        wseed in any::<u64>(),
        tseed in any::<u64>(),
        tmr in any::<bool>(),
    ) {
        let t = 1usize << t_exp;
        let quant = synthetic_opm(q, b, t, wseed);
        let m = random_toggles(q, t * 8, tseed);
        let expected = quant.window_outputs(&m);
        let redundancy = if tmr { Redundancy::MedianOfThree } else { Redundancy::Single };
        let run = HardenedOpm::new(quant)
            .with_redundancy(redundancy)
            .run(&m, &MeterFaultPlan::empty())
            .unwrap();
        prop_assert_eq!(run.readings.len(), expected.len());
        for (r, &e) in run.readings.iter().zip(&expected) {
            prop_assert_eq!(r.value, e, "epoch {}", r.epoch);
            prop_assert!(!r.flagged, "healthy reading flagged at epoch {}", r.epoch);
        }
        prop_assert!(run.report.events.is_empty());
    }

    /// Property 2: seeded meter plans replay byte-identically.
    #[test]
    fn seeded_meter_plan_replays_byte_identically(
        seed in any::<u64>(),
        counter_pm in 0u32..400,
        rom_pm in 0u32..400,
        drop_pm in 0u32..400,
        wseed in any::<u64>(),
        tseed in any::<u64>(),
    ) {
        let quant = synthetic_opm(11, 8, 8, wseed);
        let m = random_toggles(11, 64, tseed);
        let plan = MeterFaultPlan {
            seed,
            counter_flip_rate: counter_pm as f64 / 1000.0,
            rom_flip_rate: rom_pm as f64 / 1000.0,
            drop_rate: drop_pm as f64 / 1000.0,
        };
        let hard = HardenedOpm::new(quant).with_redundancy(Redundancy::MedianOfThree);
        let a = hard.run(&m, &plan).unwrap();
        let b = hard.run(&m, &plan).unwrap();
        prop_assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    /// Property 3: netlist fault reports are byte-identical across
    /// simulator thread counts.
    #[test]
    fn sim_fault_reports_identical_across_thread_counts(
        seed in any::<u64>(),
        reg_pm in 0u32..200,
        mem_pm in 0u32..200,
        stuck_bit in 0u8..8,
    ) {
        let mut b = NetlistBuilder::new("t");
        let r0 = b.reg(8, 0, CLOCK_ROOT, "r0", Unit::Control);
        let r1 = b.reg(8, 3, CLOCK_ROOT, "r1", Unit::Alu);
        let one = b.constant(1, 8);
        let n0 = b.add(r0, one);
        let n1 = b.add(r1, r0);
        b.connect(r0, n0);
        b.connect(r1, n1);
        let addr = b.reg(4, 0, CLOCK_ROOT, "addr", Unit::LoadStore);
        let addr_one = b.constant(1, 4);
        let addr_next = b.add(addr, addr_one);
        b.connect(addr, addr_next);
        let mem = b.memory(16, 8, "m0", Unit::LoadStore);
        let en = b.constant(1, 1);
        b.mem_write(mem, en, addr, r1);
        let _rd = b.mem_read(mem, addr, en, "rd", Unit::LoadStore);
        let nl = b.build().unwrap();
        let cap = CapModel::default().annotate(&nl);
        let plan = FaultPlan {
            seed,
            stuck_at: vec![StuckAtFault {
                signal: "r0".into(),
                bit: stuck_bit,
                value: true,
                from_cycle: 3,
                to_cycle: 40,
            }],
            reg_flip_rate: reg_pm as f64 / 1000.0,
            mem_flip_rate: mem_pm as f64 / 1000.0,
        };
        let run = |threads: usize| {
            let mut sim =
                Simulator::with_faults(&nl, &cap, PowerConfig::default(), threads, Some(&plan))
                    .unwrap();
            for _ in 0..64 {
                sim.step();
            }
            serde_json::to_string(&sim.fault_report().unwrap()).unwrap()
        };
        prop_assert_eq!(run(1), run(2));
    }
}
