//! Property-based invariants of per-unit power attribution.
//!
//! The load-bearing claim of the introspection dashboard is that the
//! per-unit readings *provably* sum to the OPM's total prediction.
//! These properties pin it for arbitrary models and toggle patterns:
//!
//! 1. per-class raw accumulators sum bit-exactly (integer arithmetic)
//!    to the OPM's raw window accumulator, and the derived window
//!    output matches [`QuantizedOpm::window_outputs`] exactly;
//! 2. the de-scaled estimate matches `predict_windows` exactly;
//! 3. degenerate models (all-zero weights, single proxy, all-idle
//!    windows) produce finite shares and never divide by zero.

use apollo_core::{ApolloModel, Proxy, SelectionPenalty};
use apollo_opm::{AttributionAccumulator, AttributionMap, QuantizedOpm};
use apollo_rtl::Unit;
use apollo_sim::ToggleMatrix;
use proptest::prelude::*;

fn model_from(weights: &[f64], unit_picks: &[u8], gated: &[bool]) -> ApolloModel {
    ApolloModel {
        design_name: "prop".into(),
        proxies: weights
            .iter()
            .enumerate()
            .map(|(i, &w)| Proxy {
                bit: i,
                weight: w,
                name: format!("p{i}"),
                unit: Unit::ALL[unit_picks[i] as usize % Unit::ALL.len()],
                is_clock_gate: gated[i],
            })
            .collect(),
        intercept: 7.5,
        selection_lambda: 1.0,
        penalty: SelectionPenalty::Mcp { gamma: 10.0 },
        candidates: weights.len(),
        m_bits: weights.len().max(1) * 10,
    }
}

/// Deterministic toggle pattern from a seed (xorshift).
fn toggles(q: usize, cycles: usize, seed: u64) -> ToggleMatrix {
    let mut m = ToggleMatrix::new(q, cycles);
    let mut s = seed | 1;
    for c in 0..cycles {
        for k in 0..q {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            if s & 3 == 0 {
                m.set(k, c);
            }
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Per-class contributions sum exactly to the OPM raw accumulator,
    /// and output/descale are bit-exact with the hardware reference.
    #[test]
    fn attribution_sums_exactly_for_arbitrary_models(
        weights in proptest::collection::vec(0u32..2000, 1..24),
        seed in any::<u64>(),
        t_log in 2u32..6,
        b in 4u8..12,
    ) {
        let t = 1usize << t_log;
        let q = weights.len();
        let fweights: Vec<f64> = weights.iter().map(|&w| w as f64 / 16.0).collect();
        let unit_picks: Vec<u8> = (0..q).map(|i| (seed.rotate_left(i as u32) & 0xff) as u8).collect();
        let gated: Vec<bool> = (0..q).map(|i| (seed >> (i % 60)) & 1 == 1).collect();
        let model = model_from(&fweights, &unit_picks, &gated);
        let opm = QuantizedOpm::from_model(&model, b, t).unwrap();
        let map = AttributionMap::from_model(&model);
        let mut acc = AttributionAccumulator::new(&opm, &map);

        let cycles = t * 3;
        let m = toggles(q, cycles, seed);
        let reference = opm.window_outputs(&m);
        let ref_raw = opm.raw_sums(&m);

        let mut windows = Vec::new();
        for c in 0..cycles {
            if let Some(w) = acc.cycle(|k| m.get(k, c)) {
                windows.push(w);
            }
        }
        prop_assert_eq!(windows.len(), 3);
        for (i, w) in windows.iter().enumerate() {
            // 1. exact integer decomposition
            prop_assert_eq!(w.raw.iter().sum::<u64>(), w.total);
            // against the per-cycle reference accumulator
            let expect_total: u64 = ref_raw[i * t..(i + 1) * t].iter().sum();
            prop_assert_eq!(w.total, expect_total);
            // 2. hardware window output + descale bit-exact
            prop_assert_eq!(w.output, reference[i]);
            let est = acc.est_power(w);
            let pred = opm.intercept + reference[i] as f64 / opm.scale;
            prop_assert!(est == pred, "descale must be identical: {est} vs {pred}");
            // shares are finite and in [0, 1]
            for cls in 0..map.n_classes() {
                let s = w.share(cls);
                prop_assert!(s.is_finite() && (0.0..=1.0).contains(&s));
                prop_assert!(acc.unit_power(w, cls).is_finite());
            }
        }
    }

    /// Degenerate models — zero weights and/or all-idle windows —
    /// never divide by zero and keep every reading finite.
    #[test]
    fn degenerate_models_stay_finite(
        q in 1usize..8,
        zero_weights in any::<bool>(),
        idle in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let weights: Vec<f64> = if zero_weights {
            vec![0.0; q]
        } else {
            (0..q).map(|i| i as f64).collect() // first weight still 0
        };
        let unit_picks: Vec<u8> = (0..q).map(|i| i as u8).collect();
        let gated = vec![false; q];
        let model = model_from(&weights, &unit_picks, &gated);
        let opm = QuantizedOpm::from_model(&model, 8, 4).unwrap();
        prop_assert!(opm.scale > 0.0, "scale is always positive");
        let map = AttributionMap::from_model(&model);
        let mut acc = AttributionAccumulator::new(&opm, &map);

        let m = if idle {
            ToggleMatrix::new(q, 8) // nothing ever toggles
        } else {
            toggles(q, 8, seed)
        };
        for c in 0..8 {
            if let Some(w) = acc.cycle(|k| m.get(k, c)) {
                prop_assert_eq!(w.raw.iter().sum::<u64>(), w.total);
                prop_assert!(acc.est_power(&w).is_finite());
                for cls in 0..map.n_classes() {
                    prop_assert!(w.share(cls).is_finite());
                    prop_assert!(acc.unit_power(&w, cls).is_finite());
                }
                if idle || zero_weights {
                    prop_assert_eq!(w.total, 0);
                    for cls in 0..map.n_classes() {
                        prop_assert_eq!(w.share(cls), 0.0);
                    }
                }
            }
        }
    }
}
