//! # apollo-dsp
//!
//! A non-CPU compute engine for the APOLLO reproduction: a streaming
//! multiply-accumulate (FIR-style) DSP datapath with per-lane clock
//! gating, built on the same [`apollo_rtl`] eDSL as the CPU.
//!
//! The paper argues its framework is "micro-architecture agnostic,
//! applicable to a wide spectrum of compute-units and not just CPUs"
//! (§1) and discusses droop metering on the Hexagon DSP (§8.2). This
//! crate provides that second compute-unit class so the claim can be
//! exercised: dataflow-dominated, command-driven, with long MAC bursts
//! and idle gaps — a very different activity profile from the CPU's
//! control-dominated pipelines.
//!
//! ## Example
//!
//! ```
//! use apollo_dsp::{build_dsp, DspConfig, DspSim, FirCommand};
//!
//! let handles = build_dsp(&DspConfig::default())?;
//! let mut sim = DspSim::new(&handles);
//! let samples: Vec<u64> = (0..64).map(|i| (i * 37) % 251).collect();
//! let coefs: Vec<u64> = (0..16).map(|i| i + 1).collect();
//! sim.load_samples(&samples);
//! sim.load_coefficients(&coefs);
//! let out = sim.run_fir(&FirCommand { base: 0, length: 16, outputs: 4, stride: 1 }, 10_000);
//! assert_eq!(out.len(), 4);
//! # Ok::<(), apollo_rtl::RtlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod harness;
mod workloads;

pub use engine::{build_dsp, encode_command, DspConfig, DspHandles};
pub use harness::{DspSim, FirCommand};
pub use workloads::{random_commands, DspWorkload};
