//! Random DSP workload generation for power-model training.

use crate::harness::FirCommand;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A self-contained DSP workload: memory images plus a command stream.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DspWorkload {
    /// Workload name.
    pub name: String,
    /// Sample memory image.
    pub samples: Vec<u64>,
    /// Coefficient memory image.
    pub coefs: Vec<u64>,
    /// Encoded, zero-terminated command words.
    pub commands: Vec<u64>,
}

/// Generates a random workload: commands with varying tap counts,
/// output batches and idle gaps — the DSP analogue of the CPU's
/// constrained-random training programs.
pub fn random_commands(seed: u64, n_commands: usize, max_gap: u16) -> DspWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let samples = (0..512).map(|_| rng.gen::<u64>() & 0xFFFF).collect();
    let coefs = (0..128).map(|_| rng.gen::<u64>() & 0xFFFF).collect();
    let commands = (0..n_commands)
        .map(|_| {
            let cmd = FirCommand {
                base: rng.gen_range(0..384),
                length: rng.gen_range(1..96),
                outputs: rng.gen_range(1..12),
                stride: rng.gen_range(0..8),
            };
            let gap = if max_gap == 0 {
                0
            } else {
                rng.gen_range(0..max_gap)
            };
            cmd.encode(gap)
        })
        .collect();
    DspWorkload {
        name: format!("dsp-rand-{seed}"),
        samples,
        coefs,
        commands,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_nonempty() {
        let a = random_commands(5, 8, 200);
        let b = random_commands(5, 8, 200);
        assert_eq!(a, b);
        assert_eq!(a.commands.len(), 8);
        assert!(a.commands.iter().all(|&c| c != 0));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(random_commands(1, 8, 200), random_commands(2, 8, 200));
    }
}
