//! The DSP engine RTL: a command-sequenced, multi-lane MAC datapath.
//!
//! Commands are preloaded into a command memory (like the CPU's program
//! image), so workloads are self-contained and the standard trace-
//! capture flow applies unchanged. Each command runs one FIR-style
//! kernel: `out[k] = Σ_i sample[base + k·stride + i] · coef[i]` for
//! `i < length`, `k < outputs`, preceded by an idle gap — giving the
//! bursty, dataflow-dominated power profile typical of DSP engines.

// Lockstep multi-array index loops are intentional throughout this
// module; iterator zips would obscure the hardware/math being expressed.
#![allow(clippy::needless_range_loop)]

use apollo_rtl::{MemId, Netlist, NetlistBuilder, NodeId, RtlError, Unit, CLOCK_ROOT};

/// DSP engine parameters.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DspConfig {
    /// MAC lanes (1 ..= 8).
    pub lanes: u8,
    /// Sample memory words (16-bit each; power of two).
    pub sample_words: u32,
    /// Coefficient memory words (16-bit each; power of two).
    pub coef_words: u32,
    /// Output memory words (32-bit each; power of two).
    pub out_words: u32,
    /// Command memory words (one command each; power of two).
    pub cmd_words: u32,
    /// Depth of the debug staging chain on the result bus.
    pub staging_depth: u8,
}

impl Default for DspConfig {
    fn default() -> Self {
        DspConfig {
            lanes: 4,
            sample_words: 1024,
            coef_words: 256,
            out_words: 256,
            cmd_words: 64,
            staging_depth: 2,
        }
    }
}

impl DspConfig {
    /// Validates invariants.
    ///
    /// # Panics
    /// Panics with a description of the violated constraint.
    pub fn validate(&self) {
        assert!((1..=8).contains(&self.lanes), "lanes out of range");
        for (name, v) in [
            ("sample_words", self.sample_words),
            ("coef_words", self.coef_words),
            ("out_words", self.out_words),
            ("cmd_words", self.cmd_words),
        ] {
            assert!(
                v.is_power_of_two() && v >= 8,
                "{name} must be a power of two >= 8"
            );
        }
    }
}

/// Command word encoding: `gap[41:30] | stride[29:26] | outputs[25:18] |
/// length[17:10] | base[9:0]`; an all-zero word halts the sequencer.
pub fn encode_command(base: u16, length: u8, outputs: u8, stride: u8, gap: u16) -> u64 {
    assert!(base < 1 << 10, "base out of range");
    assert!(gap < 1 << 12, "gap out of range");
    assert!(stride < 1 << 4, "stride out of range");
    (base as u64)
        | ((length as u64) << 10)
        | ((outputs as u64) << 18)
        | ((stride as u64) << 26)
        | ((gap as u64) << 30)
}

/// Handles into the built DSP netlist.
#[derive(Clone, Debug)]
pub struct DspHandles {
    /// The finished netlist.
    pub netlist: Netlist,
    /// The configuration.
    pub config: DspConfig,
    /// Command memory (preload with [`encode_command`] words, zero-
    /// terminated).
    pub cmd_mem: MemId,
    /// Sample memory.
    pub sample_mem: MemId,
    /// Coefficient memory.
    pub coef_mem: MemId,
    /// Output memory.
    pub out_mem: MemId,
    /// High once the zero command is reached.
    pub halted: NodeId,
    /// Completed-command counter.
    pub commands_done: NodeId,
    /// Completed-MAC-group counter.
    pub mac_groups: NodeId,
}

const S_FETCH: u64 = 0;
const S_LOAD: u64 = 1;
const S_GAP: u64 = 2;
const S_ISSUE: u64 = 3;
const S_MAC: u64 = 4;
const S_WRITE: u64 = 5;
const S_HALT: u64 = 6;

fn eq_c(b: &mut NetlistBuilder, x: NodeId, v: u64) -> NodeId {
    let w = b.width(x);
    let c = b.constant(v, w);
    b.eq(x, c)
}

fn add_c(b: &mut NetlistBuilder, x: NodeId, v: u64) -> NodeId {
    let w = b.width(x);
    let c = b.constant(v, w);
    b.add(x, c)
}

/// Builds the DSP engine.
///
/// # Errors
/// Propagates netlist construction errors (indicating a generator bug).
///
/// # Panics
/// Panics if `config` fails validation.
pub fn build_dsp(config: &DspConfig) -> Result<DspHandles, RtlError> {
    config.validate();
    let c = config.clone();
    let lanes = c.lanes as usize;
    let mut b = NetlistBuilder::new("mac-dsp");

    b.set_unit(Unit::Control);
    let cmd_mem = b.memory(c.cmd_words, 42, "cmd_mem", Unit::Control);
    b.set_unit(Unit::LoadStore);
    let sample_mem = b.memory(c.sample_words, 16, "sample_mem", Unit::LoadStore);
    let coef_mem = b.memory(c.coef_words, 16, "coef_mem", Unit::LoadStore);
    let out_mem = b.memory(c.out_words, 32, "out_mem", Unit::LoadStore);

    // ---- control state (root domain) ----------------------------------
    b.set_unit(Unit::Control);
    let st = b.reg(3, S_FETCH, CLOCK_ROOT, "seq/state", Unit::Control);
    let cmd_idx = b.reg(8, 0, CLOCK_ROOT, "seq/cmd_idx", Unit::Control);
    let gap_ctr = b.reg(12, 0, CLOCK_ROOT, "seq/gap", Unit::Control);
    let halted = b.reg(1, 0, CLOCK_ROOT, "seq/halted", Unit::Control);
    let commands_done = b.reg(16, 0, CLOCK_ROOT, "seq/cmds", Unit::Control);
    // Command fields.
    let base = b.reg(10, 0, CLOCK_ROOT, "cmd/base", Unit::Control);
    let length = b.reg(8, 0, CLOCK_ROOT, "cmd/length", Unit::Control);
    let outputs = b.reg(8, 0, CLOCK_ROOT, "cmd/outputs", Unit::Control);
    let stride = b.reg(4, 0, CLOCK_ROOT, "cmd/stride", Unit::Control);
    // Kernel indices.
    b.set_unit(Unit::Issue);
    let tap_idx = b.reg(16, 0, CLOCK_ROOT, "fir/tap_idx", Unit::Issue);
    let out_idx = b.reg(8, 0, CLOCK_ROOT, "fir/out_idx", Unit::Issue);
    let lane_act: Vec<NodeId> = (0..lanes)
        .map(|l| b.reg(1, 0, CLOCK_ROOT, &format!("fir/lane{l}_act"), Unit::Issue))
        .collect();

    let st_fetch = eq_c(&mut b, st, S_FETCH);
    let st_load = eq_c(&mut b, st, S_LOAD);
    let st_gap = eq_c(&mut b, st, S_GAP);
    let st_issue = eq_c(&mut b, st, S_ISSUE);
    let st_mac = eq_c(&mut b, st, S_MAC);
    let st_write = eq_c(&mut b, st, S_WRITE);

    // ---- command fetch --------------------------------------------------
    b.set_unit(Unit::Control);
    let cmd_addr = b.zext(cmd_idx, 16);
    let cmd_port = b.mem_read(cmd_mem, cmd_addr, st_fetch, "seq/cmd_word", Unit::Control);
    let cmd_zero = eq_c(&mut b, cmd_port, 0);
    let f_base = b.slice(cmd_port, 0, 10);
    let f_length = b.slice(cmd_port, 10, 8);
    let f_outputs = b.slice(cmd_port, 18, 8);
    let f_stride = b.slice(cmd_port, 26, 4);
    let f_gap = b.slice(cmd_port, 30, 12);

    // ---- per-lane datapath (gated clocks) ------------------------------
    b.set_unit(Unit::Vector);
    let sample_base16 = {
        let base16 = b.zext(base, 16);
        let stride16 = b.zext(stride, 16);
        let out16 = b.zext(out_idx, 16);
        let shift = b.mul(stride16, out16);
        let t = b.add(base16, shift);
        b.add(t, tap_idx)
    };
    b.name(sample_base16, "fir/sample_base", Unit::Vector);

    let mut lane_ports = Vec::with_capacity(lanes);
    let mut lane_accs = Vec::with_capacity(lanes);
    let mut lane_clocks = Vec::with_capacity(lanes);
    for l in 0..lanes {
        // The lane datapath is clocked while its work is in flight or
        // being cleared.
        let en = {
            let active_mac = b.and(st_mac, lane_act[l]);
            let t = b.or(active_mac, st_issue);
            b.or(t, st_write)
        };
        let clk = b.clock_gate(en, &format!("clk/lane{l}"), Unit::ClockTree);
        lane_clocks.push(clk);

        let s_addr = add_c(&mut b, sample_base16, l as u64);
        let c_addr = {
            let t = add_c(&mut b, tap_idx, l as u64);
            b.trunc(t, 16)
        };
        // Lane is active this group if tap_idx + l < length.
        let len16 = b.zext(length, 16);
        let idx_l = add_c(&mut b, tap_idx, l as u64);
        let active = b.ult(idx_l, len16);
        let issue_read = b.and(st_issue, active);
        let sp = b.mem_read(
            sample_mem,
            s_addr,
            issue_read,
            &format!("lane{l}/sample"),
            Unit::Vector,
        );
        let cp = b.mem_read(
            coef_mem,
            c_addr,
            issue_read,
            &format!("lane{l}/coef"),
            Unit::Vector,
        );
        lane_ports.push((sp, cp));

        // lane_act registers the ISSUE-time decision for the MAC cycle.
        let act_next = b.mux(st_issue, active, lane_act[l]);
        b.connect(lane_act[l], act_next);

        // Accumulator in the gated domain.
        let acc = b.reg(40, 0, clk, &format!("lane{l}/acc"), Unit::Vector);
        let sp32 = b.zext(sp, 32);
        let cp32 = b.zext(cp, 32);
        let product = b.mul(sp32, cp32);
        b.name(product, &format!("lane{l}/product"), Unit::Vector);
        let prod40 = b.zext(product, 40);
        let bumped = b.add(acc, prod40);
        let do_mac = b.and(st_mac, lane_act[l]);
        let kept = b.mux(do_mac, bumped, acc);
        let zero40 = b.constant(0, 40);
        let cleared = b.mux(st_write, zero40, kept);
        b.connect(acc, cleared);
        lane_accs.push(acc);
    }

    // ---- result reduction and writeback --------------------------------
    b.set_unit(Unit::Alu);
    let mut level = lane_accs.clone();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut i = 0;
        while i < level.len() {
            if i + 1 < level.len() {
                next.push(b.add(level[i], level[i + 1]));
            } else {
                next.push(level[i]);
            }
            i += 2;
        }
        level = next;
    }
    let total = level[0];
    let result = b.trunc(total, 32);
    b.name(result, "fir/result", Unit::Alu);
    let out_addr = b.zext(out_idx, 16);
    b.mem_write(out_mem, st_write, out_addr, result);

    // ---- FSM next-state -------------------------------------------------
    b.set_unit(Unit::Control);
    {
        let k_fetch = b.constant(S_FETCH, 3);
        let k_load = b.constant(S_LOAD, 3);
        let k_gap = b.constant(S_GAP, 3);
        let k_issue = b.constant(S_ISSUE, 3);
        let k_mac = b.constant(S_MAC, 3);
        let k_write = b.constant(S_WRITE, 3);
        let k_halt = b.constant(S_HALT, 3);

        let from_fetch = k_load;
        let gap_zero = eq_c(&mut b, f_gap, 0);
        let after_load = b.mux(gap_zero, k_issue, k_gap);
        let from_load = b.mux(cmd_zero, k_halt, after_load);
        let gap_done = eq_c(&mut b, gap_ctr, 1);
        let from_gap = b.mux(gap_done, k_issue, k_gap);
        let from_issue = k_mac;
        // After a MAC group: next group or writeback.
        let next_tap = add_c(&mut b, tap_idx, c.lanes as u64);
        let len16 = b.zext(length, 16);
        let more_taps = b.ult(next_tap, len16);
        let from_mac = b.mux(more_taps, k_issue, k_write);
        // After writeback: next output or next command.
        let next_out = add_c(&mut b, out_idx, 1);
        let more_outs = b.ult(next_out, outputs);
        let from_write = b.mux(more_outs, k_issue, k_fetch);

        let st_next = b.select(
            st,
            &[
                from_fetch, from_load, from_gap, from_issue, from_mac, from_write, k_halt, k_halt,
            ],
        );
        b.connect(st, st_next);

        // Command registers latch at LOAD.
        let bn = b.mux(st_load, f_base, base);
        b.connect(base, bn);
        let ln = b.mux(st_load, f_length, length);
        b.connect(length, ln);
        let on = b.mux(st_load, f_outputs, outputs);
        b.connect(outputs, on);
        let sn = b.mux(st_load, f_stride, stride);
        b.connect(stride, sn);
        let gn = {
            let dec = add_c(&mut b, gap_ctr, (1u64 << 12) - 1); // minus one
            let counting = b.mux(st_gap, dec, gap_ctr);
            b.mux(st_load, f_gap, counting)
        };
        b.connect(gap_ctr, gn);

        // Indices.
        let tap_next = {
            let bump = b.mux(st_mac, next_tap, tap_idx);
            let zero16 = b.constant(0, 16);
            let reset_w = b.mux(st_write, zero16, bump);
            b.mux(st_load, zero16, reset_w)
        };
        b.connect(tap_idx, tap_next);
        let out_next = {
            let bump = b.mux(st_write, next_out, out_idx);
            let zero8 = b.constant(0, 8);
            b.mux(st_load, zero8, bump)
        };
        b.connect(out_idx, out_next);

        // Command index advances when a command completes (or on a
        // skipped zero command — halted anyway).
        let cmd_complete = {
            let no_more = b.not(more_outs);
            b.and(st_write, no_more)
        };
        let ci_next = {
            let bump = add_c(&mut b, cmd_idx, 1);
            b.mux(cmd_complete, bump, cmd_idx)
        };
        b.connect(cmd_idx, ci_next);
        let cd_next = {
            let one16 = b.constant(1, 16);
            let zero16 = b.constant(0, 16);
            let inc = b.mux(cmd_complete, one16, zero16);
            b.add(commands_done, inc)
        };
        b.connect(commands_done, cd_next);

        let halt_now = b.and(st_load, cmd_zero);
        let hn = {
            let one1 = b.one();
            b.mux(halt_now, one1, halted)
        };
        b.connect(halted, hn);
    }

    // MAC-group counter in a gated domain (debug/event counter).
    b.set_unit(Unit::Issue);
    let mac_en = b.or(st_issue, st_mac);
    let clk_mac_dbg = b.clock_gate(mac_en, "clk/mac_dbg", Unit::ClockTree);
    let mac_groups = b.reg(24, 0, clk_mac_dbg, "fir/mac_groups", Unit::Issue);
    {
        let one24 = b.constant(1, 24);
        let zero24 = b.constant(0, 24);
        let inc = b.mux(st_mac, one24, zero24);
        let n = b.add(mac_groups, inc);
        b.connect(mac_groups, n);
    }
    // Debug staging on the result bus.
    if c.staging_depth > 0 {
        let mut prev = result;
        for s in 0..c.staging_depth {
            let r = b.reg(32, 0, clk_mac_dbg, &format!("fir/stage{s}"), Unit::Issue);
            b.connect(r, prev);
            prev = r;
        }
    }
    let _ = (&lane_ports, &lane_clocks, st_gap, st_fetch);

    let netlist = b.build()?;
    Ok(DspHandles {
        netlist,
        config: c,
        cmd_mem,
        sample_mem,
        coef_mem,
        out_mem,
        halted,
        commands_done,
        mac_groups,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_with_default_config() {
        let h = build_dsp(&DspConfig::default()).unwrap();
        let stats = h.netlist.stats();
        assert!(stats.signal_bits > 800, "M = {}", stats.signal_bits);
        assert!(
            stats.clock_domains >= 5,
            "domains = {}",
            stats.clock_domains
        );
        assert_eq!(stats.memories, 4);
    }

    #[test]
    fn command_encoding_fields() {
        let w = encode_command(0x3A, 16, 4, 2, 100);
        assert_eq!(w & 0x3FF, 0x3A);
        assert_eq!((w >> 10) & 0xFF, 16);
        assert_eq!((w >> 18) & 0xFF, 4);
        assert_eq!((w >> 26) & 0xF, 2);
        assert_eq!((w >> 30) & 0xFFF, 100);
    }

    #[test]
    fn lane_count_scales_signals() {
        let small = build_dsp(&DspConfig {
            lanes: 2,
            ..DspConfig::default()
        })
        .unwrap();
        let big = build_dsp(&DspConfig {
            lanes: 8,
            ..DspConfig::default()
        })
        .unwrap();
        assert!(big.netlist.signal_bits() > small.netlist.signal_bits());
    }

    #[test]
    #[should_panic(expected = "lanes out of range")]
    fn zero_lanes_rejected() {
        build_dsp(&DspConfig {
            lanes: 0,
            ..DspConfig::default()
        })
        .unwrap();
    }
}
