//! Simulation harness for the DSP engine.

use crate::engine::{encode_command, DspHandles};
use apollo_rtl::{CapAnnotation, CapModel};
use apollo_sim::{PowerConfig, Simulator};

/// One FIR kernel invocation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FirCommand {
    /// Starting sample index.
    pub base: u16,
    /// Number of taps.
    pub length: u8,
    /// Output samples to produce.
    pub outputs: u8,
    /// Input stride between outputs.
    pub stride: u8,
}

impl FirCommand {
    /// Encodes with an idle gap prefix.
    pub fn encode(&self, gap: u16) -> u64 {
        encode_command(self.base, self.length, self.outputs, self.stride, gap)
    }

    /// Software reference: the expected outputs over given memories.
    pub fn reference(&self, samples: &[u64], coefs: &[u64]) -> Vec<u64> {
        (0..self.outputs as usize)
            .map(|k| {
                let mut acc = 0u64;
                for i in 0..self.length as usize {
                    let s = samples
                        [(self.base as usize + k * self.stride as usize + i) % samples.len()]
                        & 0xFFFF;
                    let c = coefs[i % coefs.len()] & 0xFFFF;
                    acc = acc.wrapping_add((s as u32).wrapping_mul(c as u32) as u64);
                }
                acc & 0xFFFF_FFFF
            })
            .collect()
    }
}

/// A DSP simulation session.
#[derive(Debug)]
pub struct DspSim<'a> {
    handles: &'a DspHandles,
    cap: CapAnnotation,
    sim: Simulator<'a>,
}

impl<'a> DspSim<'a> {
    /// Creates a fresh session with default parasitics and power config.
    pub fn new(handles: &'a DspHandles) -> Self {
        let cap = CapModel::default().annotate(&handles.netlist);
        let sim = Simulator::new(&handles.netlist, &cap, PowerConfig::default());
        DspSim { handles, cap, sim }
    }

    /// The parasitic annotation in use.
    pub fn cap(&self) -> &CapAnnotation {
        &self.cap
    }

    /// Mutable access to the underlying simulator.
    pub fn sim_mut(&mut self) -> &mut Simulator<'a> {
        &mut self.sim
    }

    /// Shared access to the underlying simulator.
    pub fn sim(&self) -> &Simulator<'a> {
        &self.sim
    }

    /// Loads the sample memory (values masked to 16 bits).
    pub fn load_samples(&mut self, samples: &[u64]) {
        for (i, &s) in samples.iter().enumerate() {
            self.sim
                .poke_mem(self.handles.sample_mem, i as u32, s & 0xFFFF);
        }
    }

    /// Loads the coefficient memory (values masked to 16 bits).
    pub fn load_coefficients(&mut self, coefs: &[u64]) {
        for (i, &c) in coefs.iter().enumerate() {
            self.sim
                .poke_mem(self.handles.coef_mem, i as u32, c & 0xFFFF);
        }
    }

    /// Loads a zero-terminated command stream.
    ///
    /// # Panics
    /// Panics if the stream (plus terminator) exceeds command memory.
    pub fn load_commands(&mut self, words: &[u64]) {
        assert!(
            words.len() < self.handles.config.cmd_words as usize,
            "command stream too long"
        );
        for (i, &w) in words.iter().enumerate() {
            self.sim.poke_mem(self.handles.cmd_mem, i as u32, w);
        }
        self.sim
            .poke_mem(self.handles.cmd_mem, words.len() as u32, 0);
    }

    /// Steps until the sequencer halts or `max_cycles` elapse; returns
    /// the cycles executed, or `None` on timeout.
    pub fn run_to_halt(&mut self, max_cycles: u64) -> Option<u64> {
        let _span = apollo_telemetry::span("dsp.run_to_halt");
        for cycle in 1..=max_cycles {
            self.sim.step();
            if self.sim.value(self.handles.halted) == 1 {
                apollo_telemetry::counter("dsp.commands_run").inc();
                return Some(cycle);
            }
        }
        apollo_telemetry::counter("dsp.timeouts").inc();
        None
    }

    /// Runs a single FIR command and returns the produced outputs.
    ///
    /// # Panics
    /// Panics if the engine does not halt within `max_cycles`.
    pub fn run_fir(&mut self, cmd: &FirCommand, max_cycles: u64) -> Vec<u64> {
        self.load_commands(&[cmd.encode(0)]);
        self.run_to_halt(max_cycles)
            .expect("DSP did not halt in time");
        (0..cmd.outputs as u32)
            .map(|k| self.sim.mem_word(self.handles.out_mem, k))
            .collect()
    }

    /// Completed command count.
    pub fn commands_done(&self) -> u64 {
        self.sim.value(self.handles.commands_done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{build_dsp, DspConfig};

    fn pattern(n: usize, seed: u64) -> Vec<u64> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s & 0xFFFF
            })
            .collect()
    }

    #[test]
    fn fir_matches_software_reference() {
        let handles = build_dsp(&DspConfig::default()).unwrap();
        let samples = pattern(256, 11);
        let coefs = pattern(64, 22);
        for (cmd_idx, cmd) in [
            FirCommand {
                base: 0,
                length: 16,
                outputs: 4,
                stride: 1,
            },
            FirCommand {
                base: 10,
                length: 7,
                outputs: 3,
                stride: 2,
            }, // partial lane group
            FirCommand {
                base: 100,
                length: 1,
                outputs: 5,
                stride: 0,
            }, // degenerate
            FirCommand {
                base: 5,
                length: 33,
                outputs: 2,
                stride: 3,
            },
        ]
        .iter()
        .enumerate()
        {
            let mut sim = DspSim::new(&handles);
            sim.load_samples(&samples);
            sim.load_coefficients(&coefs);
            let got = sim.run_fir(cmd, 50_000);
            let expect = cmd.reference(&samples, &coefs);
            assert_eq!(got, expect, "command {cmd_idx}: {cmd:?}");
        }
    }

    #[test]
    fn multiple_commands_with_gaps_complete() {
        let handles = build_dsp(&DspConfig::default()).unwrap();
        let mut sim = DspSim::new(&handles);
        sim.load_samples(&pattern(512, 3));
        sim.load_coefficients(&pattern(64, 4));
        let cmds: Vec<u64> = (0..5)
            .map(|k| {
                FirCommand {
                    base: 8 * k,
                    length: 12,
                    outputs: 2,
                    stride: 1,
                }
                .encode(20 * k)
            })
            .collect();
        sim.load_commands(&cmds);
        let cycles = sim.run_to_halt(100_000).expect("halt");
        assert!(cycles > 100);
        assert_eq!(sim.commands_done(), 5);
    }

    #[test]
    fn gaps_reduce_mean_power() {
        let handles = build_dsp(&DspConfig::default()).unwrap();
        let mean_power = |gap: u16| {
            let mut sim = DspSim::new(&handles);
            sim.load_samples(&pattern(512, 3));
            sim.load_coefficients(&pattern(64, 4));
            let cmds: Vec<u64> = (0..4)
                .map(|k| {
                    FirCommand {
                        base: k,
                        length: 32,
                        outputs: 4,
                        stride: 1,
                    }
                    .encode(gap)
                })
                .collect();
            sim.load_commands(&cmds);
            let mut total = 0.0;
            let mut n = 0u64;
            for _ in 0..4000 {
                sim.sim_mut().step();
                total += sim.sim().power().total;
                n += 1;
                if sim.sim().value(handles.halted) == 1 {
                    break;
                }
            }
            total / n as f64
        };
        let busy = mean_power(0);
        let gappy = mean_power(900);
        assert!(
            busy > 1.3 * gappy,
            "dense {busy:.1} should exceed gapped {gappy:.1}"
        );
    }
}
