//! Property-based tests for feature-space construction and the
//! interval-averaged design views.

#![allow(clippy::needless_range_loop)]

use apollo_core::{average_labels, AveragedDesign, FeatureSpace, TraceDesign};
use apollo_mlkit::Design;
use apollo_sim::ToggleMatrix;
use proptest::prelude::*;

/// Builds a random toggle matrix with some duplicate and constant
/// columns mixed in.
fn random_matrix(seed: u64, bits: usize, cycles: usize) -> ToggleMatrix {
    let mut m = ToggleMatrix::new(bits, cycles);
    let mut s = seed | 1;
    for b in 0..bits {
        match b % 5 {
            // constant-zero column
            0 if b > 0 => {}
            // duplicate of the previous column
            1 if b > 0 => {
                for c in 0..cycles {
                    if m.get(b - 1, c) {
                        m.set(b, c);
                    }
                }
            }
            _ => {
                for c in 0..cycles {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    if s & 3 == 0 {
                        m.set(b, c);
                    }
                }
            }
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every non-constant column belongs to exactly one dedup group, and
    /// group members are truly identical.
    #[test]
    fn feature_space_partitions_columns(seed in any::<u64>(), bits in 6usize..60, cycles in 10usize..120) {
        let m = random_matrix(seed, bits, cycles);
        let fs = FeatureSpace::build(&m);
        let mut covered = vec![false; bits];
        for (rep_idx, group) in fs.groups.iter().enumerate() {
            let rep = fs.reps[rep_idx];
            prop_assert!(group.contains(&rep));
            for &member in group {
                prop_assert!(!covered[member], "bit {member} in two groups");
                covered[member] = true;
                prop_assert!(m.columns_equal(rep, member));
            }
        }
        let grouped = covered.iter().filter(|&&c| c).count();
        prop_assert_eq!(grouped + fs.constant_bits, bits);
        // Constant bits are exactly the never/always toggling ones.
        for b in 0..bits {
            let pop = m.popcount(b);
            let constant = pop == 0 || pop == cycles;
            prop_assert_eq!(constant, !covered[b], "bit {}", b);
        }
    }

    /// The TraceDesign adapter agrees with direct matrix reads.
    #[test]
    fn trace_design_consistency(seed in any::<u64>(), cycles in 16usize..100) {
        let m = random_matrix(seed, 12, cycles);
        let fs = FeatureSpace::build(&m);
        prop_assume!(fs.n_candidates() >= 1);
        let d = TraceDesign::new(&m, &fs.reps);
        let v: Vec<f64> = (0..cycles).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        for j in 0..d.n_cols() {
            let bit = fs.reps[j];
            // dot
            let expect: f64 = (0..cycles).filter(|&c| m.get(bit, c)).map(|c| v[c]).sum();
            prop_assert!((d.col_dot(j, &v) - expect).abs() < 1e-9);
            // mean/std from popcount
            let mean = m.popcount(bit) as f64 / cycles as f64;
            prop_assert!((d.col_mean(j) - mean).abs() < 1e-12);
            // values
            for c in (0..cycles).step_by(5) {
                prop_assert_eq!(d.value(c, j), m.get(bit, c) as u8 as f64);
            }
        }
    }

    /// AveragedDesign equals explicit interval averaging of the dense
    /// columns, for every τ.
    #[test]
    fn averaged_design_matches_naive(seed in any::<u64>(), cycles in 32usize..128, tau in 1usize..9) {
        let m = random_matrix(seed, 10, cycles);
        let fs = FeatureSpace::build(&m);
        prop_assume!(fs.n_candidates() >= 1);
        let d = AveragedDesign::new(&m, &fs.reps, tau);
        let n_int = cycles / tau;
        prop_assume!(n_int >= 1);
        prop_assert_eq!(d.n_rows(), n_int);
        for j in 0..d.n_cols() {
            let bit = fs.reps[j];
            let naive: Vec<f64> = (0..n_int)
                .map(|k| {
                    (k * tau..(k + 1) * tau).filter(|&c| m.get(bit, c)).count() as f64 / tau as f64
                })
                .collect();
            for k in 0..n_int {
                prop_assert!((d.value(k, j) - naive[k]).abs() < 1e-12);
            }
            // dot against naive
            let v: Vec<f64> = (0..n_int).map(|k| (k as f64 * 0.31).sin()).collect();
            let expect: f64 = naive.iter().zip(&v).map(|(a, b)| a * b).sum();
            prop_assert!((d.col_dot(j, &v) - expect).abs() < 1e-9);
            // axpy against naive
            let mut got = vec![0.0; n_int];
            d.col_axpy(j, 2.0, &mut got);
            for k in 0..n_int {
                prop_assert!((got[k] - 2.0 * naive[k]).abs() < 1e-9);
            }
            // mean/std recomputed
            let mean = naive.iter().sum::<f64>() / n_int as f64;
            prop_assert!((d.col_mean(j) - mean).abs() < 1e-9);
            let var = naive.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n_int as f64;
            prop_assert!((d.col_std(j) - var.sqrt()).abs() < 1e-9);
            // for_each_nonzero sums to the column total
            let mut sum = 0.0;
            d.for_each_nonzero(j, &mut |_, val| sum += val);
            let total: f64 = naive.iter().sum();
            prop_assert!((sum - total).abs() < 1e-9);
        }
    }

    /// Label averaging drops the incomplete tail and preserves totals of
    /// complete windows.
    #[test]
    fn label_averaging(values in prop::collection::vec(0.0f64..100.0, 8..80), tau in 1usize..7) {
        let avg = average_labels(&values, tau);
        prop_assert_eq!(avg.len(), values.len() / tau);
        for (k, a) in avg.iter().enumerate() {
            let expect: f64 = values[k * tau..(k + 1) * tau].iter().sum::<f64>() / tau as f64;
            prop_assert!((a - expect).abs() < 1e-9);
        }
    }
}
