//! Determinism of trace-level parallelism: the `SimPool` must be a pure
//! speedup. Two parallel runs are byte-identical, a parallel run equals
//! the sequential reference, and the GA's fitness trajectory does not
//! depend on the thread count.

use apollo_core::{run_ga, DesignContext, GaConfig, SimPool};
use apollo_cpu::CpuConfig;
use apollo_sim::{EngineKind, TraceData};

fn assert_traces_identical(a: &TraceData, b: &TraceData) {
    // ToggleMatrix is PartialEq over its packed words: byte-identical.
    assert_eq!(a.toggles, b.toggles, "toggle matrices differ");
    assert_eq!(a.segments, b.segments, "segments differ");
    assert_eq!(a.power.len(), b.power.len());
    for (i, (x, y)) in a.power.iter().zip(&b.power).enumerate() {
        for (name, u, v) in [
            ("total", x.total, y.total),
            ("switching", x.switching, y.switching),
            ("clock", x.clock, y.clock),
            ("memory", x.memory, y.memory),
            ("glitch", x.glitch, y.glitch),
            ("short_circuit", x.short_circuit, y.short_circuit),
            ("leakage", x.leakage, y.leakage),
        ] {
            assert_eq!(
                u.to_bits(),
                v.to_bits(),
                "cycle {i}: power component `{name}` differs"
            );
        }
    }
}

fn tiny_suite(ctx: &DesignContext) -> Vec<(apollo_cpu::benchmarks::Benchmark, usize)> {
    vec![
        (apollo_cpu::benchmarks::dhrystone(), 120),
        (apollo_cpu::benchmarks::maxpwr_cpu(), 90),
        (apollo_cpu::benchmarks::dcache_miss(&ctx.handles.config), 75),
        (apollo_cpu::benchmarks::saxpy_simd(), 110),
    ]
}

#[test]
fn parallel_capture_equals_sequential_reference() {
    let ctx = DesignContext::new(&CpuConfig::tiny());
    let suite = tiny_suite(&ctx);
    let seq = SimPool::new(1).capture_suite(&ctx, &suite, 10);
    for threads in [2, 4, 8] {
        let par = SimPool::new(threads).capture_suite(&ctx, &suite, 10);
        assert_traces_identical(&seq, &par);
    }
}

#[test]
fn two_parallel_captures_are_byte_identical() {
    let ctx = DesignContext::new(&CpuConfig::tiny());
    let suite = tiny_suite(&ctx);
    let a = SimPool::new(4).capture_suite(&ctx, &suite, 10);
    let b = SimPool::new(4).capture_suite(&ctx, &suite, 10);
    assert_traces_identical(&a, &b);
}

#[test]
fn design_context_thread_count_does_not_change_captures() {
    // The same suite through a multi-threaded context (which also uses
    // netlist-level parallelism for single-sim paths) matches the
    // sequential context bit for bit.
    let seq_ctx = DesignContext::new(&CpuConfig::tiny());
    let par_ctx = DesignContext::with_threads(&CpuConfig::tiny(), 4);
    let suite = tiny_suite(&seq_ctx);
    let seq = seq_ctx.capture_suite(&suite, 10);
    let par = par_ctx.capture_suite(&suite, 10);
    assert_traces_identical(&seq, &par);
    // Single-workload fitness path: netlist-level parallel sim.
    let hot = apollo_cpu::benchmarks::maxpwr_cpu();
    let p1 = seq_ctx.mean_power(&hot.program, &hot.data, 10, 150);
    let p4 = par_ctx.mean_power(&hot.program, &hot.data, 10, 150);
    assert_eq!(p1.to_bits(), p4.to_bits());
}

#[test]
fn capture_identical_across_engines_and_thread_counts() {
    // The captured ToggleMatrix and power labels must not depend on the
    // engine or the thread count: scalar at 1 thread is the reference,
    // bitslice at 1/2/4/8 threads must reproduce it bit for bit.
    let scalar_ctx = DesignContext::new(&CpuConfig::tiny());
    let bitslice_ctx = DesignContext::with_engine(&CpuConfig::tiny(), 1, EngineKind::Bitslice);
    assert_eq!(bitslice_ctx.engine, EngineKind::Bitslice);
    let suite = tiny_suite(&scalar_ctx);
    let reference = SimPool::new(1).capture_suite(&scalar_ctx, &suite, 10);
    for threads in [1, 2, 4, 8] {
        let got = SimPool::new(threads).capture_suite(&bitslice_ctx, &suite, 10);
        assert_traces_identical(&reference, &got);
    }
}

#[test]
fn ga_trajectory_identical_across_engines_and_thread_counts() {
    // The GA must follow the same trajectory — same individuals, same
    // fitness bits, same winners — on either engine at any thread
    // count. Fitness batches route whole populations through single
    // bitslice passes, so this exercises the lane-packed path end to
    // end.
    let base = GaConfig {
        population: 6,
        generations: 2,
        body_len_min: 8,
        body_len_max: 24,
        reps: 5,
        warmup: 30,
        fitness_cycles: 100,
        threads: 1,
        ..GaConfig::default()
    };
    let scalar_ctx = DesignContext::new(&CpuConfig::tiny());
    let bitslice_ctx = DesignContext::with_engine(&CpuConfig::tiny(), 1, EngineKind::Bitslice);
    let reference = run_ga(&scalar_ctx, &base);
    for threads in [1usize, 2, 4, 8] {
        let run = run_ga(
            &bitslice_ctx,
            &GaConfig {
                threads,
                ..base.clone()
            },
        );
        assert_eq!(reference.best_per_gen.len(), run.best_per_gen.len());
        for (g, (a, b)) in reference
            .best_per_gen
            .iter()
            .zip(&run.best_per_gen)
            .enumerate()
        {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "generation {g}: best fitness differs from scalar at {threads} threads"
            );
        }
        for (a, b) in reference.individuals.iter().zip(&run.individuals) {
            assert_eq!(a.avg_power.to_bits(), b.avg_power.to_bits());
            assert_eq!(a.body, b.body);
        }
    }
}

#[test]
fn ga_fitness_trajectory_is_thread_count_invariant() {
    let ctx = DesignContext::new(&CpuConfig::tiny());
    let base = GaConfig {
        population: 6,
        generations: 3,
        body_len_min: 8,
        body_len_max: 32,
        reps: 6,
        warmup: 40,
        fitness_cycles: 120,
        threads: 1,
        ..GaConfig::default()
    };
    let seq = run_ga(&ctx, &base);
    let par = run_ga(
        &ctx,
        &GaConfig {
            threads: 4,
            ..base.clone()
        },
    );
    assert_eq!(seq.best_per_gen.len(), par.best_per_gen.len());
    for (g, (a, b)) in seq.best_per_gen.iter().zip(&par.best_per_gen).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "generation {g}: best fitness differs"
        );
    }
    for (a, b) in seq.individuals.iter().zip(&par.individuals) {
        assert_eq!(a.avg_power.to_bits(), b.avg_power.to_bits());
        assert_eq!(a.body, b.body);
    }
}
