//! Baseline power-modeling methods from the paper's Table 5:
//! Simmani (K-means signal clustering + polynomial elastic net),
//! PRIMAL (a neural network over all signals), PCA + linear regression,
//! and Lasso selection (reached through
//! [`crate::model::SelectionPenalty::Lasso`]).

use crate::features::{FeatureSpace, TraceDesign};
use apollo_mlkit::pca::random_project;
use apollo_mlkit::{
    coordinate_descent, ols_ridge, BitMatrix, CdOptions, CdResult, Design, KMeans, Matrix, Mlp,
    MlpOptions, Pca, Penalty,
};
use apollo_sim::{ToggleMatrix, TraceData};

// ---------------------------------------------------------------------
// Simmani
// ---------------------------------------------------------------------

/// Options for [`train_simmani`].
#[derive(Clone, Debug, PartialEq)]
pub struct SimmaniOptions {
    /// Number of clusters / base proxies `Q`.
    pub q: usize,
    /// Number of coarse windows in the toggle-density signature used
    /// for clustering.
    pub signature_windows: usize,
    /// Number of sampled second-order (AND) terms added to the feature
    /// pool. The paper's Simmani uses all `Q²` polynomial terms; we
    /// sample `pair_terms` of them to bound memory (documented
    /// deviation — the elastic net prunes most of them anyway).
    pub pair_terms: usize,
    /// Elastic-net penalties.
    pub lambda1: f64,
    /// L2 part of the elastic net.
    pub lambda2: f64,
    /// K-means iterations.
    pub kmeans_iters: usize,
    /// Cap on the number of candidate signals clustered (a strided
    /// subsample keeps K-means tractable at commercial M; documented
    /// deviation).
    pub max_candidates: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SimmaniOptions {
    fn default() -> Self {
        SimmaniOptions {
            q: 100,
            signature_windows: 64,
            pair_terms: 600,
            lambda1: 2e-3,
            lambda2: 1e-3,
            kmeans_iters: 25,
            max_candidates: 6000,
            seed: 0x51AA,
        }
    }
}

/// A trained Simmani-style model.
#[derive(Clone, Debug)]
pub struct SimmaniModel {
    /// Selected base proxy bits (cluster representatives).
    pub base_bits: Vec<usize>,
    /// Sampled second-order terms, as index pairs into `base_bits`.
    pub pairs: Vec<(usize, usize)>,
    /// Elastic-net fit over `[base, pairs]` features.
    pub fit: CdResult,
}

impl SimmaniModel {
    /// Number of monitored signals.
    pub fn q(&self) -> usize {
        self.base_bits.len()
    }

    /// Builds the Simmani feature matrix (base toggles + AND pairs) for
    /// any toggle trace.
    pub fn features(&self, matrix: &ToggleMatrix) -> BitMatrix {
        build_simmani_features(matrix, &self.base_bits, &self.pairs)
    }

    /// Per-cycle prediction.
    pub fn predict(&self, matrix: &ToggleMatrix) -> Vec<f64> {
        let feats = self.features(matrix);
        self.fit.predict(&feats)
    }

    /// Window-averaged prediction over `t`-cycle windows.
    pub fn predict_windows(&self, matrix: &ToggleMatrix, t: usize) -> Vec<f64> {
        crate::dataset::window_average(&self.predict(matrix), t)
    }
}

fn build_simmani_features(
    matrix: &ToggleMatrix,
    base_bits: &[usize],
    pairs: &[(usize, usize)],
) -> BitMatrix {
    let n = matrix.n_cycles();
    let mut out = BitMatrix::zeros(n, base_bits.len() + pairs.len());
    for (col, &bit) in base_bits.iter().enumerate() {
        for c in 0..n {
            if matrix.get(bit, c) {
                out.set(c, col);
            }
        }
    }
    for (k, &(a, b)) in pairs.iter().enumerate() {
        let col = base_bits.len() + k;
        let (ba, bb) = (base_bits[a], base_bits[b]);
        for c in 0..n {
            if matrix.get(ba, c) && matrix.get(bb, c) {
                out.set(c, col);
            }
        }
    }
    out
}

/// Toggle-density signatures for clustering: per candidate column, the
/// toggle rate over `windows` coarse windows, normalized to unit mean.
fn signatures(matrix: &ToggleMatrix, reps: &[usize], windows: usize) -> Vec<Vec<f64>> {
    let n = matrix.n_cycles();
    let w = (n / windows).max(1);
    reps.iter()
        .map(|&bit| {
            let mut sig = vec![0.0f64; windows];
            for (wi, &word) in matrix.column(bit).iter().enumerate() {
                let mut bits = word;
                let base = wi * 64;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let k = ((base + b) / w).min(windows - 1);
                    sig[k] += 1.0;
                }
            }
            // Density per window (keeping magnitude: activity level is
            // part of the signature, so clusters separate hot and cold
            // signals).
            for v in sig.iter_mut() {
                *v /= w as f64;
            }
            sig
        })
        .collect()
}

/// Trains a Simmani-style model: unsupervised K-means clustering of
/// signal toggle-density signatures, one representative proxy per
/// cluster, then an elastic-net fit over proxies and sampled AND terms.
pub fn train_simmani(trace: &TraceData, fs: &FeatureSpace, opts: &SimmaniOptions) -> SimmaniModel {
    // Strided subsample of candidates for clustering tractability.
    let stride = (fs.reps.len() / opts.max_candidates.max(1)).max(1);
    let cluster_reps: Vec<usize> = fs.reps.iter().copied().step_by(stride).collect();
    let sigs = signatures(&trace.toggles, &cluster_reps, opts.signature_windows);
    let km = KMeans::fit(&sigs, opts.q, opts.kmeans_iters, opts.seed);
    let rep_cols = km.representatives(&sigs);
    let base_bits: Vec<usize> = rep_cols.iter().map(|&c| cluster_reps[c]).collect();

    // Deterministic pair sampling.
    let q = base_bits.len();
    let mut pairs = Vec::with_capacity(opts.pair_terms);
    let mut s = opts.seed | 1;
    let n_pairs = opts.pair_terms.min(q * (q - 1) / 2);
    while pairs.len() < n_pairs {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let a = (s % q as u64) as usize;
        let b = ((s >> 32) % q as u64) as usize;
        if a != b {
            let p = (a.min(b), a.max(b));
            if !pairs.contains(&p) {
                pairs.push(p);
            }
        }
    }

    let feats = build_simmani_features(&trace.toggles, &base_bits, &pairs);
    let y = trace.labels();
    let fit = coordinate_descent(
        &feats,
        &y,
        Penalty::ElasticNet {
            lambda1: opts.lambda1,
            lambda2: opts.lambda2,
        },
        &CdOptions {
            nonnegative: false,
            ..CdOptions::default()
        },
    );
    SimmaniModel {
        base_bits,
        pairs,
        fit,
    }
}

// ---------------------------------------------------------------------
// PRIMAL (neural network over all signals)
// ---------------------------------------------------------------------

/// Options for [`train_primal`].
#[derive(Clone, Debug, PartialEq)]
pub struct PrimalOptions {
    /// Hash-bucket count for the full-signal input encoding.
    pub hash_dim: usize,
    /// MLP training options.
    pub mlp: MlpOptions,
    /// Hash seed.
    pub seed: u64,
}

impl Default for PrimalOptions {
    fn default() -> Self {
        PrimalOptions {
            hash_dim: 512,
            mlp: MlpOptions {
                hidden: vec![128, 64],
                epochs: 20,
                ..MlpOptions::default()
            },
            seed: 0x9817,
        }
    }
}

/// PRIMAL-style model: a neural network over a feature-hashed encoding
/// of *all* design signals. Every signal contributes (weighted by its
/// duplicate-group size), so inference cost scales with `M`, not `Q` —
/// reproducing the paper's cost argument.
#[derive(Debug)]
pub struct PrimalModel {
    /// Hash bucket of each candidate column.
    bucket_of: Vec<usize>,
    /// Multiplicity (duplicate-group size) of each candidate column.
    multiplicity: Vec<f64>,
    /// Hash dimension.
    pub hash_dim: usize,
    /// The trained network.
    pub mlp: Mlp,
}

impl PrimalModel {
    /// Encodes a trace into hashed dense features (row-major).
    pub fn encode(&self, matrix: &ToggleMatrix, reps: &[usize]) -> Vec<f64> {
        let n = matrix.n_cycles();
        let d = self.hash_dim;
        let mut out = vec![0.0f64; n * d];
        for (col, &bit) in reps.iter().enumerate() {
            let bucket = self.bucket_of[col];
            let mult = self.multiplicity[col];
            for (wi, &word) in matrix.column(bit).iter().enumerate() {
                let mut bits = word;
                let base = wi * 64;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    out[(base + b) * d + bucket] += mult;
                }
            }
        }
        out
    }

    /// Per-cycle prediction.
    pub fn predict(&self, matrix: &ToggleMatrix, reps: &[usize]) -> Vec<f64> {
        let x = self.encode(matrix, reps);
        self.mlp.predict(&x, matrix.n_cycles())
    }
}

fn hash64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Trains the PRIMAL-style network.
pub fn train_primal(trace: &TraceData, fs: &FeatureSpace, opts: &PrimalOptions) -> PrimalModel {
    let bucket_of: Vec<usize> = (0..fs.n_candidates())
        .map(|c| (hash64(opts.seed ^ c as u64) % opts.hash_dim as u64) as usize)
        .collect();
    let multiplicity: Vec<f64> = fs.groups.iter().map(|g| g.len() as f64).collect();
    let mut model = PrimalModel {
        bucket_of,
        multiplicity,
        hash_dim: opts.hash_dim,
        mlp: Mlp::fit(
            &[0.0],
            1,
            1,
            &[0.0],
            &MlpOptions {
                epochs: 0,
                ..MlpOptions::default()
            },
        ),
    };
    let x = model.encode(&trace.toggles, &fs.reps);
    let y = trace.labels();
    model.mlp = Mlp::fit(&x, trace.n_cycles(), opts.hash_dim, &y, &opts.mlp);
    model
}

// ---------------------------------------------------------------------
// PCA + linear regression
// ---------------------------------------------------------------------

/// PCA baseline: random projection of all signals, PCA, then ridge
/// regression on the top components. Like PRIMAL, inference requires
/// all signals.
#[derive(Debug)]
pub struct PcaModel {
    /// Projection dimension.
    pub proj_dim: usize,
    /// Principal components retained.
    pub pca: Pca,
    /// Ridge weights on components.
    pub weights: Vec<f64>,
    /// Ridge intercept.
    pub intercept: f64,
    /// Projection seed.
    pub seed: u64,
}

impl PcaModel {
    /// Per-cycle prediction.
    pub fn predict<D: Design>(&self, design: &D) -> Vec<f64> {
        let projected = random_project(design, 0..design.n_rows(), self.proj_dim, self.seed);
        let comps = self.pca.transform(&projected);
        (0..comps.rows())
            .map(|i| {
                self.intercept
                    + comps
                        .row(i)
                        .iter()
                        .zip(&self.weights)
                        .map(|(a, b)| a * b)
                        .sum::<f64>()
            })
            .collect()
    }
}

/// Trains the PCA + linear baseline.
pub fn train_pca(
    trace: &TraceData,
    fs: &FeatureSpace,
    proj_dim: usize,
    components: usize,
    seed: u64,
) -> PcaModel {
    let design = TraceDesign::new(&trace.toggles, &fs.reps);
    let projected = random_project(&design, 0..trace.n_cycles(), proj_dim, seed);
    let pca = Pca::fit(&projected, components.min(proj_dim));
    let comps = pca.transform(&projected);
    let y = trace.labels();
    let (weights, intercept) = ols_ridge(&comps, &y, 1e-3);
    PcaModel {
        proj_dim,
        pca,
        weights,
        intercept,
        seed,
    }
}

/// Multi-cycle Simmani variant for Figure 11: elastic net over τ=T
/// averaged proxy features with quadratic terms of the averages.
#[derive(Debug)]
pub struct SimmaniWindowModel {
    /// Base proxy bits.
    pub base_bits: Vec<usize>,
    /// Window size the model was trained for.
    pub t: usize,
    /// Elastic-net weights over `[avg features, squares]`.
    pub weights: Vec<f64>,
    /// Intercept.
    pub intercept: f64,
}

impl SimmaniWindowModel {
    fn features(&self, matrix: &ToggleMatrix) -> (Matrix, usize) {
        let n_windows = matrix.n_cycles() / self.t;
        let q = self.base_bits.len();
        let mut m = Matrix::zeros(n_windows, 2 * q);
        for (col, &bit) in self.base_bits.iter().enumerate() {
            for k in 0..n_windows {
                let mut count = 0usize;
                for c in k * self.t..(k + 1) * self.t {
                    count += matrix.get(bit, c) as usize;
                }
                let avg = count as f64 / self.t as f64;
                m[(k, col)] = avg;
                m[(k, q + col)] = avg * avg;
            }
        }
        (m, n_windows)
    }

    /// Predicts `t`-cycle window averages.
    pub fn predict_windows(&self, matrix: &ToggleMatrix) -> Vec<f64> {
        let (feats, n) = self.features(matrix);
        (0..n)
            .map(|k| {
                self.intercept
                    + feats
                        .row(k)
                        .iter()
                        .zip(&self.weights)
                        .map(|(a, b)| a * b)
                        .sum::<f64>()
            })
            .collect()
    }
}

/// Trains the multi-cycle Simmani baseline at window size `t`, reusing
/// the clustering of an existing per-cycle Simmani model.
pub fn train_simmani_window(
    trace: &TraceData,
    base: &SimmaniModel,
    t: usize,
    lambda: f64,
) -> SimmaniWindowModel {
    let mut model = SimmaniWindowModel {
        base_bits: base.base_bits.clone(),
        t,
        weights: Vec::new(),
        intercept: 0.0,
    };
    let (feats, n_windows) = model.features(&trace.toggles);
    let y = crate::dataset::window_average(&trace.labels(), t);
    let (w, b) = ols_ridge(&feats, &y[..n_windows], lambda);
    model.weights = w;
    model.intercept = b;
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DesignContext;
    use apollo_cpu::CpuConfig;
    use apollo_mlkit::metrics;

    fn tiny_setup() -> (DesignContext, TraceData, FeatureSpace, TraceData) {
        use apollo_cpu::benchmarks::random::{random_body, wrap_body, GenWeights};
        let ctx = DesignContext::new(&CpuConfig::tiny());
        // Train on diverse constrained-random programs (like the real
        // GA-generated training set) plus two handcrafted kernels.
        let mut train: Vec<_> = vec![
            (apollo_cpu::benchmarks::dhrystone(), 300),
            (apollo_cpu::benchmarks::maxpwr_cpu(), 300),
        ];
        let w = GenWeights::default();
        for seed in 0..8u64 {
            let bench = apollo_cpu::benchmarks::Benchmark {
                name: format!("rand{seed}"),
                program: wrap_body(&random_body(seed, 40, &w), 8),
                data: crate::benchgen::training_data_pattern(256),
                cycles: 200,
            };
            train.push((bench, 200));
        }
        let trace = ctx.capture_suite(&train, 60);
        let fs = FeatureSpace::build(&trace.toggles);
        let test: Vec<_> = vec![
            (apollo_cpu::benchmarks::saxpy_simd(), 300),
            (apollo_cpu::benchmarks::daxpy(), 300),
        ];
        let test_trace = ctx.capture_suite(&test, 16);
        (ctx, trace, fs, test_trace)
    }

    #[test]
    fn simmani_trains_and_predicts() {
        let (_ctx, trace, fs, test_trace) = tiny_setup();
        let model = train_simmani(
            &trace,
            &fs,
            &SimmaniOptions {
                q: 32,
                pair_terms: 80,
                ..SimmaniOptions::default()
            },
        );
        assert!(model.q() >= 12, "q = {}", model.q());
        let pred = model.predict(&test_trace.toggles);
        let r2 = metrics::r2(&test_trace.labels(), &pred);
        assert!(r2 > 0.2, "Simmani test R² = {r2}");
    }

    #[test]
    fn primal_reaches_reasonable_accuracy() {
        let (_ctx, trace, fs, test_trace) = tiny_setup();
        let model = train_primal(
            &trace,
            &fs,
            &PrimalOptions {
                hash_dim: 128,
                mlp: MlpOptions {
                    hidden: vec![48],
                    epochs: 12,
                    ..MlpOptions::default()
                },
                ..PrimalOptions::default()
            },
        );
        let pred = model.predict(&test_trace.toggles, &fs.reps);
        let r2 = metrics::r2(&test_trace.labels(), &pred);
        assert!(r2 > 0.5, "PRIMAL test R² = {r2}");
    }

    #[test]
    fn pca_baseline_works() {
        let (_ctx, trace, fs, test_trace) = tiny_setup();
        let model = train_pca(&trace, &fs, 128, 48, 3);
        let test_design = TraceDesign::new(&test_trace.toggles, &fs.reps);
        let pred = model.predict(&test_design);
        let r2 = metrics::r2(&test_trace.labels(), &pred);
        assert!(r2 > 0.4, "PCA test R² = {r2}");
    }

    #[test]
    fn simmani_window_model_fits_averages() {
        let (_ctx, trace, fs, test_trace) = tiny_setup();
        let base = train_simmani(
            &trace,
            &fs,
            &SimmaniOptions {
                q: 32,
                pair_terms: 40,
                ..SimmaniOptions::default()
            },
        );
        let wm = train_simmani_window(&trace, &base, 16, 1.0);
        let pred = wm.predict_windows(&test_trace.toggles);
        let truth = crate::dataset::window_average(&test_trace.labels(), 16);
        let err = metrics::nrmse(&truth[..pred.len()], &pred);
        assert!(err < 0.3, "Simmani window NRMSE = {err}");
    }
}
