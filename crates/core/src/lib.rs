//! # apollo-core
//!
//! The APOLLO framework itself (the paper's primary contribution): an
//! automated pipeline that, given an RTL design,
//!
//! 1. **generates training data** with a genetic algorithm that evolves
//!    instruction sequences toward a power virus, yielding
//!    micro-benchmarks spanning a wide power range ([`benchgen`]);
//! 2. **collects features and labels** — per-cycle signal toggles and
//!    ground-truth power ([`dataset`], [`features`]);
//! 3. **selects power proxies** with MCP-penalized regression and
//!    refits the final linear model with a weak ridge penalty
//!    ("relaxation", [`model`]);
//! 4. **generalizes to multi-cycle windows** with the APOLLOτ model and
//!    the rearranged inference of the paper's Eq. (9) ([`multicycle`]);
//! 5. provides the **comparison baselines** of the paper's Table 5 —
//!    Lasso selection, Simmani, PRIMAL and PCA ([`baselines`]) — and the
//!    **emulator-assisted flow** for long workloads ([`emuflow`]).
//!
//! The result is an [`model::ApolloModel`]: fewer than ~0.5% of signal
//! bits as proxies, a linear predictor accurate per cycle, cheap enough
//! for both design-time simulation and (via `apollo-opm`) a runtime
//! on-chip power meter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod benchgen;
pub mod dataset;
pub mod emuflow;
pub mod error;
pub mod features;
pub mod model;
pub mod multicycle;
pub mod pool;
pub mod report;
pub mod validation;
pub mod windowed;

pub use benchgen::{run_ga, GaConfig, GaRun, Individual};
pub use dataset::{window_average, DesignContext};
pub use emuflow::{run_emulator_flow, EmuFlowReport};
pub use error::ApolloError;
pub use features::{average_labels, AveragedDesign, FeatureSpace, TraceDesign};
pub use model::{
    train_per_cycle, train_per_cycle_multi, ApolloModel, Proxy, SelectionPenalty, TrainOptions,
    TrainedPerCycle,
};
pub use multicycle::{train_tau, window_nrmse, ApolloTau};
pub use pool::SimPool;
pub use validation::{tune_relax_lambda, tune_tau, SweepResult};
pub use windowed::{windowed_eval, windowed_eval_proxy, EvalWindow, WindowedEval};
