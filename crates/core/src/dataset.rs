//! Design context and trace-capture helpers: the glue between the CPU
//! substrate, the simulator, and model training.

use crate::error::ApolloError;
use apollo_cpu::benchmarks::Benchmark;
use apollo_cpu::{build_cpu, CpuConfig, CpuHandles, CpuSim, Inst};
use apollo_rtl::{CapAnnotation, CapModel, Netlist};
use apollo_sim::{EngineKind, FaultPlan, FaultReport, PowerConfig, TraceCapture, TraceData};

/// A CPU design prepared for power-model work: netlist, annotated
/// parasitics and ground-truth power configuration.
#[derive(Debug)]
pub struct DesignContext {
    /// The CPU design handles.
    pub handles: CpuHandles,
    /// Back-annotated parasitics.
    pub cap: CapAnnotation,
    /// Ground-truth power engine configuration.
    pub power: PowerConfig,
    /// Simulation worker threads (1 = fully sequential). Single-workload
    /// runs use them inside the netlist evaluation; multi-workload
    /// collection ([`DesignContext::capture_suite`]) uses them across
    /// workloads via [`crate::pool::SimPool`]. Either way results are
    /// bit-identical to `threads = 1`.
    pub threads: usize,
    /// Which simulation kernel multi-workload collection uses. With
    /// [`EngineKind::Bitslice`], [`DesignContext::capture_suite`] and
    /// the GA fitness path pack up to 64 workloads into one bit-sliced
    /// netlist pass; results are machine-checked bit-identical to the
    /// scalar engine (see `crates/sim/tests/bitslice_differential.rs`).
    pub engine: EngineKind,
}

impl DesignContext {
    /// Builds the design and annotates parasitics with default models.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (CPU generation is
    /// infallible for valid configs).
    pub fn new(config: &CpuConfig) -> Self {
        Self::with_threads(config, 1)
    }

    /// Like [`DesignContext::new`], but simulations may use up to
    /// `threads` worker threads (scalar engine).
    pub fn with_threads(config: &CpuConfig, threads: usize) -> Self {
        Self::with_engine(config, threads, EngineKind::Scalar)
    }

    /// Like [`DesignContext::with_threads`], selecting the simulation
    /// kernel used for batched collection (capture, GA fitness).
    pub fn with_engine(config: &CpuConfig, threads: usize, engine: EngineKind) -> Self {
        let handles = build_cpu(config).expect("CPU generation failed");
        let cap = CapModel::default().annotate(&handles.netlist);
        DesignContext {
            handles,
            cap,
            power: PowerConfig::default(),
            threads: threads.max(1),
            engine,
        }
    }

    /// The design netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.handles.netlist
    }

    /// Total signal bits (the paper's `M`).
    pub fn m_bits(&self) -> usize {
        self.netlist().signal_bits()
    }

    /// Creates a fresh simulator with a program loaded, using the
    /// context's thread count for netlist-level parallelism.
    pub fn simulate(&self, program: &[Inst], data: &[u64]) -> CpuSim<'_> {
        self.simulate_with(program, data, self.threads)
    }

    /// Creates a fresh simulator with an explicit thread count (the
    /// [`crate::pool::SimPool`] workers pass 1 so trace-level and
    /// netlist-level parallelism do not oversubscribe each other).
    pub fn simulate_with(&self, program: &[Inst], data: &[u64], threads: usize) -> CpuSim<'_> {
        CpuSim::with_threads(
            &self.handles,
            &self.cap,
            self.power.clone(),
            program,
            data,
            threads,
        )
    }

    /// Creates a fresh simulator with a deterministic fault plan
    /// injected into the underlying netlist simulation (silicon-grade
    /// fault tolerance experiments — see `apollo_sim::fault`).
    ///
    /// # Errors
    /// Returns [`ApolloError::FaultPlan`] if the plan names unknown
    /// signals, out-of-range bits, or invalid rates/windows.
    pub fn simulate_faulted(
        &self,
        program: &[Inst],
        data: &[u64],
        plan: &FaultPlan,
    ) -> Result<CpuSim<'_>, ApolloError> {
        CpuSim::with_faults(
            &self.handles,
            &self.cap,
            self.power.clone(),
            program,
            data,
            self.threads,
            Some(plan),
        )
        .map_err(ApolloError::from)
    }

    /// Mean total power of a program over `cycles` cycles after
    /// `warmup` cycles (the GA fitness function).
    pub fn mean_power(&self, program: &[Inst], data: &[u64], warmup: u64, cycles: u64) -> f64 {
        let mut sim = self.simulate(program, data);
        for _ in 0..warmup {
            sim.step();
        }
        let mut total = 0.0;
        for _ in 0..cycles {
            sim.step();
            total += sim.sim().power().total;
        }
        total / cycles as f64
    }

    /// Captures full toggle traces for a set of workloads, each recorded
    /// for its own cycle window after `warmup` un-recorded cycles.
    /// Workloads run in parallel across the context's thread count; the
    /// result is bit-identical to a sequential capture.
    pub fn capture_suite(&self, suite: &[(Benchmark, usize)], warmup: usize) -> TraceData {
        crate::pool::SimPool::new(self.threads).capture_suite(self, suite, warmup)
    }

    /// Captures only the given flat signal bits (the emulator-assisted
    /// proxy-only flow of paper §5).
    pub fn capture_bits(
        &self,
        bench: &Benchmark,
        bits: &[usize],
        cycles: usize,
        warmup: usize,
    ) -> TraceData {
        let mut cap = TraceCapture::bits(self.netlist(), bits, cycles);
        let mut sim = self.simulate(&bench.program, &bench.data);
        for _ in 0..warmup {
            sim.step();
        }
        cap.record(sim.sim_mut(), cycles, &bench.name);
        cap.finish()
    }

    /// Captures a full toggle trace of one workload under a
    /// deterministic fault plan, returning the trace and the simulator's
    /// fault report (what was injected, where and when).
    ///
    /// Capture is sequential: fault injection is bit-reproducible at any
    /// netlist-level thread count, so the context's thread count is used
    /// inside the simulator as usual.
    ///
    /// # Errors
    /// Returns [`ApolloError::FaultPlan`] if the plan does not compile
    /// against the design netlist.
    pub fn capture_faulted(
        &self,
        bench: &Benchmark,
        cycles: usize,
        warmup: usize,
        plan: &FaultPlan,
    ) -> Result<(TraceData, FaultReport), ApolloError> {
        let mut cap = TraceCapture::all(self.netlist(), cycles);
        let mut sim = self.simulate_faulted(&bench.program, &bench.data, plan)?;
        for _ in 0..warmup {
            sim.step();
        }
        cap.record(sim.sim_mut(), cycles, &bench.name);
        let report = sim
            .sim()
            .fault_report()
            .expect("a plan was attached at construction");
        Ok((cap.finish(), report))
    }

    /// The Table-4 testing suite with the paper's per-benchmark window
    /// lengths, scaled by `scale` (1.0 = paper windows).
    pub fn test_suite(&self, scale: f64) -> Vec<(Benchmark, usize)> {
        apollo_cpu::benchmarks::table4_suite(&self.handles.config)
            .into_iter()
            .map(|b| {
                let c = ((b.cycles as f64 * scale) as usize).max(64);
                (b, c)
            })
            .collect()
    }
}

/// Averages consecutive windows of `t` entries (incomplete tail
/// dropped) — used for multi-cycle ground truth.
pub fn window_average(v: &[f64], t: usize) -> Vec<f64> {
    assert!(t >= 1, "window must be at least 1");
    let n = v.len() / t;
    (0..n)
        .map(|k| v[k * t..(k + 1) * t].iter().sum::<f64>() / t as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_suite_records_all_segments() {
        let ctx = DesignContext::new(&CpuConfig::tiny());
        let suite: Vec<(Benchmark, usize)> = vec![
            (apollo_cpu::benchmarks::dhrystone(), 100),
            (apollo_cpu::benchmarks::maxpwr_cpu(), 150),
        ];
        let data = ctx.capture_suite(&suite, 8);
        assert_eq!(data.n_cycles(), 250);
        assert_eq!(data.segment("dhrystone"), Some(0..100));
        assert_eq!(data.segment("maxpwr_cpu"), Some(100..250));
        assert!(data.mean_power() > 0.0);
        assert_eq!(data.toggles.m_bits(), ctx.m_bits());
    }

    #[test]
    fn mean_power_is_deterministic_and_workload_dependent() {
        let ctx = DesignContext::new(&CpuConfig::tiny());
        let hot = apollo_cpu::benchmarks::maxpwr_cpu();
        let idle_prog = {
            let mut a = apollo_cpu::Asm::new();
            a.halt();
            a.assemble()
        };
        let p_hot = ctx.mean_power(&hot.program, &hot.data, 10, 200);
        let p_hot2 = ctx.mean_power(&hot.program, &hot.data, 10, 200);
        let p_idle = ctx.mean_power(&idle_prog, &[], 10, 200);
        assert_eq!(p_hot, p_hot2);
        assert!(
            p_hot > 1.5 * p_idle,
            "hot {p_hot} should clearly exceed idle {p_idle}"
        );
    }

    #[test]
    fn window_average_drops_tail() {
        let v = vec![1.0, 3.0, 5.0, 7.0, 100.0];
        assert_eq!(window_average(&v, 2), vec![2.0, 6.0]);
    }
}
