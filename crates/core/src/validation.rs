//! Validation-set hyper-parameter tuning (paper §7.1: 20 % of the
//! training data forms a validation set; the multi-cycle interval τ and
//! regularisation strengths are chosen on it).

use crate::features::FeatureSpace;
use crate::model::{train_per_cycle, ApolloModel, TrainOptions};
use crate::multicycle::{train_tau, window_nrmse, ApolloTau};
use apollo_mlkit::metrics;
use apollo_rtl::Netlist;
use apollo_sim::TraceData;

/// Result of a hyper-parameter sweep: every candidate with its
/// validation score (lower is better), plus the winner's index.
#[derive(Clone, Debug, serde::Serialize)]
pub struct SweepResult<P: serde::Serialize> {
    /// `(parameter, validation NRMSE)` per candidate.
    pub candidates: Vec<(P, f64)>,
    /// Index of the best candidate.
    pub best: usize,
}

impl<P: Copy + serde::Serialize> SweepResult<P> {
    fn from_scores(candidates: Vec<(P, f64)>) -> Self {
        let best = candidates
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).unwrap())
            .map(|(i, _)| i)
            .expect("non-empty sweep");
        SweepResult { candidates, best }
    }

    /// The winning parameter value.
    pub fn best_param(&self) -> P {
        self.candidates[self.best].0
    }

    /// The winning validation NRMSE.
    pub fn best_score(&self) -> f64 {
        self.candidates[self.best].1
    }
}

/// Tunes the relaxation ridge strength on a validation trace and
/// returns the model refit at the winning strength.
///
/// # Panics
/// Panics if `grid` is empty.
pub fn tune_relax_lambda(
    train: &TraceData,
    val: &TraceData,
    netlist: &Netlist,
    fs: &FeatureSpace,
    base: &TrainOptions,
    grid: &[f64],
) -> (ApolloModel, SweepResult<f64>) {
    assert!(!grid.is_empty(), "empty grid");
    let y_val = val.labels();
    let mut scored: Vec<(f64, f64, ApolloModel)> = grid
        .iter()
        .map(|&lambda| {
            let opts = TrainOptions {
                relax_lambda: lambda,
                ..base.clone()
            };
            let model = train_per_cycle(train, netlist, fs, &opts).model;
            let pred = model.predict_full(&val.toggles);
            (lambda, metrics::nrmse(&y_val, &pred), model)
        })
        .collect();
    let sweep = SweepResult::from_scores(scored.iter().map(|(l, s, _)| (*l, *s)).collect());
    let best = sweep.best;
    let (_, _, model) = scored.swap_remove(best);
    (model, sweep)
}

/// Tunes the multi-cycle interval τ on a validation trace, scoring at
/// measurement window `t_eval` (the paper's Figure-11 procedure, which
/// lands on τ = 8), and returns the winning model.
///
/// # Panics
/// Panics if `taus` is empty.
pub fn tune_tau(
    train: &TraceData,
    val: &TraceData,
    netlist: &Netlist,
    fs: &FeatureSpace,
    base: &TrainOptions,
    taus: &[usize],
    t_eval: usize,
) -> (ApolloTau, SweepResult<usize>) {
    assert!(!taus.is_empty(), "empty tau list");
    let labels = val.labels();
    let mut scored: Vec<(usize, f64, ApolloTau)> = taus
        .iter()
        .map(|&tau| {
            let model = train_tau(train, netlist, fs, tau, base);
            let pred = model.predict_windows(&val.toggles, t_eval);
            (tau, window_nrmse(&pred, &labels, t_eval), model)
        })
        .collect();
    let sweep = SweepResult::from_scores(scored.iter().map(|(t, s, _)| (*t, *s)).collect());
    let best = sweep.best;
    let (_, _, model) = scored.swap_remove(best);
    (model, sweep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DesignContext;
    use apollo_cpu::benchmarks::random::{random_body, wrap_body, GenWeights};
    use apollo_cpu::CpuConfig;

    fn setup() -> (DesignContext, TraceData, TraceData, FeatureSpace) {
        let ctx = DesignContext::new(&CpuConfig::tiny());
        let w = GenWeights::default();
        let make = |seeds: std::ops::Range<u64>, cycles: usize| {
            seeds
                .map(|s| {
                    (
                        apollo_cpu::benchmarks::Benchmark {
                            name: format!("r{s}"),
                            program: wrap_body(&random_body(s, 50, &w), 8),
                            data: crate::benchgen::training_data_pattern(256),
                            cycles,
                        },
                        cycles,
                    )
                })
                .collect::<Vec<_>>()
        };
        // 80/20-style split: disjoint program sets.
        let train = ctx.capture_suite(&make(0..8, 200), 150);
        let val = ctx.capture_suite(&make(8..10, 200), 150);
        let fs = FeatureSpace::build(&train.toggles);
        (ctx, train, val, fs)
    }

    #[test]
    fn relax_lambda_tuning_picks_a_finite_winner() {
        let (ctx, train, val, fs) = setup();
        let base = TrainOptions {
            q_target: 16,
            ..TrainOptions::default()
        };
        let grid = [1e-5, 1e-3, 1e-1, 10.0];
        let (model, sweep) = tune_relax_lambda(&train, &val, ctx.netlist(), &fs, &base, &grid);
        assert_eq!(sweep.candidates.len(), 4);
        assert!(grid.contains(&sweep.best_param()));
        assert!(sweep.best_score().is_finite());
        // The winner is no worse than every other candidate.
        for (_, score) in &sweep.candidates {
            assert!(sweep.best_score() <= *score + 1e-12);
        }
        assert!(model.q() >= 8);
    }

    #[test]
    fn tau_tuning_scores_all_candidates() {
        let (ctx, train, val, fs) = setup();
        let base = TrainOptions {
            q_target: 12,
            ..TrainOptions::default()
        };
        let taus = [2usize, 8, 32];
        let (model, sweep) = tune_tau(&train, &val, ctx.netlist(), &fs, &base, &taus, 32);
        assert_eq!(sweep.candidates.len(), 3);
        assert!(taus.contains(&sweep.best_param()));
        assert_eq!(model.tau, sweep.best_param());
        // Scores should vary across τ (not all identical).
        let first = sweep.candidates[0].1;
        assert!(sweep
            .candidates
            .iter()
            .any(|(_, s)| (s - first).abs() > 1e-9));
    }
}
