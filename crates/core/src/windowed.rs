//! Windowed model evaluation over captured traces.
//!
//! The runtime introspection pipeline reasons in `T`-cycle OPM windows,
//! not single cycles. This module rolls a captured [`TraceData`] up to
//! that granularity: per window, the float model's mean per-cycle
//! prediction and the ground-truth mean power, plus summary residual
//! statistics. It is the offline mirror of the online monitor — the
//! same windows the streaming pipeline publishes, computed in one pass
//! from a trace, which is what the differential tests diff against.

use crate::model::ApolloModel;
use apollo_sim::TraceData;

/// One `T`-cycle window of a windowed evaluation.
#[derive(Copy, Clone, Debug, PartialEq, serde::Serialize)]
pub struct EvalWindow {
    /// Zero-based window index.
    pub index: u64,
    /// Mean per-cycle float-model prediction over the window.
    pub predicted: f64,
    /// Mean per-cycle ground-truth power over the window.
    pub truth: f64,
}

impl EvalWindow {
    /// Signed residual `predicted − truth`.
    pub fn residual(&self) -> f64 {
        self.predicted - self.truth
    }
}

/// A full-trace windowed evaluation: the per-window series plus
/// residual summary statistics.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct WindowedEval {
    /// Window length `T` in cycles.
    pub t: usize,
    /// Per-window prediction / truth pairs (incomplete tail dropped).
    pub windows: Vec<EvalWindow>,
    /// Mean absolute residual across windows.
    pub mae: f64,
    /// Root-mean-square residual across windows.
    pub rmse: f64,
    /// RMSE normalized by the truth range (the paper's NRMSE metric at
    /// window granularity); 0 when the truth is constant.
    pub nrmse: f64,
}

/// Evaluates `model` over `data` at window length `t`: per-cycle
/// float predictions and ground-truth labels are averaged into
/// consecutive `t`-cycle windows (incomplete tail dropped) and
/// compared.
///
/// Cycle order is trace order, so the result is bit-identical for any
/// capture thread count (captures already are, by the engine's
/// determinism contract).
///
/// # Panics
/// Panics if `t` is zero.
pub fn windowed_eval(model: &ApolloModel, data: &TraceData, t: usize) -> WindowedEval {
    let predicted = crate::dataset::window_average(&model.predict_full(&data.toggles), t);
    let truth = crate::dataset::window_average(&data.labels(), t);
    build_eval(t, predicted, truth)
}

/// Like [`windowed_eval`] but over a proxy-only capture (the
/// emulator-assisted flow of paper §5): the trace must carry a
/// `bit_map` covering every proxy bit.
///
/// # Panics
/// Panics if `t` is zero or the capture lacks a proxy bit.
pub fn windowed_eval_proxy(model: &ApolloModel, data: &TraceData, t: usize) -> WindowedEval {
    let predicted = crate::dataset::window_average(&model.predict_proxy_trace(data), t);
    let truth = crate::dataset::window_average(&data.labels(), t);
    build_eval(t, predicted, truth)
}

fn build_eval(t: usize, predicted: Vec<f64>, truth: Vec<f64>) -> WindowedEval {
    debug_assert_eq!(predicted.len(), truth.len());
    let windows: Vec<EvalWindow> = predicted
        .into_iter()
        .zip(truth)
        .enumerate()
        .map(|(i, (p, y))| EvalWindow {
            index: i as u64,
            predicted: p,
            truth: y,
        })
        .collect();
    let n = windows.len().max(1) as f64;
    let mae = windows.iter().map(|w| w.residual().abs()).sum::<f64>() / n;
    let rmse = (windows.iter().map(|w| w.residual().powi(2)).sum::<f64>() / n).sqrt();
    let (lo, hi) = windows
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), w| {
            (lo.min(w.truth), hi.max(w.truth))
        });
    let range = hi - lo;
    let nrmse = if windows.is_empty() || range <= 0.0 {
        0.0
    } else {
        rmse / range
    };
    WindowedEval {
        t,
        windows,
        mae,
        rmse,
        nrmse,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DesignContext;
    use crate::features::FeatureSpace;
    use crate::model::{train_per_cycle, TrainOptions};
    use apollo_cpu::{benchmarks, CpuConfig};

    #[test]
    fn windowed_eval_matches_manual_window_average() {
        let ctx = DesignContext::new(&CpuConfig::tiny());
        let suite = vec![(benchmarks::dhrystone(), 160)];
        let trace = ctx.capture_suite(&suite, 20);
        let fs = FeatureSpace::build(&trace.toggles);
        let model = train_per_cycle(
            &trace,
            ctx.netlist(),
            &fs,
            &TrainOptions {
                q_target: 12,
                ..TrainOptions::default()
            },
        )
        .model;

        let eval = windowed_eval(&model, &trace, 32);
        assert_eq!(eval.windows.len(), 160 / 32);
        let manual_pred = crate::dataset::window_average(&model.predict_full(&trace.toggles), 32);
        let manual_truth = crate::dataset::window_average(&trace.labels(), 32);
        for (w, (p, y)) in eval
            .windows
            .iter()
            .zip(manual_pred.iter().zip(&manual_truth))
        {
            assert_eq!(w.predicted, *p, "bit-identical to the manual path");
            assert_eq!(w.truth, *y);
        }
        assert!(eval.rmse >= eval.mae, "RMSE dominates MAE: {eval:?}");
        assert!(eval.nrmse >= 0.0, "{eval:?}");
    }

    #[test]
    fn empty_and_constant_truth_are_safe() {
        let eval = build_eval(4, vec![], vec![]);
        assert!(eval.windows.is_empty());
        assert_eq!(eval.mae, 0.0);
        assert_eq!(eval.nrmse, 0.0);

        let flat = build_eval(2, vec![1.0, 1.0], vec![3.0, 3.0]);
        assert_eq!(flat.nrmse, 0.0, "constant truth: no range normalization");
        assert_eq!(flat.mae, 2.0);
    }
}
