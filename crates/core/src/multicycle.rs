//! Multi-cycle power modeling (paper §4.5): the APOLLOτ model.
//!
//! A τ-cycle model is trained on interval-averaged features and labels;
//! at inference over a `T`-cycle measurement window the rearranged form
//! of Eq. (9) applies the per-cycle binary toggles to the τ-model's
//! weights and divides by `T` — which is exactly what the OPM hardware
//! implements with an accumulator and a bit-shift.

// Lockstep multi-array index loops are intentional throughout this
// module; iterator zips would obscure the hardware/math being expressed.
#![allow(clippy::needless_range_loop)]

use crate::dataset::window_average;
use crate::features::{average_labels, AveragedDesign, FeatureSpace};
use crate::model::{dense_selected, proxy_info, Proxy, SelectionPenalty, TrainOptions};
use apollo_mlkit::{coordinate_descent, select_features, CdOptions, Penalty};
use apollo_rtl::Netlist;
use apollo_sim::{ToggleMatrix, TraceData};

/// The multi-cycle APOLLOτ model: weights `ω` trained at interval size
/// τ, applied per-cycle and averaged over any window `T` (Eq. 9).
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ApolloTau {
    /// Design name.
    pub design_name: String,
    /// Interval size the model was trained at.
    pub tau: usize,
    /// Selected proxies and weights `ω`.
    pub proxies: Vec<Proxy>,
    /// Intercept.
    pub intercept: f64,
}

impl ApolloTau {
    /// Number of proxies.
    pub fn q(&self) -> usize {
        self.proxies.len()
    }

    /// Proxy bit indices.
    pub fn bits(&self) -> Vec<usize> {
        self.proxies.iter().map(|p| p.bit).collect()
    }

    /// Predicts the average power of consecutive `t`-cycle windows from
    /// per-cycle toggles (Eq. 9 — per-cycle weighted toggles accumulated
    /// and divided by `t`; τ is not needed at inference).
    pub fn predict_windows(&self, matrix: &ToggleMatrix, t: usize) -> Vec<f64> {
        assert!(t >= 1, "window must be at least 1");
        let n_windows = matrix.n_cycles() / t;
        let mut acc = vec![0.0f64; n_windows];
        for p in &self.proxies {
            for (wi, &w) in matrix.column(p.bit).iter().enumerate() {
                let mut bits = w;
                let base = wi * 64;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let k = (base + b) / t;
                    if k < n_windows {
                        acc[k] += p.weight;
                    }
                }
            }
        }
        acc.iter().map(|a| self.intercept + a / t as f64).collect()
    }
}

/// Trains an APOLLOτ model on τ-cycle averaged features/labels with the
/// same MCP-selection + ridge-relaxation recipe as the per-cycle model.
pub fn train_tau(
    trace: &TraceData,
    netlist: &Netlist,
    fs: &FeatureSpace,
    tau: usize,
    opts: &TrainOptions,
) -> ApolloTau {
    let design = AveragedDesign::new(&trace.toggles, &fs.reps, tau);
    let y = average_labels(&trace.labels(), tau);
    let penalty = match opts.penalty {
        SelectionPenalty::Mcp { gamma } => Penalty::Mcp { lambda: 1.0, gamma },
        SelectionPenalty::Lasso => Penalty::Lasso { lambda: 1.0 },
    };
    let cd_opts = CdOptions {
        nonnegative: opts.nonnegative,
        ..opts.cd.clone()
    };
    let selection = select_features(&design, &y, penalty, opts.q_target, &cd_opts);
    let cols: Vec<usize> = selection.active.iter().map(|&(j, _)| j).collect();
    assert!(!cols.is_empty(), "τ-selection produced an empty model");

    let dense = dense_selected(&design, &cols);
    let relaxed = coordinate_descent(
        &dense,
        &y,
        Penalty::Ridge {
            lambda: opts.relax_lambda,
        },
        &CdOptions {
            nonnegative: opts.nonnegative,
            max_sweeps: 400,
            ..CdOptions::default()
        },
    );
    let mut weights = vec![0.0; cols.len()];
    for &(k, w) in &relaxed.active {
        weights[k] = w;
    }
    let proxies = cols
        .iter()
        .zip(&weights)
        .map(|(&j, &w)| proxy_info(netlist, fs.reps[j], w))
        .collect();
    ApolloTau {
        design_name: netlist.design_name().to_owned(),
        tau,
        proxies,
        intercept: relaxed.intercept,
    }
}

/// Multi-cycle evaluation point: NRMSE of a window predictor against
/// window-averaged ground truth.
pub fn window_nrmse(pred_windows: &[f64], labels_per_cycle: &[f64], t: usize) -> f64 {
    let truth = window_average(labels_per_cycle, t);
    let n = pred_windows.len().min(truth.len());
    apollo_mlkit::metrics::nrmse(&truth[..n], &pred_windows[..n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DesignContext;
    use crate::model::train_per_cycle;
    use apollo_cpu::CpuConfig;

    fn tiny_training() -> (DesignContext, TraceData, FeatureSpace) {
        let ctx = DesignContext::new(&CpuConfig::tiny());
        let suite: Vec<_> = vec![
            (apollo_cpu::benchmarks::dhrystone(), 512),
            (apollo_cpu::benchmarks::maxpwr_cpu(), 512),
            (apollo_cpu::benchmarks::daxpy(), 512),
        ];
        let trace = ctx.capture_suite(&suite, 16);
        let fs = FeatureSpace::build(&trace.toggles);
        (ctx, trace, fs)
    }

    #[test]
    fn tau_model_beats_input_averaged_for_large_t() {
        let (ctx, trace, fs) = tiny_training();
        let opts = TrainOptions {
            q_target: 16,
            ..TrainOptions::default()
        };
        let tau8 = train_tau(&trace, ctx.netlist(), &fs, 8, &opts);
        assert!(tau8.q() >= 8);

        let test: Vec<_> = vec![(apollo_cpu::benchmarks::saxpy_simd(), 512)];
        let test_trace = ctx.capture_suite(&test, 16);
        let labels = test_trace.labels();

        let t = 32;
        let pred = tau8.predict_windows(&test_trace.toggles, t);
        let err = window_nrmse(&pred, &labels, t);
        assert!(err < 0.2, "τ=8 NRMSE at T=32: {err}");
    }

    #[test]
    fn window_prediction_matches_interval_math() {
        let (ctx, trace, fs) = tiny_training();
        let opts = TrainOptions {
            q_target: 12,
            ..TrainOptions::default()
        };
        let tau = train_tau(&trace, ctx.netlist(), &fs, 4, &opts);
        // Eq. 9 check: predicting windows of t = 1 equals the per-cycle
        // weighted-toggle sum.
        let w1 = tau.predict_windows(&trace.toggles, 1);
        let mut manual = vec![tau.intercept; trace.n_cycles()];
        for p in &tau.proxies {
            for c in 0..trace.n_cycles() {
                if trace.toggles.get(p.bit, c) {
                    manual[c] += p.weight;
                }
            }
        }
        for (a, b) in w1.iter().zip(&manual) {
            assert!((a - b).abs() < 1e-9);
        }
        // And a t=8 window is the mean of the corresponding eight
        // per-cycle values.
        let w8 = tau.predict_windows(&trace.toggles, 8);
        let manual8 = crate::dataset::window_average(&manual, 8);
        for (a, b) in w8.iter().zip(&manual8) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn multicycle_accuracy_improves_with_window_size() {
        let (ctx, trace, fs) = tiny_training();
        let opts = TrainOptions {
            q_target: 16,
            ..TrainOptions::default()
        };
        let trained = train_per_cycle(&trace, ctx.netlist(), &fs, &opts);
        let test: Vec<_> = vec![(apollo_cpu::benchmarks::memcpy_l2(&ctx.handles.config), 512)];
        let test_trace = ctx.capture_suite(&test, 16);
        let labels = test_trace.labels();
        let per_cycle = trained.model.predict_full(&test_trace.toggles);

        let err_t1 = window_nrmse(&per_cycle, &labels, 1);
        let avg32 = crate::dataset::window_average(&per_cycle, 32);
        let err_t32 = window_nrmse(&avg32, &labels, 32);
        assert!(
            err_t32 < err_t1,
            "averaging should reduce NRMSE: T=1 {err_t1}, T=32 {err_t32}"
        );
    }
}
