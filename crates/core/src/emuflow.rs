//! Emulator-assisted power analysis flow (paper §5 and §8.1).
//!
//! Long workloads are replayed while dumping only the `Q` proxy bits per
//! cycle; the APOLLO model then infers per-cycle power from the compact
//! trace. The report quantifies the data-volume reduction (the paper:
//! 17M cycles → 1.1 GB instead of > 200 GB) and inference throughput
//! (§8.1: a billion cycles in about a minute for a linear model).

use crate::dataset::DesignContext;
use crate::model::ApolloModel;
use apollo_cpu::benchmarks::Benchmark;
use std::time::Instant;

/// Result of one emulator-assisted run.
#[derive(Clone, Debug)]
pub struct EmuFlowReport {
    /// Workload name.
    pub workload: String,
    /// Cycles replayed.
    pub cycles: usize,
    /// Number of proxies dumped.
    pub q: usize,
    /// Bytes of the packed proxy trace.
    pub proxy_trace_bytes: usize,
    /// Bytes a full-signal dump would need.
    pub full_trace_bytes: usize,
    /// Wall-clock seconds of emulation + trace dump.
    pub capture_seconds: f64,
    /// Wall-clock seconds of model inference over the trace.
    pub inference_seconds: f64,
    /// The inferred per-cycle power trace.
    pub power_trace: Vec<f64>,
    /// Ground-truth per-cycle power (available because our "emulator" is
    /// the simulator; used for accuracy spot checks).
    pub ground_truth: Vec<f64>,
}

impl EmuFlowReport {
    /// Data-volume reduction factor versus a full-signal dump.
    pub fn reduction_factor(&self) -> f64 {
        self.full_trace_bytes as f64 / self.proxy_trace_bytes.max(1) as f64
    }

    /// Inference throughput in cycles per second.
    pub fn inference_cycles_per_second(&self) -> f64 {
        self.cycles as f64 / self.inference_seconds.max(1e-12)
    }

    /// Extrapolated wall-clock seconds to infer one billion cycles
    /// (the paper's §8.1 comparison point).
    pub fn seconds_per_billion_cycles(&self) -> f64 {
        1e9 / self.inference_cycles_per_second()
    }
}

/// Runs the emulator-assisted flow: proxy-only capture of `bench` for
/// `cycles` cycles, then model inference.
pub fn run_emulator_flow(
    ctx: &DesignContext,
    model: &ApolloModel,
    bench: &Benchmark,
    cycles: usize,
    warmup: usize,
) -> EmuFlowReport {
    let bits = model.bits();
    let t0 = Instant::now();
    let trace = ctx.capture_bits(bench, &bits, cycles, warmup);
    let capture_seconds = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let power_trace = model.predict_proxy_trace(&trace);
    let inference_seconds = t1.elapsed().as_secs_f64();

    let proxy_trace_bytes = trace.toggles.size_bytes();
    let full_trace_bytes = ctx.m_bits().div_ceil(8) * cycles;
    EmuFlowReport {
        workload: bench.name.clone(),
        cycles,
        q: bits.len(),
        proxy_trace_bytes,
        full_trace_bytes,
        capture_seconds,
        inference_seconds,
        power_trace,
        ground_truth: trace.labels(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureSpace;
    use crate::model::{train_per_cycle, TrainOptions};
    use apollo_cpu::CpuConfig;
    use apollo_mlkit::metrics;

    #[test]
    fn emulator_flow_reduces_data_and_stays_accurate() {
        let ctx = DesignContext::new(&CpuConfig::tiny());
        let train: Vec<_> = vec![
            (apollo_cpu::benchmarks::dhrystone(), 400),
            (apollo_cpu::benchmarks::maxpwr_cpu(), 400),
            (apollo_cpu::benchmarks::memcpy_l2(&ctx.handles.config), 400),
        ];
        let trace = ctx.capture_suite(&train, 16);
        let fs = FeatureSpace::build(&trace.toggles);
        let trained = train_per_cycle(
            &trace,
            ctx.netlist(),
            &fs,
            &TrainOptions {
                q_target: 20,
                ..TrainOptions::default()
            },
        );
        let long = apollo_cpu::benchmarks::hmmer_like(&ctx.handles.config, 4);
        let report = run_emulator_flow(&ctx, &trained.model, &long, 2_000, 8);
        assert_eq!(report.cycles, 2_000);
        assert!(
            report.reduction_factor() > 20.0,
            "reduction {}",
            report.reduction_factor()
        );
        let r2 = metrics::r2(&report.ground_truth, &report.power_trace);
        assert!(r2 > 0.6, "emulated-trace R² = {r2}");
        assert!(report.inference_cycles_per_second() > 100_000.0);
    }
}
