//! Reporting utilities: proxy distributions (Figure 15a), VIF
//! convenience wrappers (Figure 14), and inference-cost estimates
//! (§8.1).

use crate::features::TraceDesign;
use crate::model::ApolloModel;
use apollo_mlkit::metrics::mean_vif;
use apollo_sim::ToggleMatrix;
use std::collections::BTreeMap;

/// Distribution of proxies over functional units, with gated clocks
/// reported as their own category (the paper's Figure 15a).
pub fn proxy_distribution(model: &ApolloModel) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for p in &model.proxies {
        let key = if p.is_clock_gate {
            "Gated Clock".to_owned()
        } else {
            p.unit.label().to_owned()
        };
        *out.entry(key).or_insert(0) += 1;
    }
    out
}

/// Mean VIF over a model's proxies, measured on a toggle trace
/// (Figure 14).
pub fn model_vif(model: &ApolloModel, matrix: &ToggleMatrix) -> f64 {
    let bits = model.bits();
    if bits.len() < 2 {
        return 1.0;
    }
    let design = TraceDesign::new(matrix, &bits);
    let cols: Vec<usize> = (0..bits.len()).collect();
    mean_vif(&design, &cols, 1e4)
}

/// Mean VIF over an arbitrary set of signal bits.
pub fn bits_vif(bits: &[usize], matrix: &ToggleMatrix) -> f64 {
    if bits.len() < 2 {
        return 1.0;
    }
    let design = TraceDesign::new(matrix, bits);
    let cols: Vec<usize> = (0..bits.len()).collect();
    mean_vif(&design, &cols, 1e4)
}

/// Analytic per-cycle inference cost (multiply-accumulate-equivalent
/// operations) of each method family, for the §8.1 comparison.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct InferenceCost {
    /// Method name.
    pub method: String,
    /// Signals that must be observed per cycle.
    pub signals_observed: usize,
    /// Arithmetic operations per predicted cycle.
    pub ops_per_cycle: f64,
}

/// Cost table for the standard method set.
///
/// `m` is the design signal count, `q` the proxy count, `hash_dim` and
/// `hidden` the PRIMAL encoder/network sizes, `pca_dims` the PCA input
/// dimension.
pub fn inference_costs(
    m: usize,
    q: usize,
    hash_dim: usize,
    hidden: &[usize],
    pca_components: usize,
) -> Vec<InferenceCost> {
    let mut primal_ops = m as f64; // encoding touches all signals
    let mut last = hash_dim as f64;
    for &h in hidden {
        primal_ops += last * h as f64;
        last = h as f64;
    }
    primal_ops += last;
    vec![
        InferenceCost {
            method: "APOLLO".into(),
            signals_observed: q,
            ops_per_cycle: q as f64,
        },
        InferenceCost {
            method: "Simmani".into(),
            signals_observed: q,
            ops_per_cycle: (q * q) as f64, // quadratic polynomial terms
        },
        InferenceCost {
            method: "PRIMAL (NN)".into(),
            signals_observed: m,
            ops_per_cycle: primal_ops,
        },
        InferenceCost {
            method: "PCA".into(),
            signals_observed: m,
            ops_per_cycle: m as f64 + (pca_components * pca_components) as f64,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DesignContext;
    use crate::features::FeatureSpace;
    use crate::model::{train_per_cycle, SelectionPenalty, TrainOptions};
    use apollo_cpu::CpuConfig;

    #[test]
    fn distribution_covers_all_proxies() {
        let ctx = DesignContext::new(&CpuConfig::tiny());
        let train: Vec<_> = vec![
            (apollo_cpu::benchmarks::maxpwr_cpu(), 400),
            (apollo_cpu::benchmarks::dhrystone(), 400),
        ];
        let trace = ctx.capture_suite(&train, 16);
        let fs = FeatureSpace::build(&trace.toggles);
        let trained = train_per_cycle(
            &trace,
            ctx.netlist(),
            &fs,
            &TrainOptions {
                q_target: 16,
                ..TrainOptions::default()
            },
        );
        let dist = proxy_distribution(&trained.model);
        let total: usize = dist.values().sum();
        assert_eq!(total, trained.model.q());
    }

    #[test]
    fn mcp_vif_is_lower_than_lasso_vif() {
        let ctx = DesignContext::new(&CpuConfig::tiny());
        let train: Vec<_> = vec![
            (apollo_cpu::benchmarks::maxpwr_cpu(), 500),
            (apollo_cpu::benchmarks::dhrystone(), 500),
            (apollo_cpu::benchmarks::daxpy(), 500),
        ];
        let trace = ctx.capture_suite(&train, 16);
        let fs = FeatureSpace::build(&trace.toggles);
        let mcp = train_per_cycle(
            &trace,
            ctx.netlist(),
            &fs,
            &TrainOptions {
                q_target: 16,
                ..TrainOptions::default()
            },
        );
        let lasso = train_per_cycle(
            &trace,
            ctx.netlist(),
            &fs,
            &TrainOptions {
                q_target: 16,
                penalty: SelectionPenalty::Lasso,
                ..TrainOptions::default()
            },
        );
        let v_mcp = model_vif(&mcp.model, &trace.toggles);
        let v_lasso = model_vif(&lasso.model, &trace.toggles);
        assert!(v_mcp.is_finite() && v_lasso.is_finite());
        // The paper's Figure 14 shape: MCP selections are less collinear.
        // On the tiny design the gap can be small, so only assert
        // no *large* regression.
        assert!(
            v_mcp <= v_lasso * 1.5,
            "VIF mcp = {v_mcp}, lasso = {v_lasso}"
        );
    }

    #[test]
    fn inference_costs_ordering() {
        let costs = inference_costs(60_000, 150, 512, &[128, 64], 64);
        let get = |name: &str| {
            costs
                .iter()
                .find(|c| c.method == name)
                .unwrap()
                .ops_per_cycle
        };
        assert!(get("APOLLO") < get("Simmani"));
        assert!(get("Simmani") < get("PRIMAL (NN)"));
        assert!(get("APOLLO") < get("PCA"));
    }
}
