//! Feature-space construction from toggle traces.
//!
//! Before regression we (a) drop constant columns and (b) deduplicate
//! *exactly identical* toggle columns, keeping one representative per
//! group. RTL designs contain large numbers of bit-identical nets
//! (fanout copies, staging registers, bus slices), and identical columns
//! are interchangeable for any linear model — deduplication is lossless
//! and is what makes commercial-scale `M` tractable for pure-Rust
//! coordinate descent. Reported `M` counts remain pre-dedup, as in the
//! paper.

use apollo_mlkit::Design;
use apollo_sim::ToggleMatrix;
use std::collections::HashMap;

/// The reduced candidate feature space over a training trace.
#[derive(Clone, Debug)]
pub struct FeatureSpace {
    /// Representative flat-bit index per candidate column.
    pub reps: Vec<usize>,
    /// For each representative, all member bits of its duplicate group
    /// (including the representative itself).
    pub groups: Vec<Vec<usize>>,
    /// Total signal bits in the design (pre-dedup `M`).
    pub total_bits: usize,
    /// Bits dropped as constant (never/always toggling is impossible for
    /// "always" since toggles are events, so: never toggling).
    pub constant_bits: usize,
}

impl FeatureSpace {
    /// Builds the candidate space from a full-capture training matrix.
    pub fn build(matrix: &ToggleMatrix) -> FeatureSpace {
        let m = matrix.m_bits();
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut constant_bits = 0usize;
        for bit in 0..m {
            let pop = matrix.popcount(bit);
            if pop == 0 || pop == matrix.n_cycles() {
                constant_bits += 1;
                continue;
            }
            buckets
                .entry(matrix.column_hash(bit))
                .or_default()
                .push(bit);
        }
        let mut reps = Vec::new();
        let mut groups = Vec::new();
        let mut bucket_keys: Vec<u64> = buckets.keys().copied().collect();
        bucket_keys.sort_unstable();
        for key in bucket_keys {
            let members = &buckets[&key];
            // Within a hash bucket, split by true equality.
            let mut subgroups: Vec<Vec<usize>> = Vec::new();
            'member: for &bit in members {
                for sg in subgroups.iter_mut() {
                    if matrix.columns_equal(sg[0], bit) {
                        sg.push(bit);
                        continue 'member;
                    }
                }
                subgroups.push(vec![bit]);
            }
            for sg in subgroups {
                reps.push(sg[0]);
                groups.push(sg);
            }
        }
        // Deterministic order by representative bit index.
        let mut order: Vec<usize> = (0..reps.len()).collect();
        order.sort_by_key(|&i| reps[i]);
        let reps = order.iter().map(|&i| reps[i]).collect();
        let groups = order.into_iter().map(|i| groups[i].clone()).collect();
        FeatureSpace {
            reps,
            groups,
            total_bits: m,
            constant_bits,
        }
    }

    /// Number of candidate (deduplicated) columns.
    pub fn n_candidates(&self) -> usize {
        self.reps.len()
    }
}

/// [`Design`] adapter exposing selected representative columns of a
/// [`ToggleMatrix`] to the regression solvers, without copying.
#[derive(Clone, Debug)]
pub struct TraceDesign<'a> {
    matrix: &'a ToggleMatrix,
    reps: &'a [usize],
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl<'a> TraceDesign<'a> {
    /// Wraps `matrix`, exposing `reps[j]` as column `j`.
    pub fn new(matrix: &'a ToggleMatrix, reps: &'a [usize]) -> Self {
        let n = matrix.n_cycles() as f64;
        let mut means = Vec::with_capacity(reps.len());
        let mut stds = Vec::with_capacity(reps.len());
        for &bit in reps {
            let m = matrix.popcount(bit) as f64 / n;
            means.push(m);
            stds.push((m * (1.0 - m)).sqrt());
        }
        TraceDesign {
            matrix,
            reps,
            means,
            stds,
        }
    }

    /// The global bit index behind column `j`.
    pub fn bit_of(&self, j: usize) -> usize {
        self.reps[j]
    }
}

impl Design for TraceDesign<'_> {
    fn n_rows(&self) -> usize {
        self.matrix.n_cycles()
    }

    fn n_cols(&self) -> usize {
        self.reps.len()
    }

    fn col_mean(&self, j: usize) -> f64 {
        self.means[j]
    }

    fn col_std(&self, j: usize) -> f64 {
        self.stds[j]
    }

    fn col_dot(&self, j: usize, v: &[f64]) -> f64 {
        let mut sum = 0.0;
        for (wi, &w) in self.matrix.column(self.reps[j]).iter().enumerate() {
            let mut bits = w;
            let base = wi * 64;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                sum += v[base + b];
            }
        }
        sum
    }

    fn col_axpy(&self, j: usize, alpha: f64, v: &mut [f64]) {
        for (wi, &w) in self.matrix.column(self.reps[j]).iter().enumerate() {
            let mut bits = w;
            let base = wi * 64;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                v[base + b] += alpha;
            }
        }
    }

    fn value(&self, row: usize, col: usize) -> f64 {
        self.matrix.get(self.reps[col], row) as u8 as f64
    }

    fn for_each_nonzero(&self, j: usize, f: &mut dyn FnMut(usize, f64)) {
        for (wi, &w) in self.matrix.column(self.reps[j]).iter().enumerate() {
            let mut bits = w;
            let base = wi * 64;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                f(base + b, 1.0);
            }
        }
    }
}

/// [`Design`] view of τ-cycle interval-averaged toggle features
/// (the paper's `x^τ` inputs of §4.5), computed on demand from the
/// packed per-cycle matrix — the dense averaged matrix is never
/// materialized.
#[derive(Clone, Debug)]
pub struct AveragedDesign<'a> {
    matrix: &'a ToggleMatrix,
    reps: &'a [usize],
    tau: usize,
    n_intervals: usize,
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl<'a> AveragedDesign<'a> {
    /// Builds the τ-cycle averaged view (complete intervals only).
    ///
    /// # Panics
    /// Panics if `tau` is zero or exceeds the trace length.
    pub fn new(matrix: &'a ToggleMatrix, reps: &'a [usize], tau: usize) -> Self {
        assert!(tau >= 1, "tau must be at least 1");
        let n_intervals = matrix.n_cycles() / tau;
        assert!(n_intervals >= 1, "trace shorter than one interval");
        let mut means = Vec::with_capacity(reps.len());
        let mut stds = Vec::with_capacity(reps.len());
        let mut acc = vec![0.0f64; n_intervals];
        for &bit in reps {
            acc.iter_mut().for_each(|a| *a = 0.0);
            for (wi, &w) in matrix.column(bit).iter().enumerate() {
                let mut bits = w;
                let base = wi * 64;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let k = (base + b) / tau;
                    if k < n_intervals {
                        acc[k] += 1.0;
                    }
                }
            }
            let inv = 1.0 / tau as f64;
            let mean = acc.iter().sum::<f64>() * inv / n_intervals as f64;
            let var = acc
                .iter()
                .map(|&c| {
                    let v = c * inv - mean;
                    v * v
                })
                .sum::<f64>()
                / n_intervals as f64;
            means.push(mean);
            stds.push(var.sqrt());
        }
        AveragedDesign {
            matrix,
            reps,
            tau,
            n_intervals,
            means,
            stds,
        }
    }

    /// The interval size τ.
    pub fn tau(&self) -> usize {
        self.tau
    }
}

impl Design for AveragedDesign<'_> {
    fn n_rows(&self) -> usize {
        self.n_intervals
    }

    fn n_cols(&self) -> usize {
        self.reps.len()
    }

    fn col_mean(&self, j: usize) -> f64 {
        self.means[j]
    }

    fn col_std(&self, j: usize) -> f64 {
        self.stds[j]
    }

    fn col_dot(&self, j: usize, v: &[f64]) -> f64 {
        let inv = 1.0 / self.tau as f64;
        let mut sum = 0.0;
        for (wi, &w) in self.matrix.column(self.reps[j]).iter().enumerate() {
            let mut bits = w;
            let base = wi * 64;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let k = (base + b) / self.tau;
                if k < self.n_intervals {
                    sum += v[k] * inv;
                }
            }
        }
        sum
    }

    fn col_axpy(&self, j: usize, alpha: f64, v: &mut [f64]) {
        let a = alpha / self.tau as f64;
        for (wi, &w) in self.matrix.column(self.reps[j]).iter().enumerate() {
            let mut bits = w;
            let base = wi * 64;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let k = (base + b) / self.tau;
                if k < self.n_intervals {
                    v[k] += a;
                }
            }
        }
    }

    fn value(&self, row: usize, col: usize) -> f64 {
        let start = row * self.tau;
        let mut count = 0usize;
        for c in start..start + self.tau {
            count += self.matrix.get(self.reps[col], c) as usize;
        }
        count as f64 / self.tau as f64
    }

    fn for_each_nonzero(&self, j: usize, f: &mut dyn FnMut(usize, f64)) {
        // Coalesce consecutive bits of the same interval.
        let inv = 1.0 / self.tau as f64;
        let mut last_k = usize::MAX;
        let mut acc = 0.0;
        for (wi, &w) in self.matrix.column(self.reps[j]).iter().enumerate() {
            let mut bits = w;
            let base = wi * 64;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let k = (base + b) / self.tau;
                if k >= self.n_intervals {
                    continue;
                }
                if k != last_k {
                    if last_k != usize::MAX {
                        f(last_k, acc);
                    }
                    last_k = k;
                    acc = 0.0;
                }
                acc += inv;
            }
        }
        if last_k != usize::MAX {
            f(last_k, acc);
        }
    }
}

/// Averages a label vector over τ-cycle intervals (complete intervals
/// only), producing the paper's `y^τ` labels.
pub fn average_labels(y: &[f64], tau: usize) -> Vec<f64> {
    assert!(tau >= 1);
    let n = y.len() / tau;
    (0..n)
        .map(|k| y[k * tau..(k + 1) * tau].iter().sum::<f64>() / tau as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> ToggleMatrix {
        let mut m = ToggleMatrix::new(6, 32);
        for c in 0..32 {
            if c % 2 == 0 {
                m.set(0, c); // toggles every other cycle
                m.set(1, c); // duplicate of column 0
            }
            if c % 4 == 0 {
                m.set(2, c);
            }
            // column 3: constant zero
            if c < 32 {
                m.set(4, c); // constant one (always toggles)
            }
            if c % 3 == 0 {
                m.set(5, c);
            }
        }
        m
    }

    #[test]
    fn dedup_groups_identical_columns() {
        let m = sample_matrix();
        let fs = FeatureSpace::build(&m);
        assert_eq!(fs.total_bits, 6);
        // col 3 (never) and col 4 (always) are constant.
        assert_eq!(fs.constant_bits, 2);
        assert_eq!(fs.n_candidates(), 3);
        // Columns 0 and 1 grouped together.
        let g0 = fs
            .groups
            .iter()
            .find(|g| g.contains(&0))
            .expect("group containing column 0");
        assert!(g0.contains(&1));
    }

    #[test]
    fn trace_design_matches_matrix() {
        let m = sample_matrix();
        let reps = vec![0usize, 2, 5];
        let d = TraceDesign::new(&m, &reps);
        assert_eq!(d.n_rows(), 32);
        assert_eq!(d.n_cols(), 3);
        assert!((d.col_mean(0) - 0.5).abs() < 1e-12);
        let ones = vec![1.0; 32];
        assert_eq!(d.col_dot(0, &ones), 16.0);
        let mut v = vec![0.0; 32];
        d.col_axpy(1, 2.0, &mut v);
        assert_eq!(v[0], 2.0);
        assert_eq!(v[4], 2.0);
        assert_eq!(v[1], 0.0);
        assert_eq!(d.value(0, 0), 1.0);
        assert_eq!(d.value(1, 0), 0.0);
    }

    #[test]
    fn averaged_design_means() {
        let m = sample_matrix();
        let reps = vec![0usize, 2];
        let d = AveragedDesign::new(&m, &reps, 4);
        assert_eq!(d.n_rows(), 8);
        // Column 0 toggles 2 of every 4 cycles -> each interval avg 0.5.
        assert!((d.value(0, 0) - 0.5).abs() < 1e-12);
        assert!((d.col_mean(0) - 0.5).abs() < 1e-12);
        assert!(d.col_std(0) < 1e-12, "constant after averaging");
        // Column 2 toggles once per interval -> 0.25.
        assert!((d.value(3, 1) - 0.25).abs() < 1e-12);
        // dot with ones = sum of interval averages.
        let ones = vec![1.0; 8];
        assert!((d.col_dot(0, &ones) - 4.0).abs() < 1e-12);
        // for_each_nonzero agrees with value().
        let mut total = 0.0;
        d.for_each_nonzero(0, &mut |_, v| total += v);
        assert!((total - 4.0).abs() < 1e-12);
    }

    #[test]
    fn average_labels_means() {
        let y: Vec<f64> = (0..8).map(|i| i as f64).collect();
        assert_eq!(average_labels(&y, 4), vec![1.5, 5.5]);
        assert_eq!(average_labels(&y, 3), vec![1.0, 4.0]);
    }
}
