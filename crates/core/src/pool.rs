//! Trace-level parallelism: a pool running independent workloads on
//! per-thread simulator instances.
//!
//! The simulator in `apollo-sim` parallelizes *within* one netlist
//! evaluation (levelized shards); this module parallelizes *across*
//! workloads, which is the natural axis for dataset collection and GA
//! fitness — every benchmark already gets its own fresh simulator, so
//! the runs share nothing. Workers pull workload indices from a shared
//! queue, run a single-threaded simulator each, and the results are
//! merged back **by workload index**, so toggle matrices, power labels
//! and fitness vectors are byte-identical to a sequential run no matter
//! how the scheduler interleaves the workers.

use crate::dataset::DesignContext;
use apollo_cpu::benchmarks::Benchmark;
use apollo_cpu::{CpuBatch, Inst};
use apollo_rtl::NodeId;
use apollo_sim::{transpose64, EngineKind, PowerSample, ToggleMatrix, TraceCapture, TraceData};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A pool of simulation workers for independent workloads.
#[derive(Clone, Copy, Debug)]
pub struct SimPool {
    threads: usize,
}

impl SimPool {
    /// Creates a pool of `threads` workers (clamped to at least 1; 1
    /// means run on the calling thread).
    pub fn new(threads: usize) -> Self {
        SimPool {
            threads: threads.max(1),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Captures full toggle traces for a set of workloads, each recorded
    /// for its own cycle window after `warmup` un-recorded cycles, and
    /// stitches them into one [`TraceData`] in suite order.
    ///
    /// Bit-identical to recording the suite sequentially into a single
    /// capture: every workload runs on a fresh single-threaded simulator
    /// either way, and the merge is ordered by suite index.
    pub fn capture_suite(
        &self,
        ctx: &DesignContext,
        suite: &[(Benchmark, usize)],
        warmup: usize,
    ) -> TraceData {
        let total: usize = suite.iter().map(|(_, c)| c).sum();
        assert!(total > 0, "empty capture request");
        let _span = apollo_telemetry::span("core.capture_suite");
        // Per-benchmark wall clock is measured inside the (possibly
        // parallel) jobs but reported only after the index-ordered
        // merge below, so span records come out in suite order no
        // matter how workers interleave.
        let shards: Vec<(TraceData, u64)> = match ctx.engine {
            EngineKind::Scalar => self.run_indexed(suite.len(), |idx| {
                let (bench, cycles) = &suite[idx];
                let t0 = Instant::now();
                let trace = capture_one(ctx, bench, *cycles, warmup);
                (trace, t0.elapsed().as_nanos() as u64)
            }),
            // Bitslice collapses trace-level parallelism: up to 64
            // workloads share each netlist pass, so chunks run
            // sequentially with the pool's threads inside the kernel.
            EngineKind::Bitslice => suite
                .chunks(64)
                .flat_map(|chunk| capture_chunk_bitslice(ctx, chunk, warmup, self.threads))
                .collect(),
        };

        let mut toggles = ToggleMatrix::new(ctx.m_bits(), total);
        let mut power: Vec<PowerSample> = Vec::with_capacity(total);
        let mut segments: Vec<(String, Range<usize>)> = Vec::with_capacity(suite.len());
        let mut cursor = 0usize;
        let timing = apollo_telemetry::timing_enabled();
        let events = apollo_telemetry::events_enabled();
        for ((bench, cycles), (shard, bench_ns)) in suite.iter().zip(shards) {
            debug_assert_eq!(shard.n_cycles(), *cycles);
            toggles.merge_at(&shard.toggles, cursor);
            power.extend(shard.power);
            segments.push((bench.name.clone(), cursor..cursor + cycles));
            cursor += cycles;
            if timing {
                apollo_telemetry::profile::record_phase("core.capture_suite/bench", 1, bench_ns);
            }
            if events {
                apollo_telemetry::emit_span(
                    &format!("core.capture_suite/bench:{}", bench.name),
                    bench_ns,
                );
            }
        }
        apollo_telemetry::counter("core.benchmarks_captured").add(suite.len() as u64);
        apollo_telemetry::counter("core.cycles_captured").add(total as u64);
        TraceData {
            toggles,
            power,
            bit_map: None,
            segments,
        }
    }

    /// Captures proxy-only toggle traces for a set of workloads: the
    /// returned matrix `i` covers workload `i`'s cycle window (after
    /// `warmup` un-recorded cycles), with column `k` holding the
    /// toggle history of flat signal bit `bits[k]` — the layout
    /// `QuantizedOpm::window_outputs_proxy` and friends consume, with
    /// `bits` in model order (see `ApolloModel::bits`).
    ///
    /// This is the runtime-introspection deployment path: no
    /// ground-truth power is computed at all. Both engines step in
    /// toggles-only mode ([`apollo_sim::SimEngine::step_toggles`]);
    /// the bitslice engine additionally skips its lane-major row
    /// transpose, because a toggle-plane read *is* the 64-lane proxy
    /// vector — per cycle the whole chunk costs `Q` plane loads plus
    /// one 64×64 block transpose per proxy per 64 cycles.
    ///
    /// Bit-identical across engines and thread counts: lane `k` of a
    /// bitslice chunk replays workload `k`'s scalar toggle stream
    /// exactly, and columns are extracted from the same feature-toggle
    /// planes the full capture packs into rows.
    pub fn capture_proxy_suite(
        &self,
        ctx: &DesignContext,
        suite: &[(Benchmark, usize)],
        bits: &[usize],
        warmup: usize,
    ) -> Vec<ToggleMatrix> {
        assert!(!bits.is_empty(), "empty proxy set");
        let _span = apollo_telemetry::span("core.capture_proxy_suite");
        let owners: Vec<(NodeId, u8)> = bits.iter().map(|&b| ctx.netlist().bit_owner(b)).collect();
        let out: Vec<ToggleMatrix> = match ctx.engine {
            EngineKind::Scalar => self.run_indexed(suite.len(), |idx| {
                let (bench, cycles) = &suite[idx];
                let mut sim = ctx.simulate_with(&bench.program, &bench.data, 1);
                for _ in 0..warmup {
                    sim.step_toggles();
                }
                let mut matrix = ToggleMatrix::new(owners.len(), *cycles);
                for cycle in 0..*cycles {
                    sim.step_toggles();
                    for (k, &(node, bit)) in owners.iter().enumerate() {
                        if (sim.sim().toggle_word(node) >> bit) & 1 == 1 {
                            matrix.set(k, cycle);
                        }
                    }
                }
                matrix
            }),
            EngineKind::Bitslice => suite
                .chunks(64)
                .flat_map(|chunk| {
                    capture_proxy_chunk_bitslice(ctx, chunk, &owners, warmup, self.threads)
                })
                .collect(),
        };
        apollo_telemetry::counter("core.proxy_benchmarks_captured").add(suite.len() as u64);
        out
    }

    /// Mean total power of each program over `cycles` cycles after
    /// `warmup` cycles — the batched GA fitness function. All programs
    /// share the same preloaded `data` image. The returned vector is in
    /// program order regardless of worker scheduling.
    pub fn mean_powers(
        &self,
        ctx: &DesignContext,
        programs: &[Vec<Inst>],
        data: &[u64],
        warmup: u64,
        cycles: u64,
    ) -> Vec<f64> {
        if ctx.engine == EngineKind::Bitslice {
            return programs
                .chunks(64)
                .flat_map(|chunk| {
                    let workloads: Vec<(Vec<Inst>, Vec<u64>)> =
                        chunk.iter().map(|p| (p.clone(), data.to_vec())).collect();
                    let mut batch = CpuBatch::with_threads(
                        &ctx.handles,
                        &ctx.cap,
                        ctx.power.clone(),
                        &workloads,
                        self.threads,
                    );
                    for _ in 0..warmup {
                        batch.step();
                    }
                    let mut totals = vec![0.0f64; chunk.len()];
                    for _ in 0..cycles {
                        batch.step();
                        for (lane, t) in totals.iter_mut().enumerate() {
                            *t += batch.sim().power(lane).total;
                        }
                    }
                    totals.into_iter().map(move |t| t / cycles as f64)
                })
                .collect();
        }
        self.run_indexed(programs.len(), |idx| {
            let mut sim = ctx.simulate_with(&programs[idx], data, 1);
            for _ in 0..warmup {
                sim.step();
            }
            let mut total = 0.0;
            for _ in 0..cycles {
                sim.step();
                total += sim.sim().power().total;
            }
            total / cycles as f64
        })
    }

    /// Runs `job(0..n)` across the pool and returns the results in index
    /// order. Workers pull indices from a shared queue (dynamic load
    /// balance for uneven workloads); results are scattered back by
    /// index, so ordering never depends on scheduling.
    fn run_indexed<T, F>(&self, n: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.threads == 1 || n <= 1 {
            return (0..n).map(job).collect();
        }
        let next = AtomicUsize::new(0);
        let done: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(n) {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let result = job(idx);
                    done.lock().unwrap().push((idx, result));
                });
            }
        });
        let mut pairs = done.into_inner().unwrap();
        pairs.sort_by_key(|&(i, _)| i);
        debug_assert_eq!(pairs.len(), n);
        pairs.into_iter().map(|(_, r)| r).collect()
    }
}

/// Records one chunk of up to 64 benchmarks in a single bitslice pass:
/// each benchmark occupies one lane, so every netlist evaluation
/// advances the whole chunk by a cycle. Per-lane toggles and power are
/// bit-identical to [`capture_one`]; lanes whose window has ended keep
/// stepping (harmlessly) until the chunk's longest window closes.
///
/// One wall clock covers the whole pass, so the per-benchmark timing
/// reported upstream is the chunk's elapsed time split evenly — the
/// lanes genuinely share the work.
fn capture_chunk_bitslice(
    ctx: &DesignContext,
    chunk: &[(Benchmark, usize)],
    warmup: usize,
    threads: usize,
) -> Vec<(TraceData, u64)> {
    let t0 = Instant::now();
    let workloads: Vec<(Vec<Inst>, Vec<u64>)> = chunk
        .iter()
        .map(|(b, _)| (b.program.clone(), b.data.clone()))
        .collect();
    let mut batch = CpuBatch::with_threads(
        &ctx.handles,
        &ctx.cap,
        ctx.power.clone(),
        &workloads,
        threads,
    );
    for _ in 0..warmup {
        batch.step();
    }
    let m = ctx.m_bits();
    let mut row = vec![0u64; m.div_ceil(64)];
    let mut shards: Vec<(ToggleMatrix, Vec<PowerSample>)> = chunk
        .iter()
        .map(|(_, cycles)| (ToggleMatrix::new(m, *cycles), Vec::with_capacity(*cycles)))
        .collect();
    let longest = chunk.iter().map(|(_, c)| *c).max().unwrap_or(0);
    let timing = apollo_telemetry::timing_enabled();
    let mut record_ns = 0u64;
    for cycle in 0..longest {
        batch.step();
        let r0 = timing.then(Instant::now);
        for (lane, (matrix, power)) in shards.iter_mut().enumerate() {
            if cycle < chunk[lane].1 {
                batch.sim().toggle_row(lane, &mut row);
                matrix.store_row(cycle, &row);
                power.push(batch.sim().power(lane));
            }
        }
        if let Some(r0) = r0 {
            record_ns += r0.elapsed().as_nanos() as u64;
        }
    }
    if timing {
        apollo_telemetry::profile::record_phase(
            "core.capture_chunk/record",
            longest as u64,
            record_ns,
        );
    }
    let per_bench_ns = t0.elapsed().as_nanos() as u64 / chunk.len() as u64;
    chunk
        .iter()
        .zip(shards)
        .map(|((bench, cycles), (toggles, power))| {
            (
                TraceData {
                    toggles,
                    power,
                    bit_map: None,
                    segments: vec![(bench.name.clone(), 0..*cycles)],
                },
                per_bench_ns,
            )
        })
        .collect()
}

/// Records one chunk of up to 64 benchmarks' proxy toggles in a single
/// toggles-only bitslice pass. Per cycle the extraction reads one
/// toggle plane per proxy (each plane word already is the 64-lane
/// toggle vector); every 64 cycles the buffered plane words are turned
/// into per-lane cycle words with one 64×64 block transpose per proxy
/// and OR-ed into the per-lane matrices as whole words, so no
/// bit-scatter happens anywhere on this path.
fn capture_proxy_chunk_bitslice(
    ctx: &DesignContext,
    chunk: &[(Benchmark, usize)],
    owners: &[(NodeId, u8)],
    warmup: usize,
    threads: usize,
) -> Vec<ToggleMatrix> {
    let workloads: Vec<(Vec<Inst>, Vec<u64>)> = chunk
        .iter()
        .map(|(b, _)| (b.program.clone(), b.data.clone()))
        .collect();
    let mut batch = CpuBatch::with_threads(
        &ctx.handles,
        &ctx.cap,
        ctx.power.clone(),
        &workloads,
        threads,
    );
    for _ in 0..warmup {
        batch.step_toggles();
    }
    let mut matrices: Vec<ToggleMatrix> = chunk
        .iter()
        .map(|(_, cycles)| ToggleMatrix::new(owners.len(), *cycles))
        .collect();
    // planes[k][c] = 64-lane toggle vector of proxy `k` at cycle `c` of
    // the current 64-cycle block.
    let mut planes = vec![[0u64; 64]; owners.len()];
    fn flush(planes: &mut [[u64; 64]], matrices: &mut [ToggleMatrix], block: usize, filled: usize) {
        for (k, blk) in planes.iter_mut().enumerate() {
            blk[filled..].fill(0);
            transpose64(blk);
            for (lane, m) in matrices.iter_mut().enumerate() {
                // Lanes whose window closed in an earlier block are
                // done; ragged bits inside the last block are masked by
                // `store_column_word`.
                if block * 64 < m.n_cycles() {
                    m.store_column_word(k, block, blk[lane]);
                }
            }
        }
    }
    let longest = chunk.iter().map(|(_, c)| *c).max().unwrap_or(0);
    let timing = apollo_telemetry::timing_enabled();
    let mut record_ns = 0u64;
    for cycle in 0..longest {
        batch.step_toggles();
        let r0 = timing.then(Instant::now);
        let c = cycle % 64;
        for (k, &(node, bit)) in owners.iter().enumerate() {
            planes[k][c] = batch.sim().toggle_plane(node, bit as usize);
        }
        if c == 63 {
            flush(&mut planes, &mut matrices, cycle / 64, 64);
        }
        if let Some(r0) = r0 {
            record_ns += r0.elapsed().as_nanos() as u64;
        }
    }
    if longest % 64 != 0 {
        flush(&mut planes, &mut matrices, longest / 64, longest % 64);
    }
    if timing {
        apollo_telemetry::profile::record_phase(
            "core.capture_proxy_chunk/record",
            longest as u64,
            record_ns,
        );
    }
    matrices
}

/// Records one benchmark on a fresh single-threaded simulator.
fn capture_one(ctx: &DesignContext, bench: &Benchmark, cycles: usize, warmup: usize) -> TraceData {
    let mut cap = TraceCapture::all(ctx.netlist(), cycles);
    let mut sim = ctx.simulate_with(&bench.program, &bench.data, 1);
    for _ in 0..warmup {
        sim.step();
    }
    cap.record(sim.sim_mut(), cycles, &bench.name);
    cap.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use apollo_cpu::CpuConfig;

    #[test]
    fn run_indexed_preserves_order() {
        let pool = SimPool::new(4);
        let out = pool.run_indexed(37, |i| i * i);
        assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn bitslice_fitness_matches_scalar() {
        let scalar = DesignContext::new(&CpuConfig::tiny());
        let bits = DesignContext::with_engine(&CpuConfig::tiny(), 1, EngineKind::Bitslice);
        let programs: Vec<Vec<Inst>> = vec![
            apollo_cpu::benchmarks::dhrystone().program,
            apollo_cpu::benchmarks::maxpwr_cpu().program,
            apollo_cpu::benchmarks::daxpy().program,
        ];
        let data = crate::benchgen::training_data_pattern(64);
        let a = SimPool::new(1).mean_powers(&scalar, &programs, &data, 20, 100);
        let b = SimPool::new(2).mean_powers(&bits, &programs, &data, 20, 100);
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "program {i}: fitness differs");
        }
    }

    #[test]
    fn proxy_capture_matches_engines_and_full_capture() {
        let cfg = CpuConfig::tiny();
        let scalar = DesignContext::new(&cfg);
        let bits_ctx = DesignContext::with_engine(&cfg, 1, EngineKind::Bitslice);
        let suite = vec![
            (apollo_cpu::benchmarks::dhrystone(), 70),
            (apollo_cpu::benchmarks::maxpwr_cpu(), 64),
            (apollo_cpu::benchmarks::daxpy(), 90),
        ];
        let m = scalar.m_bits();
        // A spread of proxy bits across the design, deliberately not
        // word-aligned.
        let bits: Vec<usize> = (0..17).map(|k| (k * m / 17 + 3) % m).collect();
        let a = SimPool::new(1).capture_proxy_suite(&scalar, &suite, &bits, 10);
        let b = SimPool::new(2).capture_proxy_suite(&bits_ctx, &suite, &bits, 10);
        assert_eq!(a, b, "proxy capture differs across engines");
        // Column k of the proxy capture must equal column bits[k] of
        // the stitched full capture, workload by workload.
        let full = SimPool::new(1).capture_suite(&scalar, &suite, 10);
        let mut cursor = 0usize;
        for (w, (_, cycles)) in suite.iter().enumerate() {
            for (k, &bit) in bits.iter().enumerate() {
                for c in 0..*cycles {
                    assert_eq!(
                        a[w].get(k, c),
                        full.toggles.get(bit, cursor + c),
                        "workload {w} proxy {k} cycle {c}"
                    );
                }
            }
            cursor += cycles;
        }
    }

    #[test]
    fn parallel_capture_matches_sequential() {
        let ctx = DesignContext::new(&CpuConfig::tiny());
        let suite = vec![
            (apollo_cpu::benchmarks::dhrystone(), 90),
            (apollo_cpu::benchmarks::maxpwr_cpu(), 70),
            (
                apollo_cpu::benchmarks::dcache_miss(&ctx.handles.config),
                110,
            ),
        ];
        let seq = SimPool::new(1).capture_suite(&ctx, &suite, 8);
        let par = SimPool::new(4).capture_suite(&ctx, &suite, 8);
        assert_eq!(seq.toggles, par.toggles);
        assert_eq!(seq.segments, par.segments);
        assert_eq!(seq.power.len(), par.power.len());
        for (a, b) in seq.power.iter().zip(&par.power) {
            assert_eq!(a.total.to_bits(), b.total.to_bits());
        }
    }
}
