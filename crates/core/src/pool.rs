//! Trace-level parallelism: a pool running independent workloads on
//! per-thread simulator instances.
//!
//! The simulator in `apollo-sim` parallelizes *within* one netlist
//! evaluation (levelized shards); this module parallelizes *across*
//! workloads, which is the natural axis for dataset collection and GA
//! fitness — every benchmark already gets its own fresh simulator, so
//! the runs share nothing. Workers pull workload indices from a shared
//! queue, run a single-threaded simulator each, and the results are
//! merged back **by workload index**, so toggle matrices, power labels
//! and fitness vectors are byte-identical to a sequential run no matter
//! how the scheduler interleaves the workers.

use crate::dataset::DesignContext;
use apollo_cpu::benchmarks::Benchmark;
use apollo_cpu::Inst;
use apollo_sim::{PowerSample, ToggleMatrix, TraceCapture, TraceData};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A pool of simulation workers for independent workloads.
#[derive(Clone, Copy, Debug)]
pub struct SimPool {
    threads: usize,
}

impl SimPool {
    /// Creates a pool of `threads` workers (clamped to at least 1; 1
    /// means run on the calling thread).
    pub fn new(threads: usize) -> Self {
        SimPool {
            threads: threads.max(1),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Captures full toggle traces for a set of workloads, each recorded
    /// for its own cycle window after `warmup` un-recorded cycles, and
    /// stitches them into one [`TraceData`] in suite order.
    ///
    /// Bit-identical to recording the suite sequentially into a single
    /// capture: every workload runs on a fresh single-threaded simulator
    /// either way, and the merge is ordered by suite index.
    pub fn capture_suite(
        &self,
        ctx: &DesignContext,
        suite: &[(Benchmark, usize)],
        warmup: usize,
    ) -> TraceData {
        let total: usize = suite.iter().map(|(_, c)| c).sum();
        assert!(total > 0, "empty capture request");
        let _span = apollo_telemetry::span("core.capture_suite");
        // Per-benchmark wall clock is measured inside the (possibly
        // parallel) jobs but reported only after the index-ordered
        // merge below, so span records come out in suite order no
        // matter how workers interleave.
        let shards: Vec<(TraceData, u64)> = self.run_indexed(suite.len(), |idx| {
            let (bench, cycles) = &suite[idx];
            let t0 = Instant::now();
            let trace = capture_one(ctx, bench, *cycles, warmup);
            (trace, t0.elapsed().as_nanos() as u64)
        });

        let mut toggles = ToggleMatrix::new(ctx.m_bits(), total);
        let mut power: Vec<PowerSample> = Vec::with_capacity(total);
        let mut segments: Vec<(String, Range<usize>)> = Vec::with_capacity(suite.len());
        let mut cursor = 0usize;
        let timing = apollo_telemetry::timing_enabled();
        let events = apollo_telemetry::events_enabled();
        for ((bench, cycles), (shard, bench_ns)) in suite.iter().zip(shards) {
            debug_assert_eq!(shard.n_cycles(), *cycles);
            toggles.merge_at(&shard.toggles, cursor);
            power.extend(shard.power);
            segments.push((bench.name.clone(), cursor..cursor + cycles));
            cursor += cycles;
            if timing {
                apollo_telemetry::profile::record_phase("core.capture_suite/bench", 1, bench_ns);
            }
            if events {
                apollo_telemetry::emit_span(
                    &format!("core.capture_suite/bench:{}", bench.name),
                    bench_ns,
                );
            }
        }
        apollo_telemetry::counter("core.benchmarks_captured").add(suite.len() as u64);
        apollo_telemetry::counter("core.cycles_captured").add(total as u64);
        TraceData {
            toggles,
            power,
            bit_map: None,
            segments,
        }
    }

    /// Mean total power of each program over `cycles` cycles after
    /// `warmup` cycles — the batched GA fitness function. All programs
    /// share the same preloaded `data` image. The returned vector is in
    /// program order regardless of worker scheduling.
    pub fn mean_powers(
        &self,
        ctx: &DesignContext,
        programs: &[Vec<Inst>],
        data: &[u64],
        warmup: u64,
        cycles: u64,
    ) -> Vec<f64> {
        self.run_indexed(programs.len(), |idx| {
            let mut sim = ctx.simulate_with(&programs[idx], data, 1);
            for _ in 0..warmup {
                sim.step();
            }
            let mut total = 0.0;
            for _ in 0..cycles {
                sim.step();
                total += sim.sim().power().total;
            }
            total / cycles as f64
        })
    }

    /// Runs `job(0..n)` across the pool and returns the results in index
    /// order. Workers pull indices from a shared queue (dynamic load
    /// balance for uneven workloads); results are scattered back by
    /// index, so ordering never depends on scheduling.
    fn run_indexed<T, F>(&self, n: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.threads == 1 || n <= 1 {
            return (0..n).map(job).collect();
        }
        let next = AtomicUsize::new(0);
        let done: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(n) {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let result = job(idx);
                    done.lock().unwrap().push((idx, result));
                });
            }
        });
        let mut pairs = done.into_inner().unwrap();
        pairs.sort_by_key(|&(i, _)| i);
        debug_assert_eq!(pairs.len(), n);
        pairs.into_iter().map(|(_, r)| r).collect()
    }
}

/// Records one benchmark on a fresh single-threaded simulator.
fn capture_one(ctx: &DesignContext, bench: &Benchmark, cycles: usize, warmup: usize) -> TraceData {
    let mut cap = TraceCapture::all(ctx.netlist(), cycles);
    let mut sim = ctx.simulate_with(&bench.program, &bench.data, 1);
    for _ in 0..warmup {
        sim.step();
    }
    cap.record(sim.sim_mut(), cycles, &bench.name);
    cap.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use apollo_cpu::CpuConfig;

    #[test]
    fn run_indexed_preserves_order() {
        let pool = SimPool::new(4);
        let out = pool.run_indexed(37, |i| i * i);
        assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_capture_matches_sequential() {
        let ctx = DesignContext::new(&CpuConfig::tiny());
        let suite = vec![
            (apollo_cpu::benchmarks::dhrystone(), 90),
            (apollo_cpu::benchmarks::maxpwr_cpu(), 70),
            (apollo_cpu::benchmarks::dcache_miss(&ctx.handles.config), 110),
        ];
        let seq = SimPool::new(1).capture_suite(&ctx, &suite, 8);
        let par = SimPool::new(4).capture_suite(&ctx, &suite, 8);
        assert_eq!(seq.toggles, par.toggles);
        assert_eq!(seq.segments, par.segments);
        assert_eq!(seq.power.len(), par.power.len());
        for (a, b) in seq.power.iter().zip(&par.power) {
            assert_eq!(a.total.to_bits(), b.total.to_bits());
        }
    }
}
