//! The framework-wide error type.
//!
//! Library crates in the workspace report recoverable failures through
//! [`ApolloError`] instead of panicking: a bad OPM specification, a
//! model that cannot be quantized, an invalid fault plan, a netlist
//! construction error, or file I/O in the pipeline. Binaries convert it
//! to a nonzero exit with a contextual message; library callers can
//! match on the variant.

use apollo_rtl::RtlError;
use apollo_sim::FaultPlanError;
use std::fmt;

/// Errors surfaced by the APOLLO pipeline and runtime-meter crates.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ApolloError {
    /// An OPM specification is invalid (zero proxies, non-power-of-two
    /// window, weight width out of range, ...).
    Spec {
        /// Description of the violated constraint.
        detail: String,
    },
    /// A trained model cannot be quantized to the requested format.
    Quantization {
        /// Description of the problem (negative weight, overflow, ...).
        detail: String,
    },
    /// A fault plan failed to compile against the target netlist.
    FaultPlan(FaultPlanError),
    /// An underlying netlist construction or validation error.
    Rtl(RtlError),
    /// A file could not be read or written.
    Io {
        /// Path of the offending file.
        path: String,
        /// The OS-level or parse-level failure description.
        detail: String,
    },
}

impl ApolloError {
    /// Convenience constructor for [`ApolloError::Spec`].
    pub fn spec(detail: impl Into<String>) -> Self {
        ApolloError::Spec {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`ApolloError::Quantization`].
    pub fn quantization(detail: impl Into<String>) -> Self {
        ApolloError::Quantization {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`ApolloError::Io`].
    pub fn io(path: impl Into<String>, detail: impl fmt::Display) -> Self {
        ApolloError::Io {
            path: path.into(),
            detail: detail.to_string(),
        }
    }
}

impl fmt::Display for ApolloError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApolloError::Spec { detail } => write!(f, "invalid OPM spec: {detail}"),
            ApolloError::Quantization { detail } => write!(f, "quantization failed: {detail}"),
            ApolloError::FaultPlan(e) => write!(f, "fault plan rejected: {e}"),
            ApolloError::Rtl(e) => write!(f, "netlist error: {e}"),
            ApolloError::Io { path, detail } => write!(f, "I/O error on `{path}`: {detail}"),
        }
    }
}

impl std::error::Error for ApolloError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ApolloError::FaultPlan(e) => Some(e),
            ApolloError::Rtl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FaultPlanError> for ApolloError {
    fn from(e: FaultPlanError) -> Self {
        ApolloError::FaultPlan(e)
    }
}

impl From<RtlError> for ApolloError {
    fn from(e: RtlError) -> Self {
        ApolloError::Rtl(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = ApolloError::spec("Q must be >= 1");
        assert_eq!(e.to_string(), "invalid OPM spec: Q must be >= 1");
        let e = ApolloError::io("/tmp/x.json", "permission denied");
        assert!(e.to_string().contains("/tmp/x.json"));
        assert!(e.to_string().contains("permission denied"));
    }

    #[test]
    fn wraps_sources() {
        use std::error::Error;
        let e = ApolloError::from(RtlError::Empty);
        assert!(e.source().is_some());
        let e = ApolloError::quantization("negative weight");
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ApolloError>();
    }
}
