//! Automatic training-data generation with a genetic algorithm
//! (paper §4.1, after GeST).
//!
//! Starting from a random population of constrained instruction
//! sequences, each generation measures every individual's average power
//! on the simulator, keeps the highest-power individuals as parents, and
//! produces children by one-point crossover and per-slot mutation. The
//! optimizer drives toward a power virus, and the union of individuals
//! across generations — early low-power ones included — spans a wide
//! power range (Figure 3b), from which a uniform-power training set is
//! drawn.

use crate::dataset::DesignContext;
use apollo_cpu::benchmarks::random::{random_inst, wrap_body, GenWeights};
use apollo_cpu::benchmarks::Benchmark;
use apollo_cpu::Inst;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// GA configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct GaConfig {
    /// Individuals per generation.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Shortest individual body (branch-dense when looped).
    pub body_len_min: usize,
    /// Longest individual body (past the I-cache capacity these create
    /// instruction-fetch misses, like real long basic blocks).
    pub body_len_max: usize,
    /// Times each body is looped during fitness evaluation.
    pub reps: u16,
    /// Unrecorded warm-up cycles before measuring.
    pub warmup: u64,
    /// Cycles of power measurement per fitness evaluation.
    pub fitness_cycles: u64,
    /// Fraction of the population kept as parents.
    pub parent_fraction: f64,
    /// Per-slot mutation probability for children.
    pub mutation_rate: f64,
    /// Instruction-class weights for generation and mutation.
    pub weights: GenWeights,
    /// Worker threads for fitness evaluation.
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 24,
            generations: 30,
            body_len_min: 12,
            body_len_max: 200,
            reps: 12,
            warmup: 400,
            fitness_cycles: 500,
            parent_fraction: 0.5,
            mutation_rate: 0.06,
            weights: GenWeights::default(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            seed: 0xA9011,
        }
    }
}

/// One evaluated micro-benchmark.
#[derive(Clone, Debug)]
pub struct Individual {
    /// Straight-line body (wrapped in the standard loop harness when
    /// assembled).
    pub body: Vec<Inst>,
    /// Measured average power.
    pub avg_power: f64,
    /// Generation it was evaluated in.
    pub generation: usize,
}

impl Individual {
    /// Assembles the runnable program for this individual.
    pub fn program(&self, reps: u16) -> Vec<Inst> {
        wrap_body(&self.body, reps)
    }
}

/// Output of a GA run: every individual ever evaluated, plus the
/// best-power trajectory.
#[derive(Clone, Debug)]
pub struct GaRun {
    /// All evaluated individuals across all generations.
    pub individuals: Vec<Individual>,
    /// Highest power seen per generation.
    pub best_per_gen: Vec<f64>,
    /// The configuration used.
    pub config: GaConfig,
}

impl GaRun {
    /// The max/min power ratio across all individuals (the paper reports
    /// > 5×).
    pub fn power_spread(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for ind in &self.individuals {
            lo = lo.min(ind.avg_power);
            hi = hi.max(ind.avg_power);
        }
        hi / lo
    }

    /// Draws `count` *distinct* individuals with approximately uniform
    /// coverage of the observed power range (the paper's training-set
    /// construction: ≈ 300 of > 1000 generated micro-benchmarks, with a
    /// uniform power distribution).
    pub fn select_uniform(&self, count: usize) -> Vec<&Individual> {
        assert!(count >= 1);
        let mut sorted: Vec<&Individual> = self.individuals.iter().collect();
        sorted.sort_by(|a, b| a.avg_power.partial_cmp(&b.avg_power).unwrap());
        if sorted.len() <= count {
            return sorted;
        }
        // Quantile picks across the power-sorted list (endpoints
        // included): distinct individuals with uniform-ish power
        // coverage.
        let mut out: Vec<&Individual> = Vec::with_capacity(count);
        for k in 0..count {
            let idx = k * (sorted.len() - 1) / (count - 1).max(1);
            out.push(sorted[idx]);
        }
        out.dedup_by(|a, b| std::ptr::eq(*a, *b));
        out
    }

    /// Converts selected individuals into capture-ready benchmarks of
    /// `cycles_each` recorded cycles. `dram_words` bounds the preloaded
    /// data pattern to the target design's memory.
    pub fn training_suite(
        &self,
        count: usize,
        cycles_each: usize,
        dram_words: u32,
    ) -> Vec<(Benchmark, usize)> {
        let data = training_data_pattern(dram_words.min(4096) as usize);
        self.select_uniform(count)
            .into_iter()
            .enumerate()
            .map(|(i, ind)| {
                let bench = Benchmark {
                    name: format!("ga{i:04}"),
                    program: ind.program(self.config.reps),
                    data: data.clone(),
                    cycles: cycles_each,
                };
                (bench, cycles_each)
            })
            .collect()
    }
}

/// Deterministic data-memory pattern shared by all GA evaluations.
pub fn training_data_pattern(words: usize) -> Vec<u64> {
    let mut s = 0x1234_5678_9ABC_DEF0u64;
    (0..words)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        })
        .collect()
}

/// Evaluates fitness (average power) for a set of bodies across the
/// simulation pool. Results come back in population order, so the GA
/// trajectory is independent of the thread count.
fn evaluate(ctx: &DesignContext, cfg: &GaConfig, bodies: &[Vec<Inst>]) -> Vec<f64> {
    let data = training_data_pattern(ctx.handles.config.dram_words.min(4096) as usize);
    let programs: Vec<Vec<Inst>> = bodies.iter().map(|b| wrap_body(b, cfg.reps)).collect();
    crate::pool::SimPool::new(cfg.threads).mean_powers(
        ctx,
        &programs,
        &data,
        cfg.warmup,
        cfg.fitness_cycles,
    )
}

/// Scales each instruction-class weight by a log-uniform factor in
/// roughly `[1/8, 8]`, producing hot and cold instruction mixes.
fn randomize_profile(base: &GenWeights, rng: &mut StdRng) -> GenWeights {
    let mut scale = |w: f64| w * (2.0f64).powf(rng.gen_range(-3.0..3.0));
    GenWeights {
        alu: scale(base.alu),
        mul: scale(base.mul),
        div: scale(base.div),
        load: scale(base.load),
        store: scale(base.store),
        vec: scale(base.vec),
        vmem: scale(base.vmem),
        nop: scale(base.nop * 4.0),
        throttle: scale(base.throttle),
    }
}

/// Runs the GA and returns every evaluated individual.
pub fn run_ga(ctx: &DesignContext, cfg: &GaConfig) -> GaRun {
    assert!(cfg.population >= 4, "population too small");
    assert!((0.0..=1.0).contains(&cfg.parent_fraction));
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Diverse initial population: each individual draws from its own
    // randomized instruction-mix profile (some NOP/branchy-cold, some
    // vector/multiply-hot) and its own body length (short bodies are
    // branch-dense when looped, long ones overflow the I-cache), which
    // is what gives the union of generations the paper's wide power
    // range.
    let mut population: Vec<Vec<Inst>> = (0..cfg.population)
        .map(|_| {
            let profile = randomize_profile(&cfg.weights, &mut rng);
            let len = rng.gen_range(cfg.body_len_min..=cfg.body_len_max);
            (0..len).map(|_| random_inst(&mut rng, &profile)).collect()
        })
        .collect();

    let mut all = Vec::with_capacity(cfg.population * cfg.generations);
    let mut best_per_gen = Vec::with_capacity(cfg.generations);
    let ga_span = apollo_telemetry::span("ga.run");

    for generation in 0..cfg.generations {
        let t_fit = Instant::now();
        let fitness = evaluate(ctx, cfg, &population);
        let fitness_ns = t_fit.elapsed().as_nanos() as u64;
        let t_sel = Instant::now();
        let mut ranked: Vec<usize> = (0..population.len()).collect();
        ranked.sort_by(|&a, &b| fitness[b].partial_cmp(&fitness[a]).unwrap());
        best_per_gen.push(fitness[ranked[0]]);
        let mean = fitness.iter().sum::<f64>() / fitness.len() as f64;
        if apollo_telemetry::timing_enabled() {
            apollo_telemetry::profile::record_phase("ga.run/fitness", 1, fitness_ns);
        }
        apollo_telemetry::counter("ga.individuals_evaluated").add(population.len() as u64);
        apollo_telemetry::emit_event(
            "ga.generation",
            &[
                ("gen", apollo_telemetry::FieldValue::from(generation)),
                (
                    "best",
                    apollo_telemetry::FieldValue::from(fitness[ranked[0]]),
                ),
                ("mean", apollo_telemetry::FieldValue::from(mean)),
            ],
        );
        for (body, &fit) in population.iter().zip(&fitness) {
            all.push(Individual {
                body: body.clone(),
                avg_power: fit,
                generation,
            });
        }
        if generation + 1 == cfg.generations {
            break;
        }
        // Parents: top fraction by power.
        let n_parents = ((cfg.population as f64 * cfg.parent_fraction) as usize).max(2);
        let parents: Vec<&Vec<Inst>> = ranked[..n_parents]
            .iter()
            .map(|&i| &population[i])
            .collect();
        // Children: crossover + mutation; elitism keeps the best as-is.
        let mut next: Vec<Vec<Inst>> = vec![population[ranked[0]].clone()];
        while next.len() < cfg.population {
            let pa = parents[rng.gen_range(0..parents.len())];
            let pb = parents[rng.gen_range(0..parents.len())];
            // Variable-length one-point crossover: prefix of one parent,
            // suffix of the other, clamped to the configured range.
            let cut_a = rng.gen_range(1..pa.len());
            let cut_b = rng.gen_range(0..pb.len());
            let mut child: Vec<Inst> = pa[..cut_a]
                .iter()
                .chain(pb[cut_b..].iter())
                .copied()
                .collect();
            child.truncate(cfg.body_len_max);
            while child.len() < cfg.body_len_min {
                child.push(random_inst(&mut rng, &cfg.weights));
            }
            for slot in child.iter_mut() {
                if rng.gen_bool(cfg.mutation_rate) {
                    *slot = random_inst(&mut rng, &cfg.weights);
                }
            }
            next.push(child);
        }
        population = next;
        if apollo_telemetry::timing_enabled() {
            apollo_telemetry::profile::record_phase(
                "ga.run/selection",
                1,
                t_sel.elapsed().as_nanos() as u64,
            );
        }
    }

    drop(ga_span);
    GaRun {
        individuals: all,
        best_per_gen,
        config: cfg.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apollo_cpu::CpuConfig;

    fn small_cfg() -> GaConfig {
        GaConfig {
            population: 8,
            generations: 4,
            body_len_min: 10,
            body_len_max: 48,
            reps: 8,
            warmup: 60,
            fitness_cycles: 250,
            threads: 4,
            ..GaConfig::default()
        }
    }

    #[test]
    fn ga_produces_diverse_power_and_improves() {
        let ctx = DesignContext::new(&CpuConfig::tiny());
        let run = run_ga(&ctx, &small_cfg());
        assert_eq!(run.individuals.len(), 8 * 4);
        assert!(run.power_spread() > 1.1, "spread {}", run.power_spread());
        let first = run.best_per_gen[0];
        let last = *run.best_per_gen.last().unwrap();
        assert!(
            last >= first * 0.999,
            "elitism: best should not regress ({first} -> {last})"
        );
    }

    #[test]
    fn uniform_selection_spans_range() {
        let ctx = DesignContext::new(&CpuConfig::tiny());
        let run = run_ga(&ctx, &small_cfg());
        let sel = run.select_uniform(6);
        assert!(sel.len() >= 3);
        let lo = sel
            .iter()
            .map(|i| i.avg_power)
            .fold(f64::INFINITY, f64::min);
        let hi = sel.iter().map(|i| i.avg_power).fold(0.0, f64::max);
        let all_lo = run
            .individuals
            .iter()
            .map(|i| i.avg_power)
            .fold(f64::INFINITY, f64::min);
        let all_hi = run
            .individuals
            .iter()
            .map(|i| i.avg_power)
            .fold(0.0, f64::max);
        assert!(lo <= all_lo + 0.2 * (all_hi - all_lo));
        assert!(hi >= all_hi - 0.2 * (all_hi - all_lo));
    }

    #[test]
    fn ga_is_deterministic() {
        let ctx = DesignContext::new(&CpuConfig::tiny());
        let a = run_ga(&ctx, &small_cfg());
        let b = run_ga(&ctx, &small_cfg());
        assert_eq!(a.best_per_gen, b.best_per_gen);
    }
}
