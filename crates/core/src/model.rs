//! The per-cycle APOLLO power model (paper §4.3–4.4): MCP-based proxy
//! selection followed by ridge relaxation.

use crate::features::{FeatureSpace, TraceDesign};
use apollo_mlkit::{
    coordinate_descent, select_features, CdOptions, CdResult, DenseDesign, Design, Penalty,
};
use apollo_rtl::{Netlist, Unit};
use apollo_sim::{ToggleMatrix, TraceData};

/// Which sparsity-inducing penalty drives proxy selection.
#[derive(Copy, Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum SelectionPenalty {
    /// Minimax concave penalty (APOLLO).
    Mcp {
        /// Concavity parameter γ (the paper uses 10).
        gamma: f64,
    },
    /// Lasso (the Pagliari et al. baseline).
    Lasso,
}

/// Training options for [`train_per_cycle`].
#[derive(Clone, Debug, PartialEq)]
pub struct TrainOptions {
    /// Target number of proxies `Q`.
    pub q_target: usize,
    /// Selection penalty.
    pub penalty: SelectionPenalty,
    /// Ridge strength for the relaxation refit.
    pub relax_lambda: f64,
    /// Constrain weights to be non-negative.
    pub nonnegative: bool,
    /// Coordinate-descent controls.
    pub cd: CdOptions,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            q_target: 150,
            penalty: SelectionPenalty::Mcp { gamma: 10.0 },
            relax_lambda: 1e-3,
            nonnegative: true,
            cd: CdOptions::default(),
        }
    }
}

/// One selected power proxy.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Proxy {
    /// Flat signal-bit index in the design.
    pub bit: usize,
    /// Trained weight.
    pub weight: f64,
    /// Hierarchical signal name (with bit suffix for multi-bit nodes).
    pub name: String,
    /// Functional unit of the signal.
    pub unit: Unit,
    /// Whether the proxy is a gated-clock net.
    pub is_clock_gate: bool,
}

/// The per-cycle APOLLO power model: `p[i] = b₀ + Σ w_j · x_j[i]`.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ApolloModel {
    /// Design this model was trained for.
    pub design_name: String,
    /// Selected proxies with their weights.
    pub proxies: Vec<Proxy>,
    /// Intercept (leakage + always-on clock baseline).
    pub intercept: f64,
    /// λ the selection stage settled on.
    pub selection_lambda: f64,
    /// Penalty used for selection.
    pub penalty: SelectionPenalty,
    /// Candidate columns after dedup (for reporting).
    pub candidates: usize,
    /// Total signal bits `M` of the design.
    pub m_bits: usize,
}

impl ApolloModel {
    /// Number of proxies `Q`.
    pub fn q(&self) -> usize {
        self.proxies.len()
    }

    /// Flat bit indices of the proxies, in model order.
    pub fn bits(&self) -> Vec<usize> {
        self.proxies.iter().map(|p| p.bit).collect()
    }

    /// Σ|w| (Figure 13's quantity).
    pub fn weight_l1(&self) -> f64 {
        self.proxies.iter().map(|p| p.weight.abs()).sum()
    }

    /// Fraction of design signal bits monitored.
    pub fn monitored_fraction(&self) -> f64 {
        self.q() as f64 / self.m_bits as f64
    }

    /// Renders a human-readable model card: proxies grouped by unit
    /// with their weights, plus summary statistics.
    pub fn report_markdown(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "# APOLLO model — `{}`", self.design_name);
        let _ = writeln!(
            out,
            "
Q = {} proxies of M = {} signal bits ({:.4} %), intercept {:.2}, Σ|w| = {:.1}
",
            self.q(),
            self.m_bits,
            100.0 * self.monitored_fraction(),
            self.intercept,
            self.weight_l1()
        );
        let mut by_unit: std::collections::BTreeMap<String, Vec<&Proxy>> = Default::default();
        for p in &self.proxies {
            let key = if p.is_clock_gate {
                "Gated Clock".to_owned()
            } else {
                p.unit.label().to_owned()
            };
            by_unit.entry(key).or_default().push(p);
        }
        for (unit, mut proxies) in by_unit {
            proxies.sort_by(|a, b| b.weight.partial_cmp(&a.weight).unwrap());
            let _ = writeln!(out, "## {unit} ({})", proxies.len());
            for p in proxies.iter().take(8) {
                let _ = writeln!(out, "- `{}` — weight {:.2}", p.name, p.weight);
            }
            if proxies.len() > 8 {
                let _ = writeln!(out, "- … and {} more", proxies.len() - 8);
            }
        }
        out
    }

    /// Per-cycle prediction from a full toggle matrix (columns indexed
    /// by flat bit).
    pub fn predict_full(&self, matrix: &ToggleMatrix) -> Vec<f64> {
        let mut out = vec![self.intercept; matrix.n_cycles()];
        for p in &self.proxies {
            for (wi, &w) in matrix.column(p.bit).iter().enumerate() {
                let mut bits = w;
                let base = wi * 64;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    out[base + b] += p.weight;
                }
            }
        }
        out
    }

    /// Per-cycle prediction from a proxy-only capture whose `bit_map`
    /// must cover all proxy bits.
    ///
    /// # Panics
    /// Panics if the capture lacks a proxy bit.
    pub fn predict_proxy_trace(&self, data: &TraceData) -> Vec<f64> {
        let map = data
            .bit_map
            .as_ref()
            .expect("proxy capture must carry a bit map");
        let mut out = vec![self.intercept; data.n_cycles()];
        for p in &self.proxies {
            let col = map
                .iter()
                .position(|&b| b == p.bit)
                .unwrap_or_else(|| panic!("capture is missing proxy bit {}", p.bit));
            for (wi, &w) in data.toggles.column(col).iter().enumerate() {
                let mut bits = w;
                let base = wi * 64;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    out[base + b] += p.weight;
                }
            }
        }
        out
    }
}

/// Builds a [`Proxy`] record for a flat bit.
pub(crate) fn proxy_info(netlist: &Netlist, bit: usize, weight: f64) -> Proxy {
    let (node, sub) = netlist.bit_owner(bit);
    let base = netlist.display_name(node);
    let width = netlist.node(node).width;
    let name = if width > 1 {
        format!("{base}[{sub}]")
    } else {
        base
    };
    let is_clock_gate = matches!(netlist.node(node).op, apollo_rtl::Op::GatedClock { .. });
    Proxy {
        bit,
        weight,
        name,
        unit: netlist.unit(node),
        is_clock_gate,
    }
}

/// Extracts the selected columns densely (Q columns) for relaxation.
pub(crate) fn dense_selected<D: Design>(design: &D, cols: &[usize]) -> DenseDesign {
    let n = design.n_rows();
    let mut data = vec![0.0; n * cols.len()];
    for (k, &j) in cols.iter().enumerate() {
        let slice = &mut data[k * n..(k + 1) * n];
        design.for_each_nonzero(j, &mut |row, val| slice[row] = val);
    }
    DenseDesign::from_columns(n, cols.len(), data)
}

/// Selection result detail, for reporting (Figure 13 compares the
/// selection-stage weight mass of MCP vs Lasso).
#[derive(Clone, Debug)]
pub struct TrainedPerCycle {
    /// The final (relaxed) model.
    pub model: ApolloModel,
    /// The selection-stage temporary model (pre-relaxation).
    pub selection: CdResult,
}

/// Trains a per-cycle APOLLO model: MCP (or Lasso) proxy selection over
/// all candidate columns, then a ridge refit ("relaxation") on the
/// selected proxies only.
pub fn train_per_cycle(
    trace: &TraceData,
    netlist: &Netlist,
    fs: &FeatureSpace,
    opts: &TrainOptions,
) -> TrainedPerCycle {
    let design = TraceDesign::new(&trace.toggles, &fs.reps);
    let y = trace.labels();
    let penalty = match opts.penalty {
        SelectionPenalty::Mcp { gamma } => Penalty::Mcp { lambda: 1.0, gamma },
        SelectionPenalty::Lasso => Penalty::Lasso { lambda: 1.0 },
    };
    let cd_opts = CdOptions {
        nonnegative: opts.nonnegative,
        ..opts.cd.clone()
    };
    let _train_span = apollo_telemetry::span("train.per_cycle");
    let selection = {
        let _span = apollo_telemetry::span("select");
        select_features(&design, &y, penalty, opts.q_target, &cd_opts)
    };
    let cols: Vec<usize> = selection.active.iter().map(|&(j, _)| j).collect();
    assert!(!cols.is_empty(), "selection produced an empty model");

    // Relaxation: ridge refit from scratch on the selected proxies.
    let _span = apollo_telemetry::span("relax");
    let dense = dense_selected(&design, &cols);
    let relaxed = coordinate_descent(
        &dense,
        &y,
        Penalty::Ridge {
            lambda: opts.relax_lambda,
        },
        &CdOptions {
            nonnegative: opts.nonnegative,
            max_sweeps: 400,
            ..CdOptions::default()
        },
    );
    apollo_telemetry::emit_event(
        "train.model",
        &[
            ("q", apollo_telemetry::FieldValue::from(cols.len())),
            (
                "lambda",
                apollo_telemetry::FieldValue::from(selection.lambda),
            ),
        ],
    );
    let mut weights = vec![0.0; cols.len()];
    for &(k, w) in &relaxed.active {
        weights[k] = w;
    }
    let proxies: Vec<Proxy> = cols
        .iter()
        .zip(&weights)
        .map(|(&j, &w)| proxy_info(netlist, design.bit_of(j), w))
        .collect();

    let model = ApolloModel {
        design_name: netlist.design_name().to_owned(),
        proxies,
        intercept: relaxed.intercept,
        selection_lambda: selection.lambda,
        penalty: opts.penalty,
        candidates: fs.n_candidates(),
        m_bits: fs.total_bits,
    };
    TrainedPerCycle { model, selection }
}

/// Trains per-cycle models at several proxy budgets with a single
/// shared selection path (the Figure 10/12 sweep).
pub fn train_per_cycle_multi(
    trace: &TraceData,
    netlist: &Netlist,
    fs: &FeatureSpace,
    q_targets: &[usize],
    opts: &TrainOptions,
) -> Vec<TrainedPerCycle> {
    let design = TraceDesign::new(&trace.toggles, &fs.reps);
    let y = trace.labels();
    let penalty = match opts.penalty {
        SelectionPenalty::Mcp { gamma } => Penalty::Mcp { lambda: 1.0, gamma },
        SelectionPenalty::Lasso => Penalty::Lasso { lambda: 1.0 },
    };
    let cd_opts = CdOptions {
        nonnegative: opts.nonnegative,
        ..opts.cd.clone()
    };
    let selections = apollo_mlkit::select_path_targets(&design, &y, penalty, q_targets, &cd_opts);
    selections
        .into_iter()
        .map(|selection| {
            let cols: Vec<usize> = selection.active.iter().map(|&(j, _)| j).collect();
            assert!(!cols.is_empty(), "selection produced an empty model");
            let dense = dense_selected(&design, &cols);
            let relaxed = coordinate_descent(
                &dense,
                &y,
                Penalty::Ridge {
                    lambda: opts.relax_lambda,
                },
                &CdOptions {
                    nonnegative: opts.nonnegative,
                    max_sweeps: 400,
                    ..CdOptions::default()
                },
            );
            let mut weights = vec![0.0; cols.len()];
            for &(k, w) in &relaxed.active {
                weights[k] = w;
            }
            let proxies: Vec<Proxy> = cols
                .iter()
                .zip(&weights)
                .map(|(&j, &w)| proxy_info(netlist, design.bit_of(j), w))
                .collect();
            let model = ApolloModel {
                design_name: netlist.design_name().to_owned(),
                proxies,
                intercept: relaxed.intercept,
                selection_lambda: selection.lambda,
                penalty: opts.penalty,
                candidates: fs.n_candidates(),
                m_bits: fs.total_bits,
            };
            TrainedPerCycle { model, selection }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DesignContext;
    use apollo_cpu::CpuConfig;
    use apollo_mlkit::metrics;

    fn train_tiny() -> (DesignContext, TraceData, FeatureSpace, TrainedPerCycle) {
        use apollo_cpu::benchmarks::random::{random_body, wrap_body, GenWeights};
        let ctx = DesignContext::new(&CpuConfig::tiny());
        // Handcrafted kernels plus constrained-random programs for
        // coverage (the production pipeline uses GA-generated programs).
        let mut suite: Vec<_> = vec![
            (apollo_cpu::benchmarks::dhrystone(), 400),
            (apollo_cpu::benchmarks::maxpwr_cpu(), 400),
            (apollo_cpu::benchmarks::daxpy(), 400),
            (apollo_cpu::benchmarks::memcpy_l2(&CpuConfig::tiny()), 400),
        ];
        let w = GenWeights::default();
        for seed in 0..6u64 {
            let bench = apollo_cpu::benchmarks::Benchmark {
                name: format!("rand{seed}"),
                program: wrap_body(&random_body(seed, 40, &w), 8),
                data: crate::benchgen::training_data_pattern(256),
                cycles: 150,
            };
            suite.push((bench, 150));
        }
        let trace = ctx.capture_suite(&suite, 60);
        let fs = FeatureSpace::build(&trace.toggles);
        let trained = train_per_cycle(
            &trace,
            ctx.netlist(),
            &fs,
            &TrainOptions {
                q_target: 32,
                ..TrainOptions::default()
            },
        );
        (ctx, trace, fs, trained)
    }

    #[test]
    fn trains_accurate_sparse_model_on_tiny_cpu() {
        let (ctx, trace, fs, trained) = train_tiny();
        let model = &trained.model;
        assert!(model.q() >= 16 && model.q() <= 64, "Q = {}", model.q());
        assert!(model.q() < fs.n_candidates() / 4);
        // In-sample accuracy.
        let pred = model.predict_full(&trace.toggles);
        let y = trace.labels();
        let r2 = metrics::r2(&y, &pred);
        assert!(r2 > 0.8, "train R² = {r2}");

        // Held-out accuracy on unseen benchmarks.
        let test: Vec<_> = vec![
            (apollo_cpu::benchmarks::saxpy_simd(), 400),
            (apollo_cpu::benchmarks::cache_miss(&ctx.handles.config), 300),
        ];
        let test_trace = ctx.capture_suite(&test, 16);
        let pred = model.predict_full(&test_trace.toggles);
        let y = test_trace.labels();
        let r2 = metrics::r2(&y, &pred);
        assert!(r2 > 0.65, "test R² = {r2}");
    }

    #[test]
    fn proxy_metadata_is_populated() {
        let (_ctx, _trace, _fs, trained) = train_tiny();
        for p in &trained.model.proxies {
            assert!(!p.name.is_empty());
            assert!(p.weight >= 0.0, "nonneg violated: {}", p.weight);
        }
        assert!(trained.model.intercept > 0.0, "leakage baseline expected");
    }

    #[test]
    fn proxy_capture_prediction_matches_full() {
        let (ctx, _trace, _fs, trained) = train_tiny();
        let model = &trained.model;
        let bench = apollo_cpu::benchmarks::dhrystone();
        let full = ctx.capture_suite(&[(bench.clone(), 200)], 16);
        let proxy_only = ctx.capture_bits(&bench, &model.bits(), 200, 16);
        let a = model.predict_full(&full.toggles);
        let b = model.predict_proxy_trace(&proxy_only);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn report_markdown_lists_all_units() {
        let (_ctx, _trace, _fs, trained) = train_tiny();
        let report = trained.model.report_markdown();
        assert!(report.contains("# APOLLO model"));
        assert!(report.contains(&format!("Q = {} proxies", trained.model.q())));
        for p in trained.model.proxies.iter().take(3) {
            if !p.is_clock_gate {
                assert!(report.contains(p.unit.label()), "missing unit {}", p.unit);
            }
        }
    }

    #[test]
    fn model_serializes_roundtrip() {
        let (_ctx, _trace, _fs, trained) = train_tiny();
        let json = serde_json::to_string(&trained.model).unwrap();
        let back: ApolloModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back.q(), trained.model.q());
        assert_eq!(back.design_name, trained.model.design_name);
        for (a, b) in back.proxies.iter().zip(&trained.model.proxies) {
            assert_eq!(a.bit, b.bit);
            assert_eq!(a.name, b.name);
            assert!((a.weight - b.weight).abs() <= 1e-9 * b.weight.abs().max(1.0));
        }
        assert!((back.intercept - trained.model.intercept).abs() < 1e-9);
    }
}
