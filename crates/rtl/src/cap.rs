//! Synthetic back-annotated parasitics.
//!
//! A commercial signoff flow annotates each RTL net with the capacitance
//! it drives (wire parasitics plus the gate capacitance of its fanout).
//! We reproduce that annotation synthetically and deterministically: per
//! net, capacitance grows with width and fanout, is scaled per functional
//! unit, and carries a log-normal-ish per-net jitter so no two nets are
//! exactly alike. Registers additionally load their clock with clock-pin
//! capacitance, which is what makes gated-clock enables such strong power
//! proxies (39 of 159 proxies in the paper's Figure 15(a) are gated
//! clocks).

use crate::netlist::Netlist;
use crate::node::{ClockId, Unit};

/// Configuration for synthetic parasitic annotation.
///
/// Units are arbitrary-but-consistent capacitance units; power values
/// derived from them are likewise in arbitrary units, matching the
/// paper's scaled power plots.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CapModel {
    /// Base capacitance of a 1-bit net with fanout 1.
    pub base_cap: f64,
    /// Additional capacitance per point of fanout.
    pub fanout_cap: f64,
    /// Clock-pin capacitance per register bit (charged on every clock
    /// toggle of the register's domain).
    pub clock_pin_cap: f64,
    /// Energy per memory-macro access (read or write), per bit of word
    /// width.
    pub mem_access_energy_per_bit: f64,
    /// Multiplicative jitter range: each net's capacitance is scaled by a
    /// deterministic factor in `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl Default for CapModel {
    fn default() -> Self {
        CapModel {
            base_cap: 1.0,
            fanout_cap: 0.35,
            clock_pin_cap: 0.25,
            mem_access_energy_per_bit: 1.5,
            jitter: 0.5,
            seed: 0x00A9_0110,
        }
    }
}

impl CapModel {
    /// Relative capacitance scale for nets in each functional unit;
    /// models denser wiring in datapath-heavy units.
    fn unit_scale(unit: Unit) -> f64 {
        match unit {
            Unit::Fetch => 1.1,
            Unit::Decode => 0.9,
            Unit::Issue => 1.3,
            Unit::Alu => 1.2,
            Unit::Multiplier => 1.5,
            Unit::Vector => 1.6,
            Unit::LoadStore => 1.25,
            Unit::L2 => 1.4,
            Unit::RegFile => 1.0,
            Unit::ClockTree => 2.2,
            Unit::Control => 0.8,
            Unit::Opm => 0.7,
        }
    }

    /// Annotates a netlist, producing per-net capacitances and per-macro
    /// access energies.
    pub fn annotate(&self, netlist: &Netlist) -> CapAnnotation {
        let mut per_bit_cap = Vec::with_capacity(netlist.len());
        for (i, node) in netlist.nodes().iter().enumerate() {
            let id = crate::node::NodeId::from_index(i);
            let fanout = netlist.fanout(id) as f64;
            let unit = netlist.unit(id);
            let jit = 1.0 + self.jitter * (2.0 * splitmix_unit(self.seed ^ (i as u64)) - 1.0);
            let cap =
                (self.base_cap + self.fanout_cap * fanout) * Self::unit_scale(unit) * jit.max(0.05);
            // Constants never toggle; annotate zero to keep sums exact.
            let cap = if node.is_const() { 0.0 } else { cap };
            per_bit_cap.push(cap);
        }

        // Clock-pin capacitance per domain: sum over register bits in the
        // domain, with the root domain representing the whole ungated
        // clock tree.
        let mut clock_cap = vec![0.0f64; netlist.clock_domains()];
        for (reg, clock) in netlist.registers() {
            let bits = netlist.node(reg).width as f64;
            clock_cap[clock.index()] += bits * self.clock_pin_cap;
        }

        let mem_energy = netlist
            .memories()
            .iter()
            .map(|m| m.width as f64 * self.mem_access_energy_per_bit)
            .collect();

        CapAnnotation {
            per_bit_cap,
            clock_cap,
            mem_energy,
        }
    }
}

/// Per-design parasitic annotation produced by [`CapModel::annotate`].
#[derive(Clone, Debug, PartialEq)]
pub struct CapAnnotation {
    /// Capacitance per bit for each node (indexed by node).
    per_bit_cap: Vec<f64>,
    /// Total clock-pin capacitance per clock domain.
    clock_cap: Vec<f64>,
    /// Per-access energy for each memory macro.
    mem_energy: Vec<f64>,
}

impl CapAnnotation {
    /// Capacitance per bit of node `i` (by node index).
    pub fn node_cap(&self, node_index: usize) -> f64 {
        self.per_bit_cap[node_index]
    }

    /// Total clock-pin capacitance of a domain.
    pub fn clock_cap(&self, clock: ClockId) -> f64 {
        self.clock_cap[clock.index()]
    }

    /// Per-access energy of memory macro `i`.
    pub fn mem_energy(&self, mem_index: usize) -> f64 {
        self.mem_energy[mem_index]
    }

    /// Sum of all per-bit net capacitances weighted by node width — an
    /// upper bound on per-cycle switching capacitance.
    pub fn total_net_cap(&self, netlist: &Netlist) -> f64 {
        netlist
            .nodes()
            .iter()
            .zip(&self.per_bit_cap)
            .map(|(n, c)| n.width as f64 * c)
            .sum()
    }

    /// A crude gate-area proxy for the design (arbitrary units):
    /// proportional to total annotated capacitance plus macro area.
    ///
    /// Used to normalise OPM area overhead the way the paper normalises
    /// OPM gate area against the CPU's total gate area.
    pub fn area_estimate(&self, netlist: &Netlist) -> f64 {
        let logic = self.total_net_cap(netlist);
        let macros: f64 = netlist
            .memories()
            .iter()
            .map(|m| m.words as f64 * m.width as f64 * 0.15)
            .sum();
        logic + macros
    }
}

/// SplitMix64-derived uniform value in `[0, 1)`, deterministic in `x`.
fn splitmix_unit(x: u64) -> f64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::node::{Unit, CLOCK_ROOT};

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new("s");
        let r = b.reg(8, 0, CLOCK_ROOT, "r", Unit::Alu);
        let c = b.constant(1, 8);
        let s = b.add(r, c);
        b.connect(r, s);
        b.build().unwrap()
    }

    #[test]
    fn annotation_is_deterministic() {
        let nl = sample();
        let m = CapModel::default();
        let a = m.annotate(&nl);
        let b = m.annotate(&nl);
        assert_eq!(a, b);
    }

    #[test]
    fn constants_have_zero_cap() {
        let nl = sample();
        let a = CapModel::default().annotate(&nl);
        assert_eq!(a.node_cap(1), 0.0);
        assert!(a.node_cap(0) > 0.0);
    }

    #[test]
    fn clock_cap_counts_register_bits() {
        let nl = sample();
        let m = CapModel::default();
        let a = m.annotate(&nl);
        assert!((a.clock_cap(CLOCK_ROOT) - 8.0 * m.clock_pin_cap).abs() < 1e-12);
    }

    #[test]
    fn splitmix_unit_range() {
        for i in 0..1000 {
            let v = splitmix_unit(i);
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let nl = sample();
        let a = CapModel {
            seed: 1,
            ..CapModel::default()
        }
        .annotate(&nl);
        let b = CapModel {
            seed: 2,
            ..CapModel::default()
        }
        .annotate(&nl);
        assert_ne!(a, b);
    }
}
