//! Incremental netlist construction.

use crate::error::RtlError;
use crate::netlist::{Memory, Netlist, WritePort};
use crate::node::{mask, ClockId, MemId, Node, NodeId, Op, SignalMeta, Unit, MAX_WIDTH};

/// Builder for a [`Netlist`].
///
/// Operation methods validate widths eagerly and panic on misuse (a
/// width mismatch is a design bug, as in any HDL elaboration); structural
/// completeness (e.g. every register connected) is checked by
/// [`build`](NetlistBuilder::build), which returns [`RtlError`].
///
/// Combinational nodes may only reference already-created nodes, so the
/// combinational graph is a DAG by construction; feedback must go through
/// a register created up front and [`connect`](NetlistBuilder::connect)ed
/// later.
#[derive(Debug)]
pub struct NetlistBuilder {
    design_name: String,
    nodes: Vec<Node>,
    meta: Vec<Option<SignalMeta>>,
    mems: Vec<Memory>,
    /// Gated-clock signal node for each clock domain (`None` for root).
    clock_nodes: Vec<Option<NodeId>>,
    connected: Vec<bool>,
    scope: Vec<String>,
    units: Vec<Unit>,
    current_unit: Unit,
}

impl NetlistBuilder {
    /// Creates an empty builder for a design called `design_name`.
    pub fn new(design_name: impl Into<String>) -> Self {
        NetlistBuilder {
            design_name: design_name.into(),
            nodes: Vec::new(),
            meta: Vec::new(),
            mems: Vec::new(),
            clock_nodes: vec![None],
            connected: Vec::new(),
            scope: Vec::new(),
            units: Vec::new(),
            current_unit: Unit::Control,
        }
    }

    /// Sets the ambient functional unit: nodes created from now on are
    /// attributed to `unit` unless explicitly named with another one.
    /// Returns the previous ambient unit.
    pub fn set_unit(&mut self, unit: Unit) -> Unit {
        std::mem::replace(&mut self.current_unit, unit)
    }

    /// Number of nodes created so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if no nodes have been created.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Width of an existing node.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this builder.
    pub fn width(&self, id: NodeId) -> u8 {
        self.nodes[id.index()].width
    }

    /// Pushes a hierarchical scope; names created until the matching
    /// [`pop_scope`](NetlistBuilder::pop_scope) are prefixed with
    /// `segment/`.
    pub fn push_scope(&mut self, segment: impl Into<String>) {
        self.scope.push(segment.into());
    }

    /// Pops the innermost hierarchical scope.
    ///
    /// # Panics
    /// Panics if no scope is active.
    pub fn pop_scope(&mut self) {
        self.scope
            .pop()
            .expect("pop_scope without matching push_scope");
    }

    fn qualify(&self, name: &str) -> String {
        if self.scope.is_empty() {
            name.to_owned()
        } else {
            let mut s = self.scope.join("/");
            s.push('/');
            s.push_str(name);
            s
        }
    }

    fn push(&mut self, node: Node) -> NodeId {
        debug_assert!(node.width >= 1 && node.width <= MAX_WIDTH);
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.meta.push(None);
        self.connected.push(false);
        self.units.push(self.current_unit);
        id
    }

    fn check(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    fn same_width(&self, a: NodeId, b: NodeId, what: &str) -> u8 {
        let wa = self.check(a).width;
        let wb = self.check(b).width;
        assert!(
            wa == wb,
            "{what}: operand widths differ ({wa} vs {wb}) for {a:?}, {b:?}"
        );
        wa
    }

    /// Attaches a name and unit tag to an existing node.
    ///
    /// Re-naming overwrites the previous name.
    pub fn name(&mut self, id: NodeId, name: &str, unit: Unit) -> NodeId {
        let qualified = self.qualify(name);
        self.meta[id.index()] = Some(SignalMeta {
            name: qualified,
            unit,
        });
        self.units[id.index()] = unit;
        id
    }

    // ---- sources -------------------------------------------------------

    /// Creates an external input signal.
    ///
    /// # Panics
    /// Panics if `width` is 0 or exceeds [`MAX_WIDTH`].
    pub fn input(&mut self, width: u8, name: &str, unit: Unit) -> NodeId {
        assert!(
            (1..=MAX_WIDTH).contains(&width),
            "input width {width} out of range"
        );
        let id = self.push(Node {
            op: Op::Input,
            width,
        });
        self.name(id, name, unit)
    }

    /// Creates a constant node.
    ///
    /// # Panics
    /// Panics if `value` does not fit in `width` bits or if the width is
    /// out of range.
    pub fn constant(&mut self, value: u64, width: u8) -> NodeId {
        assert!(
            (1..=MAX_WIDTH).contains(&width),
            "const width {width} out of range"
        );
        assert!(
            value & !mask(width) == 0,
            "constant {value:#x} does not fit in {width} bits"
        );
        self.push(Node {
            op: Op::Const(value),
            width,
        })
    }

    /// Creates a 1-bit constant 0.
    pub fn zero(&mut self) -> NodeId {
        self.constant(0, 1)
    }

    /// Creates a 1-bit constant 1.
    pub fn one(&mut self) -> NodeId {
        self.constant(1, 1)
    }

    // ---- sequential ----------------------------------------------------

    /// Creates a register bank of `width` bits with reset value `init`,
    /// clocked by `clock`, named immediately.
    ///
    /// The next-state input must be provided later with
    /// [`connect`](NetlistBuilder::connect).
    ///
    /// # Panics
    /// Panics if `init` does not fit in `width` bits, the width is out of
    /// range, or `clock` does not exist.
    pub fn reg(&mut self, width: u8, init: u64, clock: ClockId, name: &str, unit: Unit) -> NodeId {
        assert!(
            (1..=MAX_WIDTH).contains(&width),
            "reg width {width} out of range"
        );
        assert!(
            init & !mask(width) == 0,
            "reg init {init:#x} does not fit in {width} bits"
        );
        assert!(
            clock.index() < self.clock_nodes.len(),
            "unknown clock domain {clock:?}"
        );
        let id = self.push(Node {
            op: Op::Reg {
                next: None,
                init,
                clock,
            },
            width,
        });
        self.name(id, name, unit)
    }

    /// Connects a register's next-state input.
    ///
    /// # Errors
    /// Returns an error if `reg` is not a register, is already connected,
    /// or the widths differ. (Returned rather than panicking so large
    /// generated designs can surface wiring mistakes gracefully; most
    /// callers simply `unwrap`.)
    pub fn try_connect(&mut self, reg: NodeId, next: NodeId) -> Result<(), RtlError> {
        let next_width = self.check(next).width;
        let node = &mut self.nodes[reg.index()];
        match &mut node.op {
            Op::Reg { next: slot, .. } => {
                if slot.is_some() {
                    return Err(RtlError::DoubleConnect { node: reg });
                }
                if node.width != next_width {
                    return Err(RtlError::WidthMismatch {
                        node: reg,
                        expected: node.width,
                        found: next_width,
                    });
                }
                *slot = Some(next);
                self.connected[reg.index()] = true;
                Ok(())
            }
            _ => Err(RtlError::NotAReg { node: reg }),
        }
    }

    /// Connects a register's next-state input.
    ///
    /// # Panics
    /// Panics on the error conditions of
    /// [`try_connect`](NetlistBuilder::try_connect).
    pub fn connect(&mut self, reg: NodeId, next: NodeId) {
        if let Err(e) = self.try_connect(reg, next) {
            panic!("connect failed: {e}");
        }
    }

    /// Convenience: a register that simply delays `input` by one cycle.
    pub fn delay(
        &mut self,
        input: NodeId,
        init: u64,
        clock: ClockId,
        name: &str,
        unit: Unit,
    ) -> NodeId {
        let w = self.check(input).width;
        let r = self.reg(w, init, clock, name, unit);
        self.connect(r, input);
        r
    }

    /// Creates a gated clock domain whose registers tick only on cycles
    /// where `enable` is 1.
    ///
    /// Also creates the gated-clock net itself as an observable 1-bit
    /// signal (named `name`), mirroring how clock-gate outputs are
    /// first-class RTL signals in the paper's proxy pool.
    pub fn clock_gate(&mut self, enable: NodeId, name: &str, unit: Unit) -> ClockId {
        assert_eq!(
            self.check(enable).width,
            1,
            "clock-gate enable must be 1 bit"
        );
        let clock = ClockId(self.clock_nodes.len() as u32);
        let id = self.push(Node {
            op: Op::GatedClock { enable },
            width: 1,
        });
        self.name(id, name, unit);
        self.clock_nodes.push(Some(id));
        clock
    }

    /// Creates a synchronous memory macro with `words` words of `width`
    /// bits, initialised to all zeros.
    ///
    /// # Panics
    /// Panics if `words` is 0 or `width` is out of range.
    pub fn memory(&mut self, words: u32, width: u8, name: &str, unit: Unit) -> MemId {
        assert!(words >= 1, "memory must have at least one word");
        assert!(
            (1..=MAX_WIDTH).contains(&width),
            "memory width {width} out of range"
        );
        let id = MemId(self.mems.len() as u32);
        self.mems.push(Memory {
            name: self.qualify(name),
            unit,
            words,
            width,
            init: Vec::new(),
            writes: Vec::new(),
        });
        id
    }

    /// Sets the initial contents of a memory (used for program images).
    ///
    /// # Panics
    /// Panics if `contents` is longer than the memory or a word does not
    /// fit the memory width.
    pub fn memory_init(&mut self, mem: MemId, contents: Vec<u64>) {
        let m = &mut self.mems[mem.index()];
        assert!(
            contents.len() <= m.words as usize,
            "init of {} words exceeds memory `{}` ({} words)",
            contents.len(),
            m.name,
            m.words
        );
        let wmask = mask(m.width);
        for (i, w) in contents.iter().enumerate() {
            assert!(
                w & !wmask == 0,
                "init word {i} ({w:#x}) does not fit in {} bits of `{}`",
                m.width,
                m.name
            );
        }
        m.init = contents;
    }

    /// Creates a synchronous read port on `mem`: the word addressed in
    /// cycle `i` appears on the returned node in cycle `i + 1` when `en`
    /// was 1, otherwise the node holds its value.
    pub fn mem_read(
        &mut self,
        mem: MemId,
        addr: NodeId,
        en: NodeId,
        name: &str,
        unit: Unit,
    ) -> NodeId {
        assert_eq!(self.check(en).width, 1, "mem read enable must be 1 bit");
        let width = self.mems[mem.index()].width;
        let id = self.push(Node {
            op: Op::MemRead { mem, addr, en },
            width,
        });
        self.name(id, name, unit)
    }

    /// Adds a write port to `mem`: when `en` is 1 at a cycle boundary,
    /// `data` is written to `addr`.
    ///
    /// # Panics
    /// Panics if `en` is not 1 bit or `data` width differs from the
    /// memory width.
    pub fn mem_write(&mut self, mem: MemId, en: NodeId, addr: NodeId, data: NodeId) {
        assert_eq!(self.check(en).width, 1, "mem write enable must be 1 bit");
        let m_width = self.mems[mem.index()].width;
        let d_width = self.check(data).width;
        assert!(
            m_width == d_width,
            "mem write data width {d_width} != memory width {m_width}"
        );
        self.mems[mem.index()]
            .writes
            .push(WritePort { en, addr, data });
    }

    // ---- bitwise / arithmetic -----------------------------------------

    /// Bitwise NOT.
    pub fn not(&mut self, a: NodeId) -> NodeId {
        let width = self.check(a).width;
        self.push(Node {
            op: Op::Not(a),
            width,
        })
    }

    /// Bitwise AND. Operands must have equal width.
    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let width = self.same_width(a, b, "and");
        self.push(Node {
            op: Op::And(a, b),
            width,
        })
    }

    /// Bitwise OR. Operands must have equal width.
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let width = self.same_width(a, b, "or");
        self.push(Node {
            op: Op::Or(a, b),
            width,
        })
    }

    /// Bitwise XOR. Operands must have equal width.
    pub fn xor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let width = self.same_width(a, b, "xor");
        self.push(Node {
            op: Op::Xor(a, b),
            width,
        })
    }

    /// Wrapping addition. Operands must have equal width.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let width = self.same_width(a, b, "add");
        self.push(Node {
            op: Op::Add(a, b),
            width,
        })
    }

    /// Wrapping subtraction. Operands must have equal width.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let width = self.same_width(a, b, "sub");
        self.push(Node {
            op: Op::Sub(a, b),
            width,
        })
    }

    /// Wrapping multiplication. Operands must have equal width.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let width = self.same_width(a, b, "mul");
        self.push(Node {
            op: Op::Mul(a, b),
            width,
        })
    }

    /// Unsigned division (division by zero yields all-ones). Operands
    /// must have equal width.
    pub fn udiv(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let width = self.same_width(a, b, "udiv");
        self.push(Node {
            op: Op::Udiv(a, b),
            width,
        })
    }

    /// Equality comparison; result is 1 bit.
    pub fn eq(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.same_width(a, b, "eq");
        self.push(Node {
            op: Op::Eq(a, b),
            width: 1,
        })
    }

    /// Inequality comparison; result is 1 bit.
    pub fn ne(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let e = self.eq(a, b);
        self.not(e)
    }

    /// Unsigned less-than; result is 1 bit.
    pub fn ult(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.same_width(a, b, "ult");
        self.push(Node {
            op: Op::Ult(a, b),
            width: 1,
        })
    }

    /// Logical shift left by a dynamic amount. Result has `a`'s width.
    pub fn shl(&mut self, a: NodeId, amount: NodeId) -> NodeId {
        let width = self.check(a).width;
        self.push(Node {
            op: Op::Shl(a, amount),
            width,
        })
    }

    /// Logical shift right by a dynamic amount. Result has `a`'s width.
    pub fn shr(&mut self, a: NodeId, amount: NodeId) -> NodeId {
        let width = self.check(a).width;
        self.push(Node {
            op: Op::Shr(a, amount),
            width,
        })
    }

    /// 2:1 multiplexer `sel ? t : f`.
    ///
    /// # Panics
    /// Panics if `sel` is not 1 bit or `t`/`f` widths differ.
    pub fn mux(&mut self, sel: NodeId, t: NodeId, f: NodeId) -> NodeId {
        assert_eq!(self.check(sel).width, 1, "mux select must be 1 bit");
        let width = self.same_width(t, f, "mux");
        self.push(Node {
            op: Op::Mux { sel, t, f },
            width,
        })
    }

    // ---- structural ----------------------------------------------------

    /// Bit-slice `src[lo .. lo + width]`.
    ///
    /// # Panics
    /// Panics if the slice exceeds `src`'s width or `width` is 0.
    pub fn slice(&mut self, src: NodeId, lo: u8, width: u8) -> NodeId {
        let sw = self.check(src).width;
        assert!(width >= 1, "slice width must be at least 1");
        assert!(
            lo + width <= sw,
            "slice [{lo} .. {}] exceeds width {sw}",
            lo + width
        );
        if lo == 0 && width == sw {
            return src;
        }
        self.push(Node {
            op: Op::Slice { src, lo },
            width,
        })
    }

    /// Extracts a single bit.
    pub fn bit(&mut self, src: NodeId, index: u8) -> NodeId {
        self.slice(src, index, 1)
    }

    /// Concatenation `{hi, lo}`; `lo` occupies the least-significant bits.
    ///
    /// # Panics
    /// Panics if the combined width exceeds [`MAX_WIDTH`].
    pub fn concat(&mut self, hi: NodeId, lo: NodeId) -> NodeId {
        let width = self.check(hi).width + self.check(lo).width;
        assert!(
            width <= MAX_WIDTH,
            "concat width {width} exceeds {MAX_WIDTH}"
        );
        self.push(Node {
            op: Op::Concat { hi, lo },
            width,
        })
    }

    /// Zero-extends `a` to `width` bits (no-op if already that wide).
    ///
    /// # Panics
    /// Panics if `width` is smaller than `a`'s width.
    pub fn zext(&mut self, a: NodeId, width: u8) -> NodeId {
        let aw = self.check(a).width;
        assert!(width >= aw, "zext target {width} narrower than source {aw}");
        if width == aw {
            return a;
        }
        let pad = self.constant(0, width - aw);
        self.concat(pad, a)
    }

    /// Truncates `a` to its low `width` bits (no-op if already that narrow).
    pub fn trunc(&mut self, a: NodeId, width: u8) -> NodeId {
        self.slice(a, 0, width)
    }

    /// OR-reduction of all bits to 1 bit.
    pub fn reduce_or(&mut self, a: NodeId) -> NodeId {
        self.push(Node {
            op: Op::ReduceOr(a),
            width: 1,
        })
    }

    /// AND-reduction of all bits to 1 bit.
    pub fn reduce_and(&mut self, a: NodeId) -> NodeId {
        self.push(Node {
            op: Op::ReduceAnd(a),
            width: 1,
        })
    }

    /// XOR-reduction (parity) of all bits to 1 bit.
    pub fn reduce_xor(&mut self, a: NodeId) -> NodeId {
        self.push(Node {
            op: Op::ReduceXor(a),
            width: 1,
        })
    }

    /// N-way one-hot-indexed multiplexer over equally wide `choices`,
    /// built as a balanced mux tree over a binary `index`.
    ///
    /// Out-of-range indices select the last choice.
    ///
    /// # Panics
    /// Panics if `choices` is empty or widths differ.
    pub fn select(&mut self, index: NodeId, choices: &[NodeId]) -> NodeId {
        assert!(!choices.is_empty(), "select needs at least one choice");
        let mut level: Vec<NodeId> = choices.to_vec();
        let mut bit_idx = 0u8;
        let index_width = self.check(index).width;
        while level.len() > 1 {
            let sel = if bit_idx < index_width {
                self.bit(index, bit_idx)
            } else {
                self.zero()
            };
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            let mut i = 0;
            while i < level.len() {
                if i + 1 < level.len() {
                    let m = self.mux(sel, level[i + 1], level[i]);
                    next.push(m);
                } else {
                    next.push(level[i]);
                }
                i += 2;
            }
            level = next;
            bit_idx += 1;
        }
        level[0]
    }

    /// Finalizes the netlist.
    ///
    /// # Errors
    /// Returns an error if the design is empty, any register is left
    /// unconnected, or a memory port is malformed.
    pub fn build(self) -> Result<Netlist, RtlError> {
        apollo_telemetry::counter("rtl.netlists_built").inc();
        if self.nodes.is_empty() {
            return Err(RtlError::Empty);
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if let Op::Reg { next: None, .. } = node.op {
                return Err(RtlError::UnconnectedReg {
                    node: NodeId(i as u32),
                    name: self.meta[i].as_ref().map(|m| m.name.clone()),
                });
            }
        }
        for m in &self.mems {
            let addr_bits_needed = 32 - (m.words - 1).leading_zeros();
            let _ = addr_bits_needed; // addresses are wrapped at simulation time
            if m.width == 0 {
                return Err(RtlError::BadMemPort {
                    mem: m.name.clone(),
                    detail: "zero width".into(),
                });
            }
        }
        Ok(Netlist::from_parts(
            self.design_name,
            self.nodes,
            self.meta,
            self.mems,
            self.clock_nodes,
            self.units,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::CLOCK_ROOT;

    #[test]
    fn builds_simple_counter() {
        let mut b = NetlistBuilder::new("c");
        let r = b.reg(4, 0, CLOCK_ROOT, "r", Unit::Control);
        let one = b.constant(1, 4);
        let n = b.add(r, one);
        b.connect(r, n);
        let nl = b.build().unwrap();
        assert_eq!(nl.len(), 3);
        assert_eq!(nl.design_name(), "c");
    }

    #[test]
    fn unconnected_reg_is_an_error() {
        let mut b = NetlistBuilder::new("c");
        b.reg(4, 0, CLOCK_ROOT, "r", Unit::Control);
        match b.build() {
            Err(RtlError::UnconnectedReg { name, .. }) => {
                assert_eq!(name.as_deref(), Some("r"));
            }
            other => panic!("expected UnconnectedReg, got {other:?}"),
        }
    }

    #[test]
    fn double_connect_is_an_error() {
        let mut b = NetlistBuilder::new("c");
        let r = b.reg(4, 0, CLOCK_ROOT, "r", Unit::Control);
        let c = b.constant(0, 4);
        b.connect(r, c);
        assert_eq!(
            b.try_connect(r, c),
            Err(RtlError::DoubleConnect { node: r })
        );
    }

    #[test]
    fn width_mismatch_is_an_error() {
        let mut b = NetlistBuilder::new("c");
        let r = b.reg(4, 0, CLOCK_ROOT, "r", Unit::Control);
        let c = b.constant(0, 5);
        assert!(matches!(
            b.try_connect(r, c),
            Err(RtlError::WidthMismatch {
                expected: 4,
                found: 5,
                ..
            })
        ));
    }

    #[test]
    #[should_panic(expected = "operand widths differ")]
    fn add_width_mismatch_panics() {
        let mut b = NetlistBuilder::new("c");
        let a = b.constant(0, 4);
        let c = b.constant(0, 5);
        b.add(a, c);
    }

    #[test]
    fn scopes_qualify_names() {
        let mut b = NetlistBuilder::new("c");
        b.push_scope("alu0");
        let x = b.input(1, "busy", Unit::Alu);
        b.pop_scope();
        let nl = {
            let one = b.one();
            let r = b.reg(1, 0, CLOCK_ROOT, "r", Unit::Control);
            b.connect(r, one);
            b.build().unwrap()
        };
        assert_eq!(nl.meta(x).unwrap().name, "alu0/busy");
    }

    #[test]
    fn slice_full_width_is_identity() {
        let mut b = NetlistBuilder::new("c");
        let a = b.constant(3, 4);
        assert_eq!(b.slice(a, 0, 4), a);
        assert_ne!(b.slice(a, 0, 2), a);
    }

    #[test]
    fn select_builds_tree() {
        let mut b = NetlistBuilder::new("c");
        let idx = b.input(2, "idx", Unit::Control);
        let choices: Vec<_> = (0..4).map(|i| b.constant(i, 8)).collect();
        let out = b.select(idx, &choices);
        assert_eq!(b.width(out), 8);
    }

    #[test]
    fn zext_and_trunc() {
        let mut b = NetlistBuilder::new("c");
        let a = b.constant(3, 4);
        let z = b.zext(a, 8);
        assert_eq!(b.width(z), 8);
        assert_eq!(b.zext(a, 4), a);
        let t = b.trunc(z, 4);
        assert_eq!(b.width(t), 4);
    }
}
