//! Finalized netlist representation.

use crate::node::{ClockId, MemId, Node, NodeId, Op, SignalMeta, Unit};
use crate::stats::NetlistStats;

/// A memory write port: when `en` is 1 at the cycle boundary, `data` is
/// written to word `addr` (wrapped to the memory size).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WritePort {
    /// 1-bit write enable.
    pub en: NodeId,
    /// Write address.
    pub addr: NodeId,
    /// Write data (memory width).
    pub data: NodeId,
}

/// A synchronous memory macro (SRAM-like).
///
/// Its internal bit-cells are not RTL signals — as in a real design flow,
/// the macro is characterised by per-access energy — but its port nets
/// (address, data, enables) are ordinary nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Memory {
    /// Hierarchical name of the macro.
    pub name: String,
    /// Functional unit the macro belongs to.
    pub unit: Unit,
    /// Number of words.
    pub words: u32,
    /// Word width in bits.
    pub width: u8,
    /// Initial contents (missing words are zero).
    pub init: Vec<u64>,
    /// Write ports.
    pub writes: Vec<WritePort>,
}

/// A validated RTL design: nodes in evaluation order, signal metadata,
/// memories and clock domains.
///
/// Produced by [`crate::NetlistBuilder::build`]; immutable afterwards.
#[derive(Clone, Debug)]
pub struct Netlist {
    design_name: String,
    nodes: Vec<Node>,
    meta: Vec<Option<SignalMeta>>,
    mems: Vec<Memory>,
    clock_nodes: Vec<Option<NodeId>>,
    fanout: Vec<u32>,
    units: Vec<Unit>,
    /// Starting bit offset of each node in the flattened signal-bit space,
    /// plus a final total entry.
    bit_offsets: Vec<u32>,
    /// Topological level of each node in the combinational graph (see
    /// [`Netlist::level`]).
    levels: Vec<u32>,
    n_levels: u32,
}

impl Netlist {
    pub(crate) fn from_parts(
        design_name: String,
        nodes: Vec<Node>,
        meta: Vec<Option<SignalMeta>>,
        mems: Vec<Memory>,
        clock_nodes: Vec<Option<NodeId>>,
        units: Vec<Unit>,
    ) -> Self {
        let mut fanout = vec![0u32; nodes.len()];
        for node in &nodes {
            node.for_each_operand(|op| fanout[op.index()] += 1);
        }
        for m in &mems {
            for w in &m.writes {
                fanout[w.en.index()] += 1;
                fanout[w.addr.index()] += 1;
                fanout[w.data.index()] += 1;
            }
        }
        let mut bit_offsets = Vec::with_capacity(nodes.len() + 1);
        let mut off = 0u32;
        for n in &nodes {
            bit_offsets.push(off);
            off += n.width as u32;
        }
        bit_offsets.push(off);
        // Topological levels of the within-cycle combinational graph.
        // Sequential nodes (registers, memory read ports) and primary
        // inputs/constants hold their value at the start of evaluation and
        // sit at level 0; every combinational node sits one level above
        // its deepest operand. `Reg.next` is a cycle-boundary edge, not a
        // combinational one, so it does not contribute. Nodes are in
        // creation order with operands preceding their readers, so one
        // forward pass suffices.
        let mut levels = vec![0u32; nodes.len()];
        let mut n_levels = 1u32;
        for (i, node) in nodes.iter().enumerate() {
            let level = match node.op {
                Op::Input | Op::Const(_) | Op::Reg { .. } | Op::MemRead { .. } => 0,
                _ => {
                    let mut max = 0u32;
                    node.for_each_operand(|op| max = max.max(levels[op.index()]));
                    max + 1
                }
            };
            levels[i] = level;
            n_levels = n_levels.max(level + 1);
        }
        Netlist {
            design_name,
            nodes,
            meta,
            mems,
            clock_nodes,
            fanout,
            units,
            bit_offsets,
            levels,
            n_levels,
        }
    }

    /// The design's name.
    pub fn design_name(&self) -> &str {
        &self.design_name
    }

    /// Number of nodes (RTL signals).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the netlist has no nodes (never true for built
    /// netlists).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total number of signal *bits* — the paper's `M`.
    pub fn signal_bits(&self) -> usize {
        *self.bit_offsets.last().unwrap() as usize
    }

    /// The nodes in evaluation (creation) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The node with the given id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Metadata for a node, if it was named.
    pub fn meta(&self, id: NodeId) -> Option<&SignalMeta> {
        self.meta[id.index()].as_ref()
    }

    /// A display name for any node: its given name, or `_t<i>`.
    pub fn display_name(&self, id: NodeId) -> String {
        match self.meta(id) {
            Some(m) => m.name.clone(),
            None => format!("_t{}", id.index()),
        }
    }

    /// The unit tag of a node: from its name if named, otherwise the
    /// ambient unit that was active in the builder when it was created.
    pub fn unit(&self, id: NodeId) -> Unit {
        self.units[id.index()]
    }

    /// All memory macros.
    pub fn memories(&self) -> &[Memory] {
        &self.mems
    }

    /// A memory macro by id.
    pub fn memory(&self, id: MemId) -> &Memory {
        &self.mems[id.index()]
    }

    /// Number of clock domains, including the root domain.
    pub fn clock_domains(&self) -> usize {
        self.clock_nodes.len()
    }

    /// The gated-clock signal node of a domain (`None` for the root).
    pub fn clock_node(&self, clock: ClockId) -> Option<NodeId> {
        self.clock_nodes[clock.index()]
    }

    /// Fanout (number of readers) of a node.
    pub fn fanout(&self, id: NodeId) -> u32 {
        self.fanout[id.index()]
    }

    /// Bit offset of node `id` in the flattened `M`-bit signal space.
    pub fn bit_offset(&self, id: NodeId) -> usize {
        self.bit_offsets[id.index()] as usize
    }

    /// Maps a flat bit index back to `(node, bit-within-node)`.
    ///
    /// # Panics
    /// Panics if `bit` is out of range.
    pub fn bit_owner(&self, bit: usize) -> (NodeId, u8) {
        assert!(bit < self.signal_bits(), "bit {bit} out of range");
        let bit = bit as u32;
        let idx = match self.bit_offsets.binary_search(&bit) {
            Ok(i) => {
                // `bit_offsets` ends with the total; an exact match at the
                // last entry cannot happen because bit < total.
                // Zero-width nodes do not exist, so an exact match is the
                // start of node i, except consecutive equal offsets are
                // impossible for the same reason.
                i
            }
            Err(i) => i - 1,
        };
        // Skip the sentinel if binary_search landed past real nodes.
        let idx = idx.min(self.nodes.len() - 1);
        let node = NodeId::from_index(idx);
        (node, (bit - self.bit_offsets[idx]) as u8)
    }

    /// Looks up a named signal by its hierarchical name — the hook
    /// fault-injection plans use to resolve stuck-at sites. Linear in
    /// the node count; resolve once and cache the [`NodeId`].
    pub fn find_signal(&self, name: &str) -> Option<NodeId> {
        self.named_signals()
            .find(|(_, m)| m.name == name)
            .map(|(id, _)| id)
    }

    /// Iterates over all named signals.
    pub fn named_signals(&self) -> impl Iterator<Item = (NodeId, &SignalMeta)> + '_ {
        self.meta
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.as_ref().map(|m| (NodeId::from_index(i), m)))
    }

    /// Topological level of a node within one cycle's combinational
    /// evaluation: level 0 holds state and inputs (registers, memory read
    /// ports, primary inputs, constants); a combinational node is one
    /// level above its deepest operand. All operands of a node at level
    /// `l > 0` have levels `< l`, so nodes of equal level never depend on
    /// each other — the property the parallel simulator schedules on.
    pub fn level(&self, id: NodeId) -> u32 {
        self.levels[id.index()]
    }

    /// Number of distinct combinational levels (logic depth + 1).
    pub fn n_levels(&self) -> usize {
        self.n_levels as usize
    }

    /// Computes summary statistics for the design.
    pub fn stats(&self) -> NetlistStats {
        NetlistStats::compute(self)
    }

    /// Iterates over register nodes together with their clock domains.
    pub fn registers(&self) -> impl Iterator<Item = (NodeId, ClockId)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| match n.op {
                Op::Reg { clock, .. } => Some((NodeId::from_index(i), clock)),
                _ => None,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::node::{Unit, CLOCK_ROOT};

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new("s");
        let r = b.reg(4, 0, CLOCK_ROOT, "r", Unit::Alu);
        let one = b.constant(1, 4);
        let sum = b.add(r, one);
        b.name(sum, "sum", Unit::Alu);
        b.connect(r, sum);
        b.build().unwrap()
    }

    #[test]
    fn bit_offsets_and_owner() {
        let nl = sample();
        assert_eq!(nl.signal_bits(), 12);
        assert_eq!(nl.bit_owner(0), (NodeId::from_index(0), 0));
        assert_eq!(nl.bit_owner(3), (NodeId::from_index(0), 3));
        assert_eq!(nl.bit_owner(4), (NodeId::from_index(1), 0));
        assert_eq!(nl.bit_owner(11), (NodeId::from_index(2), 3));
    }

    #[test]
    fn fanout_counts_readers() {
        let nl = sample();
        // reg feeds add; const feeds add; add feeds reg.next
        assert_eq!(nl.fanout(NodeId::from_index(0)), 1);
        assert_eq!(nl.fanout(NodeId::from_index(1)), 1);
        assert_eq!(nl.fanout(NodeId::from_index(2)), 1);
    }

    #[test]
    fn named_signals_iterates() {
        let nl = sample();
        let names: Vec<_> = nl.named_signals().map(|(_, m)| m.name.as_str()).collect();
        assert_eq!(names, vec!["r", "sum"]);
    }

    #[test]
    fn display_name_for_unnamed() {
        let nl = sample();
        assert_eq!(nl.display_name(NodeId::from_index(1)), "_t1");
    }

    #[test]
    fn levels_follow_combinational_depth() {
        let mut b = NetlistBuilder::new("lv");
        let r = b.reg(4, 0, CLOCK_ROOT, "r", Unit::Alu); // level 0
        let one = b.constant(1, 4); // level 0
        let sum = b.add(r, one); // level 1
        let twice = b.add(sum, sum); // level 2
        b.connect(r, twice); // cycle-boundary edge: no level effect
        let nl = b.build().unwrap();
        assert_eq!(nl.level(r), 0);
        assert_eq!(nl.level(one), 0);
        assert_eq!(nl.level(sum), 1);
        assert_eq!(nl.level(twice), 2);
        assert_eq!(nl.n_levels(), 3);
        // Equal-level nodes never feed each other.
        for (i, node) in nl.nodes().iter().enumerate() {
            let lvl = nl.level(NodeId::from_index(i));
            if let crate::node::Op::Reg { .. } = node.op {
                continue;
            }
            node.for_each_operand(|op| assert!(nl.level(op) < lvl || lvl == 0));
        }
    }
}
