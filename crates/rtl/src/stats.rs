//! Design summary statistics.

use crate::netlist::Netlist;
use crate::node::{Op, Unit};
use std::collections::BTreeMap;
use std::fmt;

/// Summary statistics of a netlist, for reports and sizing checks.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct NetlistStats {
    /// Total node count.
    pub nodes: usize,
    /// Total signal bits (the paper's `M`).
    pub signal_bits: usize,
    /// Named signal count.
    pub named_signals: usize,
    /// Register node count.
    pub registers: usize,
    /// Register bits.
    pub register_bits: usize,
    /// Clock domains including root.
    pub clock_domains: usize,
    /// Memory macro count.
    pub memories: usize,
    /// Total memory bits across macros.
    pub memory_bits: usize,
    /// Signal bits per functional unit.
    pub bits_per_unit: BTreeMap<String, usize>,
    /// Combinational levels (logic depth + 1); parallel simulation
    /// synchronises once per level, so shallow-and-wide designs scale
    /// best.
    pub comb_levels: usize,
    /// Mean node count per combinational level (available width for the
    /// parallel scheduler).
    pub mean_level_width: f64,
}

impl NetlistStats {
    pub(crate) fn compute(netlist: &Netlist) -> Self {
        let mut registers = 0;
        let mut register_bits = 0;
        let mut named_signals = 0;
        let mut bits_per_unit: BTreeMap<String, usize> = BTreeMap::new();
        for (i, node) in netlist.nodes().iter().enumerate() {
            let id = crate::node::NodeId::from_index(i);
            if let Op::Reg { .. } = node.op {
                registers += 1;
                register_bits += node.width as usize;
            }
            if netlist.meta(id).is_some() {
                named_signals += 1;
            }
            let unit: Unit = netlist.unit(id);
            *bits_per_unit.entry(unit.label().to_owned()).or_insert(0) += node.width as usize;
        }
        NetlistStats {
            nodes: netlist.len(),
            signal_bits: netlist.signal_bits(),
            named_signals,
            registers,
            register_bits,
            clock_domains: netlist.clock_domains(),
            memories: netlist.memories().len(),
            memory_bits: netlist
                .memories()
                .iter()
                .map(|m| m.words as usize * m.width as usize)
                .sum(),
            bits_per_unit,
            comb_levels: netlist.n_levels(),
            mean_level_width: netlist.len() as f64 / netlist.n_levels() as f64,
        }
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "nodes={} signal_bits={} named={} regs={} ({} bits) clocks={} mems={} ({} bits) levels={} (mean width {:.1})",
            self.nodes,
            self.signal_bits,
            self.named_signals,
            self.registers,
            self.register_bits,
            self.clock_domains,
            self.memories,
            self.memory_bits,
            self.comb_levels,
            self.mean_level_width
        )?;
        for (unit, bits) in &self.bits_per_unit {
            writeln!(f, "  {unit:<18} {bits} bits")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::NetlistBuilder;
    use crate::node::{Unit, CLOCK_ROOT};

    #[test]
    fn stats_count_registers_and_units() {
        let mut b = NetlistBuilder::new("s");
        let r = b.reg(8, 0, CLOCK_ROOT, "r", Unit::Alu);
        let c = b.constant(1, 8);
        let s = b.add(r, c);
        b.name(s, "sum", Unit::Vector);
        b.connect(r, s);
        let nl = b.build().unwrap();
        let st = nl.stats();
        assert_eq!(st.registers, 1);
        assert_eq!(st.register_bits, 8);
        assert_eq!(st.signal_bits, 24);
        assert_eq!(st.named_signals, 2);
        assert_eq!(st.bits_per_unit["ALU"], 8);
        assert_eq!(st.bits_per_unit["Vector Execution"], 8);
        // unnamed constant falls into Control
        assert_eq!(st.bits_per_unit["Control"], 8);
        let display = st.to_string();
        assert!(display.contains("signal_bits=24"));
    }
}
