//! Core identifiers and node definitions for the RTL graph.

use std::fmt;

/// Maximum width, in bits, of any RTL signal node.
///
/// Wider architectural values (e.g. 128-bit vector registers) are modeled
/// as several nodes, exactly as synthesis would split them across
/// physical bit-slices.
pub const MAX_WIDTH: u8 = 64;

/// Identifier of a node (an RTL signal) inside a [`crate::Netlist`].
#[derive(
    Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Returns the raw index of this node in netlist evaluation order.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a `NodeId` from a raw index.
    ///
    /// Only meaningful for indices obtained from [`NodeId::index`] on the
    /// same netlist.
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a clock domain.
///
/// Domain 0 ([`CLOCK_ROOT`]) is the free-running root clock; other
/// domains are created by [`crate::NetlistBuilder::clock_gate`] and tick
/// only on cycles where their enable evaluates to 1.
#[derive(
    Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct ClockId(pub(crate) u32);

/// The always-on root clock domain.
pub const CLOCK_ROOT: ClockId = ClockId(0);

impl ClockId {
    /// Returns the raw index of this clock domain.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a `ClockId` from a raw index.
    ///
    /// Only meaningful for indices below
    /// [`crate::Netlist::clock_domains`] of the same netlist.
    pub fn from_index(index: usize) -> Self {
        ClockId(index as u32)
    }
}

impl fmt::Debug for ClockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "clk{}", self.0)
    }
}

/// Identifier of a synchronous memory macro.
#[derive(
    Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct MemId(pub(crate) u32);

impl MemId {
    /// Returns the raw index of this memory.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for MemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mem{}", self.0)
    }
}

/// Functional unit a signal belongs to.
///
/// Mirrors the categorisation used in the paper's Figure 15(a), where
/// extracted power proxies are attributed to CPU functional units and the
/// clock network.
#[derive(
    Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, serde::Serialize, serde::Deserialize,
)]
pub enum Unit {
    /// Instruction fetch, branch prediction and the L1 I-cache interface.
    Fetch,
    /// Instruction decode.
    Decode,
    /// Issue queue / scoreboard / dispatch.
    Issue,
    /// Scalar integer ALUs.
    Alu,
    /// Iterative multiplier / divider.
    Multiplier,
    /// SIMD / vector execution.
    Vector,
    /// Load/store unit and the L1 D-cache interface.
    LoadStore,
    /// L2 cache and bus interface.
    L2,
    /// Architectural register files.
    RegFile,
    /// Clock distribution and clock-gating control.
    ClockTree,
    /// Miscellaneous control (reset, throttling, top-level glue).
    Control,
    /// On-chip power meter circuitry (used when an OPM is co-synthesized).
    Opm,
}

impl Unit {
    /// All units, in a stable display order.
    pub const ALL: [Unit; 12] = [
        Unit::Fetch,
        Unit::Decode,
        Unit::Issue,
        Unit::Alu,
        Unit::Multiplier,
        Unit::Vector,
        Unit::LoadStore,
        Unit::L2,
        Unit::RegFile,
        Unit::ClockTree,
        Unit::Control,
        Unit::Opm,
    ];

    /// A short human-readable label, matching the paper's Figure 15(a)
    /// vocabulary where applicable.
    pub fn label(self) -> &'static str {
        match self {
            Unit::Fetch => "Fetch",
            Unit::Decode => "Decode",
            Unit::Issue => "Issue",
            Unit::Alu => "ALU",
            Unit::Multiplier => "Multiplier",
            Unit::Vector => "Vector Execution",
            Unit::LoadStore => "Load Store",
            Unit::L2 => "L2",
            Unit::RegFile => "Register File",
            Unit::ClockTree => "Clock Tree",
            Unit::Control => "Control",
            Unit::Opm => "OPM",
        }
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Metadata attached to a named signal.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SignalMeta {
    /// Hierarchical signal name, e.g. `"issue/grant_vec"`.
    pub name: String,
    /// Functional unit the signal belongs to.
    pub unit: Unit,
}

/// Operation performed by a node.
///
/// All arithmetic is unsigned and wraps at the node width. Comparison
/// and reduction nodes are 1 bit wide.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// External input, driven by the simulation harness each cycle.
    Input,
    /// Constant value.
    Const(u64),
    /// Bitwise NOT.
    Not(NodeId),
    /// Bitwise AND.
    And(NodeId, NodeId),
    /// Bitwise OR.
    Or(NodeId, NodeId),
    /// Bitwise XOR.
    Xor(NodeId, NodeId),
    /// Wrapping addition.
    Add(NodeId, NodeId),
    /// Wrapping subtraction.
    Sub(NodeId, NodeId),
    /// Wrapping multiplication.
    Mul(NodeId, NodeId),
    /// Unsigned division; division by zero yields all-ones.
    Udiv(NodeId, NodeId),
    /// Equality comparison (1-bit result).
    Eq(NodeId, NodeId),
    /// Unsigned less-than (1-bit result).
    Ult(NodeId, NodeId),
    /// Logical shift left by a dynamic amount.
    Shl(NodeId, NodeId),
    /// Logical shift right by a dynamic amount.
    Shr(NodeId, NodeId),
    /// 2:1 multiplexer: `sel ? t : f`.
    Mux {
        /// 1-bit select.
        sel: NodeId,
        /// Value when `sel == 1`.
        t: NodeId,
        /// Value when `sel == 0`.
        f: NodeId,
    },
    /// Bit-slice `src[lo .. lo+width]`.
    Slice {
        /// Source node.
        src: NodeId,
        /// Least-significant bit of the slice.
        lo: u8,
    },
    /// Concatenation `{hi, lo}` (lo in the least-significant bits).
    Concat {
        /// Most-significant part.
        hi: NodeId,
        /// Least-significant part.
        lo: NodeId,
    },
    /// OR-reduction to 1 bit.
    ReduceOr(NodeId),
    /// AND-reduction to 1 bit.
    ReduceAnd(NodeId),
    /// XOR-reduction (parity) to 1 bit.
    ReduceXor(NodeId),
    /// D flip-flop bank. Captures `next` on each tick of `clock`.
    Reg {
        /// Next-state input; connected after creation via
        /// [`crate::NetlistBuilder::connect`].
        next: Option<NodeId>,
        /// Reset / power-on value.
        init: u64,
        /// Clock domain driving this register.
        clock: ClockId,
    },
    /// The gated clock net of a clock domain (1 bit).
    ///
    /// Physically this net toggles twice per cycle while enabled; its
    /// per-cycle toggle feature is the latched enable, exactly as the
    /// paper's OPM interface traces gated clocks via their enable.
    GatedClock {
        /// Clock-gate enable condition.
        enable: NodeId,
    },
    /// Synchronous memory read port: data for the address presented in
    /// cycle `i` appears on this node in cycle `i + 1` (SRAM-like).
    MemRead {
        /// The memory macro.
        mem: MemId,
        /// Read address.
        addr: NodeId,
        /// Read enable (1 bit). When 0 the port holds its previous value.
        en: NodeId,
    },
}

/// A single RTL signal node: an operation plus a width.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Node {
    /// The operation computing this node's value.
    pub op: Op,
    /// Width in bits (1 ..= [`MAX_WIDTH`]).
    pub width: u8,
}

impl Node {
    /// Returns `true` for sequential nodes (registers, memory read ports,
    /// gated clocks) whose value is part of simulator state.
    pub fn is_sequential(&self) -> bool {
        matches!(
            self.op,
            Op::Reg { .. } | Op::MemRead { .. } | Op::GatedClock { .. }
        )
    }

    /// Returns `true` if this node never toggles (constants).
    pub fn is_const(&self) -> bool {
        matches!(self.op, Op::Const(_))
    }

    /// Visits every node referenced by this node's operation.
    pub fn for_each_operand(&self, mut f: impl FnMut(NodeId)) {
        match self.op {
            Op::Input | Op::Const(_) => {}
            Op::Not(a) | Op::ReduceOr(a) | Op::ReduceAnd(a) | Op::ReduceXor(a) => f(a),
            Op::Slice { src, .. } => f(src),
            Op::And(a, b)
            | Op::Or(a, b)
            | Op::Xor(a, b)
            | Op::Add(a, b)
            | Op::Sub(a, b)
            | Op::Mul(a, b)
            | Op::Udiv(a, b)
            | Op::Eq(a, b)
            | Op::Ult(a, b)
            | Op::Shl(a, b)
            | Op::Shr(a, b)
            | Op::Concat { hi: a, lo: b } => {
                f(a);
                f(b);
            }
            Op::Mux { sel, t, f: fv } => {
                f(sel);
                f(t);
                f(fv);
            }
            Op::Reg { next, .. } => {
                if let Some(n) = next {
                    f(n);
                }
            }
            Op::GatedClock { enable } => f(enable),
            Op::MemRead { addr, en, .. } => {
                f(addr);
                f(en);
            }
        }
    }
}

/// Returns a mask with the `width` low bits set.
pub(crate) fn mask(width: u8) -> u64 {
    debug_assert!((1..=MAX_WIDTH).contains(&width));
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_widths() {
        assert_eq!(mask(1), 1);
        assert_eq!(mask(8), 0xff);
        assert_eq!(mask(64), u64::MAX);
    }

    #[test]
    fn node_sequential_classification() {
        let reg = Node {
            op: Op::Reg {
                next: None,
                init: 0,
                clock: CLOCK_ROOT,
            },
            width: 4,
        };
        assert!(reg.is_sequential());
        let c = Node {
            op: Op::Const(3),
            width: 4,
        };
        assert!(!c.is_sequential());
        assert!(c.is_const());
    }

    #[test]
    fn operand_visit_counts() {
        let mux = Node {
            op: Op::Mux {
                sel: NodeId(0),
                t: NodeId(1),
                f: NodeId(2),
            },
            width: 4,
        };
        let mut n = 0;
        mux.for_each_operand(|_| n += 1);
        assert_eq!(n, 3);
    }

    #[test]
    fn unit_labels_are_unique() {
        let mut labels: Vec<&str> = Unit::ALL.iter().map(|u| u.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Unit::ALL.len());
    }
}
