//! Error type for netlist construction and validation.

use crate::node::NodeId;
use std::fmt;

/// Errors reported by [`crate::NetlistBuilder::build`] and other fallible
/// netlist operations.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum RtlError {
    /// A register was created but never given a next-state input with
    /// [`crate::NetlistBuilder::connect`].
    UnconnectedReg {
        /// The offending register node.
        node: NodeId,
        /// The register's name, if it was named.
        name: Option<String>,
    },
    /// `connect` was called twice for the same register.
    DoubleConnect {
        /// The offending register node.
        node: NodeId,
    },
    /// `connect` was called on a node that is not a register.
    NotAReg {
        /// The offending node.
        node: NodeId,
    },
    /// Widths of a register and its next-state input differ.
    WidthMismatch {
        /// The register node.
        node: NodeId,
        /// The register's width.
        expected: u8,
        /// The next-state input's width.
        found: u8,
    },
    /// A memory read or write port address is too narrow or too wide for
    /// the memory's word count.
    BadMemPort {
        /// The memory name.
        mem: String,
        /// Description of the problem.
        detail: String,
    },
    /// The netlist is empty.
    Empty,
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::UnconnectedReg { node, name } => match name {
                Some(n) => write!(f, "register {node:?} (`{n}`) has no next-state connection"),
                None => write!(f, "register {node:?} has no next-state connection"),
            },
            RtlError::DoubleConnect { node } => {
                write!(f, "register {node:?} connected more than once")
            }
            RtlError::NotAReg { node } => write!(f, "node {node:?} is not a register"),
            RtlError::WidthMismatch {
                node,
                expected,
                found,
            } => write!(
                f,
                "register {node:?} has width {expected} but its next-state input has width {found}"
            ),
            RtlError::BadMemPort { mem, detail } => {
                write!(f, "bad port on memory `{mem}`: {detail}")
            }
            RtlError::Empty => write!(f, "netlist contains no nodes"),
        }
    }
}

impl std::error::Error for RtlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let e = RtlError::NotAReg {
            node: NodeId::from_index(7),
        };
        let s = e.to_string();
        assert!(!s.is_empty());
        assert!(s.starts_with("node"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RtlError>();
    }
}
