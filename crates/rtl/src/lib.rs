//! # apollo-rtl
//!
//! A register-transfer-level (RTL) hardware description eDSL and netlist
//! representation, used as the design substrate for the APOLLO power
//! modeling reproduction.
//!
//! A design is a flat graph of bit-vector *nodes* (1–64 bits wide). Every
//! node is an RTL *signal*: it has a width, an optional hierarchical name,
//! and a functional-[`Unit`] tag. Combinational nodes may only reference
//! nodes created before them, so the combinational graph is acyclic by
//! construction and creation order is a valid evaluation order. Sequential
//! elements — [registers](NetlistBuilder::reg), [synchronous
//! memories](NetlistBuilder::memory) and [gated
//! clocks](NetlistBuilder::clock_gate) — close feedback loops.
//!
//! The netlist also carries synthetic *back-annotated parasitics*
//! ([`CapAnnotation`]): per-net capacitance derived from width, fanout and
//! unit, which the `apollo-sim` crate uses to compute ground-truth
//! switching power in the spirit of a commercial signoff flow.
//!
//! ## Example
//!
//! ```
//! use apollo_rtl::{NetlistBuilder, Unit, CLOCK_ROOT};
//!
//! let mut b = NetlistBuilder::new("counter");
//! let en = b.input(1, "en", Unit::Control);
//! let count = b.reg(8, 0, CLOCK_ROOT, "count", Unit::Control);
//! let one = b.constant(1, 8);
//! let next = b.add(count, one);
//! let next = b.mux(en, next, count);
//! b.connect(count, next);
//! let netlist = b.build()?;
//! assert_eq!(netlist.signal_bits(), 1 + 8 + 8 + 8 + 8);
//! # Ok::<(), apollo_rtl::RtlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod cap;
mod error;
mod netlist;
mod node;
mod stats;

pub use builder::NetlistBuilder;
pub use cap::{CapAnnotation, CapModel};
pub use error::RtlError;
pub use netlist::{Memory, Netlist, WritePort};
pub use node::{ClockId, MemId, Node, NodeId, Op, SignalMeta, Unit, CLOCK_ROOT, MAX_WIDTH};
pub use stats::NetlistStats;
