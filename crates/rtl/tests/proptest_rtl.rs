//! Property-based tests: RTL operator semantics against u64 reference
//! arithmetic, via simulation of single-op netlists.

#![allow(clippy::needless_range_loop)]

use apollo_rtl::{CapModel, NetlistBuilder, NodeId, Unit, CLOCK_ROOT};
use apollo_sim::{PowerConfig, Simulator};
use proptest::prelude::*;

/// Builds a tiny netlist computing every binary op on two inputs and
/// returns the per-op output nodes.
struct OpHarness {
    netlist: apollo_rtl::Netlist,
    a: NodeId,
    b: NodeId,
    outs: Vec<(&'static str, NodeId)>,
}

fn op_harness(width: u8) -> OpHarness {
    let mut bld = NetlistBuilder::new("props");
    let a = bld.input(width, "a", Unit::Alu);
    let b = bld.input(width, "b", Unit::Alu);
    let outs = vec![
        ("and", bld.and(a, b)),
        ("or", bld.or(a, b)),
        ("xor", bld.xor(a, b)),
        ("add", bld.add(a, b)),
        ("sub", bld.sub(a, b)),
        ("mul", bld.mul(a, b)),
        ("udiv", bld.udiv(a, b)),
        ("not", bld.not(a)),
        ("eq", bld.eq(a, b)),
        ("ult", bld.ult(a, b)),
        ("shl", bld.shl(a, b)),
        ("shr", bld.shr(a, b)),
        ("ror", bld.reduce_or(a)),
        ("rand", bld.reduce_and(a)),
        ("rxor", bld.reduce_xor(a)),
    ];
    // keep at least one register so the netlist is a realistic design
    let r = bld.reg(width, 0, CLOCK_ROOT, "r", Unit::Alu);
    bld.connect(r, a);
    let netlist = bld.build().unwrap();
    OpHarness {
        netlist,
        a,
        b,
        outs,
    }
}

fn mask(width: u8) -> u64 {
    if width == 64 {
        u64::MAX
    } else {
        (1 << width) - 1
    }
}

fn reference(op: &str, a: u64, b: u64, width: u8) -> u64 {
    let m = mask(width);
    match op {
        "and" => a & b,
        "or" => a | b,
        "xor" => a ^ b,
        "add" => a.wrapping_add(b) & m,
        "sub" => a.wrapping_sub(b) & m,
        "mul" => a.wrapping_mul(b) & m,
        "udiv" => a.checked_div(b).unwrap_or(m),
        "not" => !a & m,
        "eq" => (a == b) as u64,
        "ult" => (a < b) as u64,
        "shl" => {
            if b >= width as u64 {
                0
            } else {
                (a << b) & m
            }
        }
        "shr" => {
            if b >= 64 {
                0
            } else {
                a >> b
            }
        }
        "ror" => (a != 0) as u64,
        "rand" => (a == m) as u64,
        "rxor" => (a.count_ones() as u64) & 1,
        _ => unreachable!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binary_ops_match_reference_w64(a in any::<u64>(), b in any::<u64>()) {
        check_ops(64, a, b);
    }

    #[test]
    fn binary_ops_match_reference_w13(a in 0u64..(1 << 13), b in 0u64..(1 << 13)) {
        check_ops(13, a, b);
    }

    #[test]
    fn binary_ops_match_reference_w1(a in 0u64..2, b in 0u64..2) {
        check_ops(1, a, b);
    }

    #[test]
    fn slice_concat_roundtrip(v in any::<u64>(), lo in 0u8..56, w in 1u8..8) {
        let mut bld = NetlistBuilder::new("sc");
        let input = bld.input(64, "v", Unit::Alu);
        let sl = bld.slice(input, lo, w);
        let hi_w = 64 - lo - w;
        let hi = bld.slice(input, lo + w, hi_w);
        let lo_part = if lo > 0 { Some(bld.slice(input, 0, lo)) } else { None };
        let upper = bld.concat(hi, sl);
        let rebuilt = match lo_part {
            Some(lp) => bld.concat(upper, lp),
            None => upper,
        };
        let r = bld.reg(1, 0, CLOCK_ROOT, "r", Unit::Alu);
        let one = bld.one();
        bld.connect(r, one);
        let netlist = bld.build().unwrap();
        let cap = CapModel::default().annotate(&netlist);
        let mut sim = Simulator::new(&netlist, &cap, PowerConfig::default());
        sim.set_input(input, v);
        sim.step();
        prop_assert_eq!(sim.value(sl), (v >> lo) & mask(w));
        prop_assert_eq!(sim.value(rebuilt), v);
    }

    #[test]
    fn select_matches_indexing(idx in 0u64..8, vals in prop::collection::vec(0u64..256, 8)) {
        let mut bld = NetlistBuilder::new("sel");
        let i = bld.input(3, "i", Unit::Control);
        let choices: Vec<NodeId> = vals.iter().map(|&v| bld.constant(v, 8)).collect();
        let out = bld.select(i, &choices);
        let r = bld.reg(1, 0, CLOCK_ROOT, "r", Unit::Alu);
        let one = bld.one();
        bld.connect(r, one);
        let netlist = bld.build().unwrap();
        let cap = CapModel::default().annotate(&netlist);
        let mut sim = Simulator::new(&netlist, &cap, PowerConfig::default());
        sim.set_input(i, idx);
        sim.step();
        prop_assert_eq!(sim.value(out), vals[idx as usize]);
    }

    #[test]
    fn bit_owner_is_inverse_of_offsets(widths in prop::collection::vec(1u8..64, 1..20)) {
        let mut bld = NetlistBuilder::new("bo");
        let mut nodes = Vec::new();
        for (k, &w) in widths.iter().enumerate() {
            nodes.push(bld.input(w, &format!("i{k}"), Unit::Alu));
        }
        let r = bld.reg(1, 0, CLOCK_ROOT, "r", Unit::Alu);
        let one = bld.one();
        bld.connect(r, one);
        let netlist = bld.build().unwrap();
        for &n in &nodes {
            let off = netlist.bit_offset(n);
            let w = netlist.node(n).width;
            for bit in 0..w {
                let (owner, sub) = netlist.bit_owner(off + bit as usize);
                prop_assert_eq!(owner, n);
                prop_assert_eq!(sub, bit);
            }
        }
    }
}

fn check_ops(width: u8, a: u64, b: u64) {
    let h = op_harness(width);
    let cap = CapModel::default().annotate(&h.netlist);
    let mut sim = Simulator::new(&h.netlist, &cap, PowerConfig::default());
    sim.set_input(h.a, a & mask(width));
    sim.set_input(h.b, b & mask(width));
    sim.step();
    for &(name, node) in &h.outs {
        let expect = reference(name, a & mask(width), b & mask(width), width);
        assert_eq!(
            sim.value(node),
            expect,
            "{name}({a:#x}, {b:#x}) at width {width}"
        );
    }
}
