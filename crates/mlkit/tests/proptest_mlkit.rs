//! Property-based tests for the regression and linear-algebra kit.

use apollo_mlkit::metrics;
use apollo_mlkit::{
    coordinate_descent, lambda_max, ols_ridge, BitMatrix, CdOptions, DenseDesign, Design, Matrix,
    Penalty,
};
use proptest::prelude::*;

fn small_f64() -> impl Strategy<Value = f64> {
    (-100i32..100).prop_map(|v| v as f64 / 10.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// BitMatrix column primitives agree with a dense shadow.
    #[test]
    fn bitmatrix_matches_dense(rows in 1usize..200, seed in any::<u64>()) {
        let cols = 5usize;
        let mut bm = BitMatrix::zeros(rows, cols);
        let mut dense = vec![0.0f64; rows * cols];
        let mut s = seed | 1;
        for r in 0..rows {
            for c in 0..cols {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                if s & 3 == 0 {
                    bm.set(r, c);
                    dense[c * rows + r] = 1.0;
                }
            }
        }
        let dd = DenseDesign::from_columns(rows, cols, dense);
        let v: Vec<f64> = (0..rows).map(|i| (i as f64 * 0.37).sin()).collect();
        for c in 0..cols {
            prop_assert!((bm.col_mean(c) - dd.col_mean(c)).abs() < 1e-12);
            prop_assert!((bm.col_std(c) - dd.col_std(c)).abs() < 1e-12);
            prop_assert!((bm.col_dot(c, &v) - dd.col_dot(c, &v)).abs() < 1e-9);
            let mut va = v.clone();
            let mut vb = v.clone();
            bm.col_axpy(c, 2.5, &mut va);
            dd.col_axpy(c, 2.5, &mut vb);
            for (x, y) in va.iter().zip(&vb) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }
    }

    /// Above λmax the fit is empty; the KKT conditions hold at any fit.
    #[test]
    fn lambda_max_is_tight(seed in any::<u64>()) {
        let n = 60;
        let p = 6;
        let mut s = seed | 1;
        let mut cols = vec![0.0; n * p];
        for v in cols.iter_mut() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *v = (s >> 11) as f64 / (1u64 << 53) as f64;
        }
        let x = DenseDesign::from_columns(n, p, cols);
        let y: Vec<f64> = (0..n).map(|i| 1.0 + x.value(i, 0) * 2.0 + x.value(i, 1)).collect();
        let lmax = lambda_max(&x, &y, true);
        prop_assume!(lmax > 1e-9);
        let above = coordinate_descent(
            &x, &y, Penalty::Lasso { lambda: lmax * 1.001 }, &CdOptions::default());
        prop_assert_eq!(above.n_selected(), 0);
        let below = coordinate_descent(
            &x, &y, Penalty::Lasso { lambda: lmax * 0.8 }, &CdOptions::default());
        prop_assert!(below.n_selected() >= 1);
    }

    /// MCP with huge γ coincides with Lasso (the penalty limit).
    #[test]
    fn mcp_limits_to_lasso(seed in any::<u64>()) {
        let n = 80;
        let p = 5;
        let mut s = seed | 1;
        let mut cols = vec![0.0; n * p];
        for v in cols.iter_mut() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *v = (s >> 11) as f64 / (1u64 << 53) as f64;
        }
        let x = DenseDesign::from_columns(n, p, cols);
        let y: Vec<f64> = (0..n).map(|i| 3.0 * x.value(i, 0) - 0.5 + x.value(i, 2)).collect();
        let lambda = 0.05;
        let lasso = coordinate_descent(&x, &y, Penalty::Lasso { lambda }, &CdOptions::default());
        let mcp = coordinate_descent(
            &x, &y, Penalty::Mcp { lambda, gamma: 1e9 }, &CdOptions::default());
        prop_assert_eq!(lasso.n_selected(), mcp.n_selected());
        for (a, b) in lasso.active.iter().zip(&mcp.active) {
            prop_assert_eq!(a.0, b.0);
            prop_assert!((a.1 - b.1).abs() < 1e-4 * (1.0 + a.1.abs()), "{} vs {}", a.1, b.1);
        }
    }

    /// Ridge with λ→0 on full-rank data reproduces the generating line.
    #[test]
    fn ridge_exact_recovery(w0 in small_f64(), w1 in small_f64(), b in small_f64()) {
        let n = 40;
        let mut rows = Vec::with_capacity(n * 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let a = (i as f64 * 0.61).sin();
            let c = (i as f64 * 0.23).cos();
            rows.push(a);
            rows.push(c);
            y.push(b + w0 * a + w1 * c);
        }
        let x = Matrix::from_vec(n, 2, rows);
        let (w, b_hat) = ols_ridge(&x, &y, 1e-10);
        prop_assert!((w[0] - w0).abs() < 1e-5, "w0 {} vs {}", w[0], w0);
        prop_assert!((w[1] - w1).abs() < 1e-5);
        prop_assert!((b_hat - b).abs() < 1e-5);
    }

    /// Metric identities: R² of a prediction equals 1 − NRMSE²·ȳ²·N/SST.
    #[test]
    fn metric_identities(values in prop::collection::vec(1.0f64..100.0, 8..64)) {
        let pred: Vec<f64> = values.iter().map(|v| v * 1.1).collect();
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let sst: f64 = values.iter().map(|v| (v - mean) * (v - mean)).sum();
        prop_assume!(sst > 1e-9);
        let r2 = metrics::r2(&values, &pred);
        let nrmse = metrics::nrmse(&values, &pred);
        let reconstructed = 1.0 - (nrmse * mean).powi(2) * n / sst;
        prop_assert!((r2 - reconstructed).abs() < 1e-9, "{r2} vs {reconstructed}");
    }

    /// Pearson is invariant under positive affine transforms.
    #[test]
    fn pearson_affine_invariance(
        values in prop::collection::vec(-50.0f64..50.0, 8..64),
        scale in 0.1f64..10.0,
        shift in small_f64(),
    ) {
        let other: Vec<f64> = values.iter().enumerate().map(|(i, v)| v + (i as f64 * 0.7).sin()).collect();
        let transformed: Vec<f64> = values.iter().map(|v| v * scale + shift).collect();
        let r1 = metrics::pearson(&values, &other);
        let r2 = metrics::pearson(&transformed, &other);
        prop_assert!((r1 - r2).abs() < 1e-9);
    }

    /// Cholesky solve inverts SPD systems.
    #[test]
    fn spd_solve_roundtrip(diag in prop::collection::vec(1.0f64..10.0, 3..8), seed in any::<u64>()) {
        let n = diag.len();
        // A = B·Bᵀ + diag for a random B: SPD by construction.
        let mut s = seed | 1;
        let mut bmat = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                bmat[(i, j)] = ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            }
        }
        let bt = bmat.transpose();
        let mut a = bmat.matmul(&bt);
        for i in 0..n {
            a[(i, i)] += diag[i];
        }
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
        let rhs = a.matvec(&x_true);
        let x = a.solve_spd(&rhs).expect("SPD");
        for (xa, xb) in x.iter().zip(&x_true) {
            prop_assert!((xa - xb).abs() < 1e-7);
        }
    }
}
