//! Gradient-boosted regression trees (the Lee et al. \[44\] baseline
//! family: boosting over activity features for power back-annotation).
//!
//! Squared-error gradient boosting over depth-limited CART trees with
//! histogram-free exact splits (feature values here are toggle rates in
//! `[0, 1]` or binary toggles, so candidate splits are few).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Training options for [`Gbt::fit`].
#[derive(Clone, Debug, PartialEq)]
pub struct GbtOptions {
    /// Number of boosting rounds (trees).
    pub rounds: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Shrinkage (learning rate).
    pub learning_rate: f64,
    /// Minimum samples in a leaf.
    pub min_leaf: usize,
    /// Fraction of features considered per split (column subsampling).
    pub feature_fraction: f64,
    /// RNG seed for feature subsampling.
    pub seed: u64,
}

impl Default for GbtOptions {
    fn default() -> Self {
        GbtOptions {
            rounds: 80,
            max_depth: 4,
            learning_rate: 0.15,
            min_leaf: 8,
            feature_fraction: 0.7,
            seed: 7,
        }
    }
}

#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// One regression tree, nodes in a flat arena.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn predict_row(&self, row: &[f64]) -> f64 {
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// A gradient-boosted tree ensemble regressor.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Gbt {
    base: f64,
    learning_rate: f64,
    trees: Vec<Tree>,
    n_features: usize,
}

struct SplitResult {
    feature: usize,
    threshold: f64,
    gain: f64,
}

fn best_split(
    x: &[f64],
    d: usize,
    rows: &[usize],
    grad: &[f64],
    features: &[usize],
    min_leaf: usize,
) -> Option<SplitResult> {
    let total: f64 = rows.iter().map(|&r| grad[r]).sum();
    let n = rows.len() as f64;
    let parent_score = total * total / n;
    let mut best: Option<SplitResult> = None;
    let mut vals: Vec<(f64, f64)> = Vec::with_capacity(rows.len());
    for &f in features {
        vals.clear();
        vals.extend(rows.iter().map(|&r| (x[r * d + f], grad[r])));
        vals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut left_sum = 0.0;
        let mut left_n = 0.0;
        for i in 0..vals.len() - 1 {
            left_sum += vals[i].1;
            left_n += 1.0;
            if vals[i].0 == vals[i + 1].0 {
                continue; // can't split between equal values
            }
            if (left_n as usize) < min_leaf || rows.len() - (left_n as usize) < min_leaf {
                continue;
            }
            let right_sum = total - left_sum;
            let right_n = n - left_n;
            let gain =
                left_sum * left_sum / left_n + right_sum * right_sum / right_n - parent_score;
            if best.as_ref().map(|b| gain > b.gain).unwrap_or(gain > 1e-12) {
                best = Some(SplitResult {
                    feature: f,
                    threshold: (vals[i].0 + vals[i + 1].0) / 2.0,
                    gain,
                });
            }
        }
    }
    best
}

#[allow(clippy::too_many_arguments)]
fn build_tree(
    x: &[f64],
    d: usize,
    rows: Vec<usize>,
    grad: &[f64],
    depth: usize,
    opts: &GbtOptions,
    rng: &mut StdRng,
    nodes: &mut Vec<Node>,
) -> usize {
    let mean: f64 = rows.iter().map(|&r| grad[r]).sum::<f64>() / rows.len().max(1) as f64;
    if depth == 0 || rows.len() < 2 * opts.min_leaf {
        nodes.push(Node::Leaf { value: mean });
        return nodes.len() - 1;
    }
    // Column subsample.
    let n_feat = ((d as f64 * opts.feature_fraction).ceil() as usize).clamp(1, d);
    let mut features: Vec<usize> = (0..d).collect();
    for i in (1..features.len()).rev() {
        features.swap(i, rng.gen_range(0..=i));
    }
    features.truncate(n_feat);

    match best_split(x, d, &rows, grad, &features, opts.min_leaf) {
        None => {
            nodes.push(Node::Leaf { value: mean });
            nodes.len() - 1
        }
        Some(split) => {
            let (left_rows, right_rows): (Vec<usize>, Vec<usize>) = rows
                .into_iter()
                .partition(|&r| x[r * d + split.feature] <= split.threshold);
            let placeholder = nodes.len();
            nodes.push(Node::Leaf { value: 0.0 }); // replaced below
            let left = build_tree(x, d, left_rows, grad, depth - 1, opts, rng, nodes);
            let right = build_tree(x, d, right_rows, grad, depth - 1, opts, rng, nodes);
            nodes[placeholder] = Node::Split {
                feature: split.feature,
                threshold: split.threshold,
                left,
                right,
            };
            placeholder
        }
    }
}

impl Gbt {
    /// Fits the ensemble to row-major inputs `x` (`n × d`) and targets
    /// `y`.
    ///
    /// # Panics
    /// Panics on dimension mismatches or empty data.
    pub fn fit(x: &[f64], n: usize, d: usize, y: &[f64], opts: &GbtOptions) -> Gbt {
        assert_eq!(x.len(), n * d, "input length mismatch");
        assert_eq!(y.len(), n, "target length mismatch");
        assert!(n > 0 && d > 0, "empty training data");
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let base = y.iter().sum::<f64>() / n as f64;
        let mut pred = vec![base; n];
        let mut trees = Vec::with_capacity(opts.rounds);
        let mut grad = vec![0.0; n];
        for _round in 0..opts.rounds {
            for i in 0..n {
                grad[i] = y[i] - pred[i];
            }
            let mut nodes = Vec::new();
            build_tree(
                x,
                d,
                (0..n).collect(),
                &grad,
                opts.max_depth,
                opts,
                &mut rng,
                &mut nodes,
            );
            let tree = Tree { nodes };
            for i in 0..n {
                pred[i] += opts.learning_rate * tree.predict_row(&x[i * d..(i + 1) * d]);
            }
            trees.push(tree);
        }
        Gbt {
            base,
            learning_rate: opts.learning_rate,
            trees,
            n_features: d,
        }
    }

    /// Predicts one row-major sample.
    ///
    /// # Panics
    /// Panics if the feature count differs from training.
    pub fn predict_one(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.n_features, "feature count mismatch");
        self.base + self.learning_rate * self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>()
    }

    /// Predicts row-major samples.
    pub fn predict(&self, x: &[f64], n: usize) -> Vec<f64> {
        assert_eq!(x.len(), n * self.n_features, "input length mismatch");
        (0..n)
            .map(|i| self.predict_one(&x[i * self.n_features..(i + 1) * self.n_features]))
            .collect()
    }

    /// Number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2;

    fn xor_like_data() -> (Vec<f64>, Vec<f64>, usize) {
        // y = 10 + 5*(a XOR b) + 2*c — non-linear in (a, b).
        let n = 400;
        let mut x = Vec::with_capacity(n * 3);
        let mut y = Vec::with_capacity(n);
        let mut s = 9u64;
        for _ in 0..n {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let a = (s & 1) as f64;
            let b = ((s >> 1) & 1) as f64;
            let c = ((s >> 10) & 0xff) as f64 / 255.0;
            x.extend_from_slice(&[a, b, c]);
            y.push(10.0 + 5.0 * ((a as u8 ^ b as u8) as f64) + 2.0 * c);
        }
        (x, y, n)
    }

    #[test]
    fn learns_nonlinear_interaction() {
        let (x, y, n) = xor_like_data();
        let gbt = Gbt::fit(&x, n, 3, &y, &GbtOptions::default());
        let pred = gbt.predict(&x, n);
        let score = r2(&y, &pred);
        assert!(score > 0.97, "R² = {score}");
    }

    #[test]
    fn more_rounds_fit_better() {
        let (x, y, n) = xor_like_data();
        let short = Gbt::fit(
            &x,
            n,
            3,
            &y,
            &GbtOptions {
                rounds: 3,
                ..GbtOptions::default()
            },
        );
        let long = Gbt::fit(
            &x,
            n,
            3,
            &y,
            &GbtOptions {
                rounds: 60,
                ..GbtOptions::default()
            },
        );
        let r_short = r2(&y, &short.predict(&x, n));
        let r_long = r2(&y, &long.predict(&x, n));
        assert!(r_long > r_short, "{r_long} vs {r_short}");
    }

    #[test]
    fn constant_target_gives_base_only() {
        let x = vec![0.0, 1.0, 0.0, 1.0];
        let y = vec![5.0, 5.0, 5.0, 5.0];
        let gbt = Gbt::fit(&x, 4, 1, &y, &GbtOptions::default());
        for v in gbt.predict(&x, 4) {
            assert!((v - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (x, y, n) = xor_like_data();
        let a = Gbt::fit(&x, n, 3, &y, &GbtOptions::default());
        let b = Gbt::fit(&x, n, 3, &y, &GbtOptions::default());
        assert_eq!(
            a.predict_one(&[1.0, 0.0, 0.5]),
            b.predict_one(&[1.0, 0.0, 0.5])
        );
    }

    #[test]
    fn min_leaf_respected() {
        // With min_leaf = n, only a root leaf can exist.
        let (x, y, n) = xor_like_data();
        let gbt = Gbt::fit(
            &x,
            n,
            3,
            &y,
            &GbtOptions {
                min_leaf: n,
                rounds: 5,
                ..GbtOptions::default()
            },
        );
        let base = y.iter().sum::<f64>() / n as f64;
        let p = gbt.predict_one(&[0.0, 0.0, 0.0]);
        assert!((p - base).abs() < 1e-9);
    }
}
