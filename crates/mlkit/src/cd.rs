//! Penalized linear regression by cyclic coordinate descent.
//!
//! Implements the proxy-selection machinery of the paper's §4.3–4.4:
//! a sparse linear model over all candidate signals, trained with a
//! sparsity-inducing penalty — Lasso (Tibshirani 1996) or the minimax
//! concave penalty (MCP, Zhang 2010) — optimized with cyclic coordinate
//! descent (Wright 2015), the MCP proximal operator, warm-started λ
//! paths and active-set iteration with full KKT re-checks.
//!
//! Columns are standardized *implicitly*: for binary toggle columns the
//! standardized inner products reduce to popcount-weighted sums, so no
//! dense standardized copy of the design is ever materialized.

// Lockstep multi-array index loops are intentional throughout this
// module; iterator zips would obscure the hardware/math being expressed.
#![allow(clippy::needless_range_loop)]

use crate::design::Design;

/// Penalty applied to each coefficient (in standardized coordinates).
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Penalty {
    /// `λ|w|` — uniform shrinkage (Eq. 5 of the paper).
    Lasso {
        /// Penalty strength λ.
        lambda: f64,
    },
    /// `λ|w| − w²/2γ` capped at `γλ²/2` (Eq. 6): large weights are
    /// left unpenalized.
    Mcp {
        /// Penalty strength λ.
        lambda: f64,
        /// Concavity threshold γ (> 1); weights above `γλ` do not
        /// shrink.
        gamma: f64,
    },
    /// `λw²/2` — no sparsity, used for relaxation/fine-tuning.
    Ridge {
        /// Penalty strength λ.
        lambda: f64,
    },
    /// `λ1|w| + λ2 w²/2` — the elastic net (Simmani's model).
    ElasticNet {
        /// L1 strength.
        lambda1: f64,
        /// L2 strength.
        lambda2: f64,
    },
}

impl Penalty {
    /// The λ used for sparsity decisions (KKT checks, path generation).
    pub fn sparsity_lambda(self) -> f64 {
        match self {
            Penalty::Lasso { lambda } => lambda,
            Penalty::Mcp { lambda, .. } => lambda,
            Penalty::Ridge { .. } => 0.0,
            Penalty::ElasticNet { lambda1, .. } => lambda1,
        }
    }

    /// Re-parameterizes the penalty with a new sparsity λ (used when
    /// walking a path).
    pub fn with_lambda(self, new_lambda: f64) -> Penalty {
        match self {
            Penalty::Lasso { .. } => Penalty::Lasso { lambda: new_lambda },
            Penalty::Mcp { gamma, .. } => Penalty::Mcp {
                lambda: new_lambda,
                gamma,
            },
            Penalty::Ridge { .. } => Penalty::Ridge { lambda: new_lambda },
            Penalty::ElasticNet { lambda2, .. } => Penalty::ElasticNet {
                lambda1: new_lambda,
                lambda2,
            },
        }
    }

    /// Coordinate-wise proximal update: minimizes
    /// `½(w − u)² + P(w)` for unit-variance coordinates.
    fn prox(self, u: f64, nonnegative: bool) -> f64 {
        let soft = |u: f64, l: f64| {
            if u > l {
                u - l
            } else if u < -l {
                u + l
            } else {
                0.0
            }
        };
        let w = match self {
            Penalty::Lasso { lambda } => soft(u, lambda),
            Penalty::Mcp { lambda, gamma } => {
                if u.abs() <= lambda {
                    0.0
                } else if u.abs() <= gamma * lambda {
                    soft(u, lambda) / (1.0 - 1.0 / gamma)
                } else {
                    u
                }
            }
            Penalty::Ridge { lambda } => u / (1.0 + lambda),
            Penalty::ElasticNet { lambda1, lambda2 } => soft(u, lambda1) / (1.0 + lambda2),
        };
        if nonnegative {
            w.max(0.0)
        } else {
            w
        }
    }
}

/// Options for [`coordinate_descent`].
#[derive(Clone, Debug, PartialEq)]
pub struct CdOptions {
    /// Maximum active-set sweeps per KKT round.
    pub max_sweeps: usize,
    /// Maximum KKT (full-scan) rounds.
    pub max_kkt_rounds: usize,
    /// Convergence tolerance on standardized-coefficient changes,
    /// relative to the standard deviation of `y`.
    pub tol: f64,
    /// Constrain coefficients to be non-negative (physically, toggling
    /// can only add power; the paper's Table 2 lists `w ∈ R+`).
    pub nonnegative: bool,
}

impl Default for CdOptions {
    fn default() -> Self {
        CdOptions {
            max_sweeps: 200,
            max_kkt_rounds: 8,
            tol: 1e-4,
            nonnegative: true,
        }
    }
}

/// Result of a coordinate-descent fit.
#[derive(Clone, Debug, PartialEq)]
pub struct CdResult {
    /// Nonzero coefficients in *raw* (unstandardized) feature space, as
    /// `(column, weight)` pairs sorted by column.
    pub active: Vec<(usize, f64)>,
    /// Intercept in raw space.
    pub intercept: f64,
    /// Total sweeps executed.
    pub sweeps: usize,
    /// Whether the final active-set pass converged.
    pub converged: bool,
    /// The sparsity λ the model was fit at.
    pub lambda: f64,
}

impl CdResult {
    /// Number of selected features.
    pub fn n_selected(&self) -> usize {
        self.active.len()
    }

    /// Predicts on a design with the same column layout.
    pub fn predict<D: Design>(&self, design: &D) -> Vec<f64> {
        let mut out = vec![self.intercept; design.n_rows()];
        for &(j, w) in &self.active {
            design.col_axpy(j, w, &mut out);
        }
        out
    }

    /// Sum of absolute raw weights (the paper's Figure 13 quantity).
    pub fn weight_l1(&self) -> f64 {
        self.active.iter().map(|(_, w)| w.abs()).sum()
    }
}

/// Internal solver state for warm-started paths.
struct Solver<'a, D: Design> {
    x: &'a D,
    n: usize,
    y_mean: f64,
    y_std: f64,
    /// Stored residual component (actual residual is `rs + shift`, but
    /// the shift cancels in all standardized inner products).
    rs: Vec<f64>,
    /// Running sum of `rs`.
    s: f64,
    /// Standardized coefficients (sparse: only tracked columns).
    w: Vec<f64>,
    /// Per-column mean / std caches for usable columns.
    mean: Vec<f64>,
    std: Vec<f64>,
    usable: Vec<bool>,
}

impl<'a, D: Design> Solver<'a, D> {
    fn new(x: &'a D, y: &[f64]) -> Self {
        let n = x.n_rows();
        assert_eq!(y.len(), n, "label length mismatch");
        let p = x.n_cols();
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let y_var = y.iter().map(|v| (v - y_mean) * (v - y_mean)).sum::<f64>() / n as f64;
        let rs: Vec<f64> = y.iter().map(|v| v - y_mean).collect();
        let s = rs.iter().sum();
        let mut mean = Vec::with_capacity(p);
        let mut std = Vec::with_capacity(p);
        let mut usable = Vec::with_capacity(p);
        for j in 0..p {
            let m = x.col_mean(j);
            let sd = x.col_std(j);
            mean.push(m);
            std.push(sd);
            usable.push(sd > 1e-12);
        }
        Solver {
            x,
            n,
            y_mean,
            y_std: y_var.sqrt().max(1e-12),
            rs,
            s,
            w: vec![0.0; p],
            mean,
            std,
            usable,
        }
    }

    /// Standardized correlation of column `j` with the current residual:
    /// `(1/N)·x̃_j·r`.
    #[inline]
    fn rho(&self, j: usize) -> f64 {
        let dot = self.x.col_dot(j, &self.rs);
        (dot - self.mean[j] * self.s) / (self.std[j] * self.n as f64)
    }

    /// Applies `Δw̃_j`, updating the residual bookkeeping.
    #[inline]
    fn apply_delta(&mut self, j: usize, delta: f64) {
        let alpha = -delta / self.std[j];
        self.x.col_axpy(j, alpha, &mut self.rs);
        self.s += alpha * self.mean[j] * self.n as f64;
        self.w[j] += delta;
    }

    /// One sweep over `active`; returns the largest coefficient change.
    fn sweep(&mut self, active: &[usize], penalty: Penalty, nonneg: bool) -> f64 {
        let mut max_delta = 0.0f64;
        for &j in active {
            let u = self.rho(j) + self.w[j];
            let w_new = penalty.prox(u, nonneg);
            let delta = w_new - self.w[j];
            if delta != 0.0 {
                self.apply_delta(j, delta);
                max_delta = max_delta.max(delta.abs());
            }
        }
        max_delta
    }

    fn result(&self, lambda: f64, sweeps: usize, converged: bool) -> CdResult {
        let mut active: Vec<(usize, f64)> = self
            .w
            .iter()
            .enumerate()
            .filter(|(_, w)| **w != 0.0)
            .map(|(j, w)| (j, w / self.std[j]))
            .collect();
        active.sort_by_key(|&(j, _)| j);
        let intercept = self.y_mean - active.iter().map(|&(j, w)| w * self.mean[j]).sum::<f64>();
        CdResult {
            active,
            intercept,
            sweeps,
            converged,
            lambda,
        }
    }
}

/// The largest λ at which every coefficient is zero (start of the path).
pub fn lambda_max<D: Design>(x: &D, y: &[f64], nonnegative: bool) -> f64 {
    let solver = Solver::new(x, y);
    let mut best = 0.0f64;
    for j in 0..x.n_cols() {
        if !solver.usable[j] {
            continue;
        }
        let rho = solver.rho(j);
        let v = if nonnegative { rho } else { rho.abs() };
        best = best.max(v);
    }
    best
}

/// Fits a penalized linear model at a single penalty setting.
///
/// Uses active-set coordinate descent: converge on the current active
/// set, then scan all columns for KKT violators and repeat until no
/// violator remains (or `max_kkt_rounds` is hit).
pub fn coordinate_descent<D: Design>(
    x: &D,
    y: &[f64],
    penalty: Penalty,
    opts: &CdOptions,
) -> CdResult {
    let mut solver = Solver::new(x, y);
    let result = fit_warm(&mut solver, penalty, opts);
    apollo_telemetry::counter("mlkit.cd_fits").inc();
    apollo_telemetry::counter("mlkit.cd_sweeps").add(result.sweeps as u64);
    result
}

fn fit_warm<D: Design>(solver: &mut Solver<'_, D>, penalty: Penalty, opts: &CdOptions) -> CdResult {
    let p = solver.x.n_cols();
    let lambda = penalty.sparsity_lambda();
    let mut active: Vec<usize> = (0..p).filter(|&j| solver.w[j] != 0.0).collect();
    let mut total_sweeps = 0;
    let mut converged = false;

    // Ridge has no sparsity: every usable column is active.
    if matches!(penalty, Penalty::Ridge { .. }) {
        active = (0..p).filter(|&j| solver.usable[j]).collect();
    }

    for _round in 0..opts.max_kkt_rounds {
        // Converge on the active set.
        converged = false;
        for _ in 0..opts.max_sweeps {
            total_sweeps += 1;
            let delta = solver.sweep(&active, penalty, opts.nonnegative);
            if delta < opts.tol * solver.y_std {
                converged = true;
                break;
            }
        }
        if matches!(penalty, Penalty::Ridge { .. }) {
            break;
        }
        // Full KKT scan for violators among inactive columns.
        let mut violators = Vec::new();
        for j in 0..p {
            if !solver.usable[j] || solver.w[j] != 0.0 {
                continue;
            }
            let rho = solver.rho(j);
            let v = if opts.nonnegative { rho } else { rho.abs() };
            if v > lambda * (1.0 + 1e-9) {
                violators.push(j);
            }
        }
        if violators.is_empty() {
            break;
        }
        active.extend_from_slice(&violators);
        active.sort_unstable();
        active.dedup();
    }
    solver.result(lambda, total_sweeps, converged)
}

/// A warm-started geometric λ path, largest λ first.
///
/// Returns one [`CdResult`] per λ. λ values must be positive and
/// decreasing for warm starts to help (this is asserted).
pub fn lambda_path<D: Design>(
    x: &D,
    y: &[f64],
    penalty: Penalty,
    lambdas: &[f64],
    opts: &CdOptions,
) -> Vec<CdResult> {
    assert!(!lambdas.is_empty(), "empty lambda path");
    for w in lambdas.windows(2) {
        assert!(
            w[0] > w[1] && w[1] > 0.0,
            "lambdas must be positive and decreasing"
        );
    }
    let mut solver = Solver::new(x, y);
    lambdas
        .iter()
        .map(|&l| fit_warm(&mut solver, penalty.with_lambda(l), opts))
        .collect()
}

/// Walks a λ path until roughly `q_target` features are selected;
/// returns the result whose support size is closest to the target.
///
/// This is how the paper "adjusts the penalty strength λ to control the
/// number of selected proxies Q" (§4.3).
pub fn select_features<D: Design>(
    x: &D,
    y: &[f64],
    penalty: Penalty,
    q_target: usize,
    opts: &CdOptions,
) -> CdResult {
    assert!(q_target >= 1, "q_target must be at least 1");
    let lmax = lambda_max(x, y, opts.nonnegative);
    let mut solver = Solver::new(x, y);
    let mut lambda = lmax * 0.98;
    let mut best: Option<CdResult> = None;
    let ratio = 0.88f64;
    for _ in 0..120 {
        let res = fit_warm(&mut solver, penalty.with_lambda(lambda), opts);
        let q = res.n_selected();
        let better = match &best {
            None => true,
            Some(b) => {
                q.abs_diff(q_target) < b.n_selected().abs_diff(q_target)
                    || (q.abs_diff(q_target) == b.n_selected().abs_diff(q_target) && q >= q_target)
            }
        };
        if better {
            best = Some(res.clone());
        }
        if q >= q_target {
            break;
        }
        lambda *= ratio;
        if lambda < 1e-10 * lmax {
            break;
        }
    }
    best.expect("at least one path point fitted")
}

/// Walks a single warm-started λ path and returns, for each support-size
/// target in `q_targets`, the path point whose support is closest to it.
///
/// Much cheaper than calling [`select_features`] once per target: the
/// path (the expensive part) is shared.
///
/// # Panics
/// Panics if `q_targets` is empty or not strictly increasing.
pub fn select_path_targets<D: Design>(
    x: &D,
    y: &[f64],
    penalty: Penalty,
    q_targets: &[usize],
    opts: &CdOptions,
) -> Vec<CdResult> {
    assert!(!q_targets.is_empty(), "no targets");
    for w in q_targets.windows(2) {
        assert!(w[0] < w[1], "targets must be strictly increasing");
    }
    let lmax = lambda_max(x, y, opts.nonnegative);
    let mut solver = Solver::new(x, y);
    let mut lambda = lmax * 0.98;
    let ratio = 0.88f64;
    let mut best: Vec<Option<CdResult>> = vec![None; q_targets.len()];
    let q_max = *q_targets.last().unwrap();
    for _ in 0..200 {
        let res = fit_warm(&mut solver, penalty.with_lambda(lambda), opts);
        let q = res.n_selected();
        for (slot, &target) in best.iter_mut().zip(q_targets) {
            let better = match slot {
                None => true,
                Some(b) => q.abs_diff(target) < b.n_selected().abs_diff(target),
            };
            if better {
                *slot = Some(res.clone());
            }
        }
        if q >= q_max {
            break;
        }
        lambda *= ratio;
        if lambda < 1e-10 * lmax {
            break;
        }
    }
    best.into_iter()
        .map(|b| b.expect("path produced at least one point"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{BitMatrix, DenseDesign};

    /// y = 5 + 3*x0 + 2*x1, 40 obs, 6 noise columns.
    fn toy_dense() -> (DenseDesign, Vec<f64>) {
        let n = 80;
        let p = 8;
        let mut cols = vec![0.0; n * p];
        let mut seed = 0x12345u64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for j in 0..p {
            for i in 0..n {
                cols[j * n + i] = rnd();
            }
        }
        let x = DenseDesign::from_columns(n, p, cols);
        let y: Vec<f64> = (0..n)
            .map(|i| 5.0 + 3.0 * x.value(i, 0) + 2.0 * x.value(i, 1))
            .collect();
        (x, y)
    }

    #[test]
    fn lasso_selects_true_support() {
        let (x, y) = toy_dense();
        let res = coordinate_descent(
            &x,
            &y,
            Penalty::Lasso { lambda: 0.05 },
            &CdOptions::default(),
        );
        let support: Vec<usize> = res.active.iter().map(|&(j, _)| j).collect();
        assert!(support.contains(&0), "support {support:?}");
        assert!(support.contains(&1), "support {support:?}");
        assert!(res.converged);
    }

    #[test]
    fn mcp_recovers_unbiased_weights() {
        let (x, y) = toy_dense();
        let lasso = coordinate_descent(
            &x,
            &y,
            Penalty::Lasso { lambda: 0.08 },
            &CdOptions::default(),
        );
        let mcp = coordinate_descent(
            &x,
            &y,
            Penalty::Mcp {
                lambda: 0.08,
                gamma: 10.0,
            },
            &CdOptions::default(),
        );
        // MCP leaves large weights unpenalized: its recovered weight for
        // x0 should be closer to 3 than Lasso's.
        let w0 = |r: &CdResult| {
            r.active
                .iter()
                .find(|&&(j, _)| j == 0)
                .map(|&(_, w)| w)
                .unwrap_or(0.0)
        };
        let err_mcp = (w0(&mcp) - 3.0).abs();
        let err_lasso = (w0(&lasso) - 3.0).abs();
        assert!(
            err_mcp < err_lasso,
            "mcp w0={} lasso w0={}",
            w0(&mcp),
            w0(&lasso)
        );
        // And the MCP model's total |w| is larger (Figure 13's shape).
        assert!(mcp.weight_l1() > lasso.weight_l1());
    }

    #[test]
    fn prediction_matches_generating_model() {
        let (x, y) = toy_dense();
        let res = coordinate_descent(
            &x,
            &y,
            Penalty::Mcp {
                lambda: 0.02,
                gamma: 10.0,
            },
            &CdOptions::default(),
        );
        let pred = res.predict(&x);
        let sse: f64 = pred.iter().zip(&y).map(|(p, t)| (p - t) * (p - t)).sum();
        assert!(
            sse / (y.len() as f64) < 0.05,
            "mse = {}",
            sse / y.len() as f64
        );
    }

    #[test]
    fn binary_design_end_to_end() {
        // Power-like model: y = 10 + 4*b0 + 1*b1 with correlated noise col.
        let n = 400;
        let mut x = BitMatrix::zeros(n, 4);
        let mut seed = 99u64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut y = vec![10.0; n];
        for i in 0..n {
            let r = rnd();
            if r & 1 == 1 {
                x.set(i, 0);
                y[i] += 4.0;
            }
            if r & 2 == 2 {
                x.set(i, 1);
                y[i] += 1.0;
            }
            if r & 4 == 4 {
                x.set(i, 2);
            }
            // column 3 duplicates column 0 (perfect correlation)
            if r & 1 == 1 {
                x.set(i, 3);
            }
        }
        let res = coordinate_descent(
            &x,
            &y,
            Penalty::Mcp {
                lambda: 0.05,
                gamma: 10.0,
            },
            &CdOptions::default(),
        );
        let pred = res.predict(&x);
        let mse: f64 = pred
            .iter()
            .zip(&y)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / n as f64;
        assert!(mse < 0.01, "mse = {mse}");
        // The duplicated pair contributes 4 in total.
        let w_pair: f64 = res
            .active
            .iter()
            .filter(|&&(j, _)| j == 0 || j == 3)
            .map(|&(_, w)| w)
            .sum();
        assert!((w_pair - 4.0).abs() < 0.05, "w0 + w3 = {w_pair}");
    }

    #[test]
    fn lambda_max_silences_everything() {
        let (x, y) = toy_dense();
        let lmax = lambda_max(&x, &y, true);
        let res = coordinate_descent(
            &x,
            &y,
            Penalty::Lasso {
                lambda: lmax * 1.01,
            },
            &CdOptions::default(),
        );
        assert_eq!(res.n_selected(), 0);
        // Just below λmax at least one feature enters.
        let res = coordinate_descent(
            &x,
            &y,
            Penalty::Lasso { lambda: lmax * 0.9 },
            &CdOptions::default(),
        );
        assert!(res.n_selected() >= 1);
    }

    #[test]
    fn select_features_hits_target() {
        let (x, y) = toy_dense();
        let res = select_features(
            &x,
            &y,
            Penalty::Mcp {
                lambda: 1.0,
                gamma: 10.0,
            },
            2,
            &CdOptions::default(),
        );
        assert!(res.n_selected() >= 2, "selected {}", res.n_selected());
        assert!(res.n_selected() <= 4);
    }

    #[test]
    fn path_is_monotone_in_support() {
        let (x, y) = toy_dense();
        let lmax = lambda_max(&x, &y, true);
        let lambdas: Vec<f64> = (1..8).map(|k| lmax * 0.8f64.powi(k)).collect();
        let path = lambda_path(
            &x,
            &y,
            Penalty::Lasso { lambda: 1.0 },
            &lambdas,
            &CdOptions::default(),
        );
        for w in path.windows(2) {
            assert!(
                w[1].n_selected() + 1 >= w[0].n_selected(),
                "support should generally grow along the path"
            );
        }
    }

    #[test]
    fn path_targets_match_individual_selection() {
        let (x, y) = toy_dense();
        let multi = select_path_targets(
            &x,
            &y,
            Penalty::Mcp {
                lambda: 1.0,
                gamma: 10.0,
            },
            &[1, 2],
            &CdOptions::default(),
        );
        assert_eq!(multi.len(), 2);
        assert!(multi[0].n_selected() >= 1);
        assert!(multi[1].n_selected() >= multi[0].n_selected());
    }

    #[test]
    fn nonnegative_constraint_respected() {
        // y anti-correlates with x0; nonneg fit must not use it.
        let n = 60;
        let mut cols = vec![0.0; n * 2];
        for i in 0..n {
            cols[i] = (i % 2) as f64;
            cols[n + i] = ((i / 2) % 2) as f64;
        }
        let x = DenseDesign::from_columns(n, 2, cols);
        let y: Vec<f64> = (0..n)
            .map(|i| 5.0 - 3.0 * x.value(i, 0) + 2.0 * x.value(i, 1))
            .collect();
        let res = coordinate_descent(
            &x,
            &y,
            Penalty::Lasso { lambda: 0.01 },
            &CdOptions {
                nonnegative: true,
                ..CdOptions::default()
            },
        );
        for &(_, w) in &res.active {
            assert!(w >= 0.0, "negative weight {w}");
        }
    }
}
