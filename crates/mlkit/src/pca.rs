//! Principal component analysis (the PRIMAL-PCA baseline).
//!
//! Computed from the feature covariance via Jacobi eigendecomposition;
//! suitable for feature dimensions up to a few hundred. Higher-
//! dimensional inputs are first reduced with a deterministic sparse
//! random projection (a standard Johnson–Lindenstrauss construction),
//! mirroring how dimension-reduction baselines still need *all* input
//! signals at inference time — the paper's key cost argument against
//! PCA-style approaches.

// Lockstep multi-array index loops are intentional throughout this
// module; iterator zips would obscure the hardware/math being expressed.
#![allow(clippy::needless_range_loop)]

use crate::design::Design;
use crate::linalg::Matrix;

/// A fitted PCA transform.
#[derive(Clone, Debug)]
pub struct Pca {
    /// Feature means subtracted before projection.
    pub mean: Vec<f64>,
    /// Principal axes, one per row (components × features).
    pub components: Matrix,
    /// Eigenvalues (explained variance), descending.
    pub explained: Vec<f64>,
}

impl Pca {
    /// Fits `k` principal components to row-major samples.
    ///
    /// # Panics
    /// Panics if `x` is empty or `k` is zero or larger than the feature
    /// count.
    pub fn fit(x: &Matrix, k: usize) -> Pca {
        let n = x.rows();
        let p = x.cols();
        assert!(k >= 1 && k <= p, "k out of range");
        let mut mean = vec![0.0; p];
        for i in 0..n {
            for (m, v) in mean.iter_mut().zip(x.row(i)) {
                *m += v;
            }
        }
        for m in mean.iter_mut() {
            *m /= n as f64;
        }
        let mut cov = Matrix::zeros(p, p);
        for i in 0..n {
            let row = x.row(i);
            for a in 0..p {
                let da = row[a] - mean[a];
                for bcol in a..p {
                    cov[(a, bcol)] += da * (row[bcol] - mean[bcol]);
                }
            }
        }
        for a in 0..p {
            for bcol in 0..a {
                cov[(a, bcol)] = cov[(bcol, a)];
            }
        }
        for a in 0..p {
            for bcol in 0..p {
                cov[(a, bcol)] /= n as f64;
            }
        }
        let (vals, vecs) = cov.symmetric_eigen();
        let mut components = Matrix::zeros(k, p);
        for c in 0..k {
            for j in 0..p {
                components[(c, j)] = vecs[(j, c)];
            }
        }
        Pca {
            mean,
            components,
            explained: vals.into_iter().take(k).collect(),
        }
    }

    /// Projects row-major samples onto the components.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        let n = x.rows();
        let k = self.components.rows();
        let mut out = Matrix::zeros(n, k);
        for i in 0..n {
            let row = x.row(i);
            for c in 0..k {
                let mut s = 0.0;
                for j in 0..row.len() {
                    s += (row[j] - self.mean[j]) * self.components[(c, j)];
                }
                out[(i, c)] = s;
            }
        }
        out
    }
}

/// Deterministic sparse random projection of a (possibly binary) design
/// into `dim` dense features, for use ahead of [`Pca::fit`] when the
/// raw feature count is too large for a covariance eigendecomposition.
///
/// Each input column contributes to a few output coordinates with ±1
/// signs derived from a hash of `(column, coordinate)`.
pub fn random_project<D: Design>(
    design: &D,
    rows: std::ops::Range<usize>,
    dim: usize,
    seed: u64,
) -> Matrix {
    let p = design.n_cols();
    let n = rows.len();
    let start = rows.start;
    let end = rows.end;
    let mut out = Matrix::zeros(n, dim);
    for j in 0..p {
        // Skip constant columns quickly.
        if design.col_std(j) <= 1e-12 {
            continue;
        }
        // Each column lands in 4 signed output coordinates.
        let mut targets = [(0usize, 0.0f64); 4];
        for (slot, t) in targets.iter_mut().enumerate() {
            let h = hash64(seed ^ ((j as u64) << 2) ^ slot as u64);
            *t = (
                (h % dim as u64) as usize,
                if h & (1 << 63) != 0 { 1.0 } else { -1.0 },
            );
        }
        design.for_each_nonzero(j, &mut |row, val| {
            if row >= start && row < end {
                for &(target, sign) in &targets {
                    out[(row - start, target)] += sign * val;
                }
            }
        });
    }
    out
}

fn hash64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_dominant_direction() {
        // Points along (1, 1) with small orthogonal noise.
        let n = 100;
        let mut data = Vec::with_capacity(n * 2);
        for i in 0..n {
            let t = i as f64 / n as f64 * 10.0 - 5.0;
            let noise = 0.01 * (i as f64 * 0.7).sin();
            data.push(t + noise);
            data.push(t - noise);
        }
        let x = Matrix::from_vec(n, 2, data);
        let pca = Pca::fit(&x, 1);
        let c0 = pca.components.row(0);
        let ratio = (c0[0] / c0[1]).abs();
        assert!((ratio - 1.0).abs() < 0.01, "components {c0:?}");
        assert!(pca.explained[0] > 1.0);
    }

    #[test]
    fn transform_centers_data() {
        let x = Matrix::from_vec(4, 2, vec![1.0, 0.0, 3.0, 0.0, 1.0, 2.0, 3.0, 2.0]);
        let pca = Pca::fit(&x, 2);
        let t = pca.transform(&x);
        // Projections are mean-zero.
        for c in 0..2 {
            let mean: f64 = (0..4).map(|i| t[(i, c)]).sum::<f64>() / 4.0;
            assert!(mean.abs() < 1e-9);
        }
    }

    #[test]
    fn random_projection_shape_and_determinism() {
        use crate::design::BitMatrix;
        let mut bm = BitMatrix::zeros(50, 20);
        for i in 0..50 {
            for j in 0..20 {
                if (i * 7 + j * 13) % 5 == 0 {
                    bm.set(i, j);
                }
            }
        }
        let a = random_project(&bm, 0..30, 8, 1);
        let b = random_project(&bm, 0..30, 8, 1);
        assert_eq!(a.rows(), 30);
        assert_eq!(a.cols(), 8);
        assert_eq!(a.data(), b.data());
        // Not all zero.
        assert!(a.data().iter().any(|&v| v != 0.0));
    }
}
