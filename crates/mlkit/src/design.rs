//! Design-matrix abstraction for the regression solvers.
//!
//! Coordinate descent only needs a handful of column primitives —
//! mean, standard deviation, raw dot products with the residual and
//! rank-one residual updates — so the solver is generic over [`Design`].
//! Binary toggle matrices implement these with word-level popcount
//! scans, which is what makes commercial-scale `M` tractable in pure
//! Rust.

/// Column-oriented design matrix interface used by
/// [`crate::coordinate_descent`].
///
/// Implementations must be consistent: `col_dot(j, 1)` equals
/// `col_sum(j)`, and `col_axpy` must add `alpha` times the *raw*
/// (unstandardized) column.
pub trait Design {
    /// Number of rows (observations).
    fn n_rows(&self) -> usize;

    /// Number of columns (features).
    fn n_cols(&self) -> usize;

    /// Mean of column `j`.
    fn col_mean(&self, j: usize) -> f64;

    /// Population standard deviation of column `j` (0 for constant
    /// columns).
    fn col_std(&self, j: usize) -> f64;

    /// Raw dot product `x_j · v`.
    ///
    /// # Panics
    /// Implementations may panic if `v.len() != n_rows()`.
    fn col_dot(&self, j: usize, v: &[f64]) -> f64;

    /// Rank-one update `v += alpha * x_j` (raw column).
    fn col_axpy(&self, j: usize, alpha: f64, v: &mut [f64]);

    /// Value at `(row, col)` — used by predictors, not by the solver's
    /// hot loops.
    fn value(&self, row: usize, col: usize) -> f64;

    /// Visits every structurally nonzero entry of column `j` as
    /// `(row, value)`.
    fn for_each_nonzero(&self, j: usize, f: &mut dyn FnMut(usize, f64));
}

/// Dense column-major design matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseDesign {
    n: usize,
    p: usize,
    /// Column-major data.
    cols: Vec<f64>,
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl DenseDesign {
    /// Creates a design from column-major data.
    ///
    /// # Panics
    /// Panics if `cols.len() != n * p` or a dimension is zero.
    pub fn from_columns(n: usize, p: usize, cols: Vec<f64>) -> Self {
        assert!(n > 0 && p > 0, "design must be non-empty");
        assert_eq!(cols.len(), n * p, "column data length mismatch");
        let mut means = Vec::with_capacity(p);
        let mut stds = Vec::with_capacity(p);
        for j in 0..p {
            let col = &cols[j * n..(j + 1) * n];
            let m = col.iter().sum::<f64>() / n as f64;
            let var = col.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64;
            means.push(m);
            stds.push(var.sqrt());
        }
        DenseDesign {
            n,
            p,
            cols,
            means,
            stds,
        }
    }

    /// Creates a design from row-major data.
    ///
    /// # Panics
    /// Panics if `rows.len() != n * p`.
    pub fn from_rows(n: usize, p: usize, rows: &[f64]) -> Self {
        assert_eq!(rows.len(), n * p, "row data length mismatch");
        let mut cols = vec![0.0; n * p];
        for i in 0..n {
            for j in 0..p {
                cols[j * n + i] = rows[i * p + j];
            }
        }
        Self::from_columns(n, p, cols)
    }

    /// Borrow of column `j`.
    pub fn column(&self, j: usize) -> &[f64] {
        &self.cols[j * self.n..(j + 1) * self.n]
    }
}

impl Design for DenseDesign {
    fn n_rows(&self) -> usize {
        self.n
    }

    fn n_cols(&self) -> usize {
        self.p
    }

    fn col_mean(&self, j: usize) -> f64 {
        self.means[j]
    }

    fn col_std(&self, j: usize) -> f64 {
        self.stds[j]
    }

    fn col_dot(&self, j: usize, v: &[f64]) -> f64 {
        self.column(j).iter().zip(v).map(|(a, b)| a * b).sum()
    }

    fn col_axpy(&self, j: usize, alpha: f64, v: &mut [f64]) {
        for (o, a) in v.iter_mut().zip(self.column(j)) {
            *o += alpha * a;
        }
    }

    fn value(&self, row: usize, col: usize) -> f64 {
        self.cols[col * self.n + row]
    }

    fn for_each_nonzero(&self, j: usize, f: &mut dyn FnMut(usize, f64)) {
        for (i, &v) in self.column(j).iter().enumerate() {
            if v != 0.0 {
                f(i, v);
            }
        }
    }
}

/// Packed binary design matrix: `p` columns of `n` bits each
/// (column-major words), as produced from RTL toggle traces.
#[derive(Clone, PartialEq)]
pub struct BitMatrix {
    n: usize,
    p: usize,
    stride: usize,
    words: Vec<u64>,
    pops: Vec<u32>,
}

impl std::fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitMatrix({} rows x {} cols)", self.n, self.p)
    }
}

impl BitMatrix {
    /// Creates an all-zero matrix.
    ///
    /// # Panics
    /// Panics if a dimension is zero.
    pub fn zeros(n: usize, p: usize) -> Self {
        assert!(n > 0 && p > 0, "design must be non-empty");
        let stride = n.div_ceil(64);
        BitMatrix {
            n,
            p,
            stride,
            words: vec![0; stride * p],
            pops: vec![0; p],
        }
    }

    /// Builds a matrix from per-column packed words (each column slice
    /// must be `ceil(n/64)` words with no stray bits above `n`).
    ///
    /// # Panics
    /// Panics if the data length is inconsistent.
    pub fn from_columns(n: usize, p: usize, words: Vec<u64>) -> Self {
        let stride = n.div_ceil(64);
        assert_eq!(words.len(), stride * p, "packed data length mismatch");
        let pops = (0..p)
            .map(|j| {
                words[j * stride..(j + 1) * stride]
                    .iter()
                    .map(|w| w.count_ones())
                    .sum()
            })
            .collect();
        BitMatrix {
            n,
            p,
            stride,
            words,
            pops,
        }
    }

    /// Sets bit `(row, col)`.
    pub fn set(&mut self, row: usize, col: usize) {
        debug_assert!(row < self.n && col < self.p);
        let w = &mut self.words[col * self.stride + row / 64];
        let m = 1u64 << (row % 64);
        if *w & m == 0 {
            *w |= m;
            self.pops[col] += 1;
        }
    }

    /// Reads bit `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> bool {
        (self.words[col * self.stride + row / 64] >> (row % 64)) & 1 == 1
    }

    /// Packed words of one column.
    pub fn column_words(&self, j: usize) -> &[u64] {
        &self.words[j * self.stride..(j + 1) * self.stride]
    }

    /// Number of set bits in column `j`.
    pub fn popcount(&self, j: usize) -> u32 {
        self.pops[j]
    }
}

impl Design for BitMatrix {
    fn n_rows(&self) -> usize {
        self.n
    }

    fn n_cols(&self) -> usize {
        self.p
    }

    fn col_mean(&self, j: usize) -> f64 {
        self.pops[j] as f64 / self.n as f64
    }

    fn col_std(&self, j: usize) -> f64 {
        let m = self.col_mean(j);
        (m * (1.0 - m)).sqrt()
    }

    fn col_dot(&self, j: usize, v: &[f64]) -> f64 {
        debug_assert_eq!(v.len(), self.n);
        let mut sum = 0.0;
        for (wi, &w) in self.column_words(j).iter().enumerate() {
            let mut bits = w;
            let base = wi * 64;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                sum += v[base + b];
            }
        }
        sum
    }

    fn col_axpy(&self, j: usize, alpha: f64, v: &mut [f64]) {
        for (wi, &w) in self.column_words(j).iter().enumerate() {
            let mut bits = w;
            let base = wi * 64;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                v[base + b] += alpha;
            }
        }
    }

    fn value(&self, row: usize, col: usize) -> f64 {
        self.get(row, col) as u8 as f64
    }

    fn for_each_nonzero(&self, j: usize, f: &mut dyn FnMut(usize, f64)) {
        for (wi, &w) in self.column_words(j).iter().enumerate() {
            let mut bits = w;
            let base = wi * 64;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                f(base + b, 1.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_column_stats() {
        let d = DenseDesign::from_rows(4, 2, &[1.0, 0.0, 2.0, 0.0, 3.0, 1.0, 4.0, 1.0]);
        assert_eq!(d.col_mean(0), 2.5);
        assert_eq!(d.col_mean(1), 0.5);
        assert!((d.col_std(1) - 0.5).abs() < 1e-12);
        assert_eq!(d.col_dot(0, &[1.0, 1.0, 1.0, 1.0]), 10.0);
        let mut v = vec![0.0; 4];
        d.col_axpy(1, 2.0, &mut v);
        assert_eq!(v, vec![0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn bit_matrix_matches_dense_semantics() {
        let mut bm = BitMatrix::zeros(100, 3);
        for i in (0..100).step_by(3) {
            bm.set(i, 0);
        }
        for i in 0..50 {
            bm.set(i, 1);
        }
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let expected0: f64 = (0..100).step_by(3).map(|i| i as f64).sum();
        assert_eq!(bm.col_dot(0, &v), expected0);
        assert_eq!(bm.col_mean(1), 0.5);
        assert!((bm.col_std(1) - 0.5).abs() < 1e-12);
        assert_eq!(bm.popcount(2), 0);
        let mut u = vec![0.0; 100];
        bm.col_axpy(1, -1.5, &mut u);
        assert_eq!(u[0], -1.5);
        assert_eq!(u[49], -1.5);
        assert_eq!(u[50], 0.0);
    }

    #[test]
    fn bit_matrix_set_is_idempotent() {
        let mut bm = BitMatrix::zeros(10, 1);
        bm.set(3, 0);
        bm.set(3, 0);
        assert_eq!(bm.popcount(0), 1);
    }

    #[test]
    fn from_columns_roundtrip() {
        let mut a = BitMatrix::zeros(70, 2);
        a.set(0, 0);
        a.set(69, 1);
        let b = BitMatrix::from_columns(70, 2, a.words.clone());
        assert_eq!(a, b);
    }
}
