//! Accuracy metrics used throughout the paper's evaluation (§7.1):
//! R², NRMSE, NMAE, Pearson correlation and variance inflation factors.

use crate::design::Design;
use crate::linalg::{ols_ridge, Matrix};

fn check_lengths(y: &[f64], p: &[f64]) {
    assert_eq!(y.len(), p.len(), "label/prediction length mismatch");
    assert!(!y.is_empty(), "empty metric inputs");
}

/// Coefficient of determination `R² = 1 − SSE/SST`.
pub fn r2(y: &[f64], pred: &[f64]) -> f64 {
    check_lengths(y, pred);
    let mean = y.iter().sum::<f64>() / y.len() as f64;
    let sse: f64 = y.iter().zip(pred).map(|(a, b)| (a - b) * (a - b)).sum();
    let sst: f64 = y.iter().map(|a| (a - mean) * (a - mean)).sum();
    if sst == 0.0 {
        if sse == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - sse / sst
    }
}

/// Normalized root-mean-squared error:
/// `(1/ȳ)·sqrt(Σ(y−p)²/N)`.
pub fn nrmse(y: &[f64], pred: &[f64]) -> f64 {
    check_lengths(y, pred);
    let mean = y.iter().sum::<f64>() / y.len() as f64;
    let mse: f64 = y
        .iter()
        .zip(pred)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        / y.len() as f64;
    mse.sqrt() / mean
}

/// Normalized mean absolute error: `Σ|y−p| / Σy`.
pub fn nmae(y: &[f64], pred: &[f64]) -> f64 {
    check_lengths(y, pred);
    let abs: f64 = y.iter().zip(pred).map(|(a, b)| (a - b).abs()).sum();
    let total: f64 = y.iter().sum();
    abs / total
}

/// Pearson's correlation coefficient.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    check_lengths(a, b);
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        let dx = x - ma;
        let dy = y - mb;
        cov += dx * dy;
        va += dx * dx;
        vb += dy * dy;
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va * vb).sqrt()
    }
}

/// Mean variance inflation factor over a set of selected columns
/// (the paper's Figure 14 quantity).
///
/// For each selected column `j`, regresses it on the other selected
/// columns and computes `VIF_j = 1/(1 − R²_j)`; returns the average.
/// VIFs are clamped at `cap` (collinear selections otherwise produce
/// infinities).
pub fn mean_vif<D: Design>(design: &D, selected: &[usize], cap: f64) -> f64 {
    assert!(selected.len() >= 2, "VIF needs at least two columns");
    let n = design.n_rows();
    let q = selected.len();
    // Materialize the selected columns densely (Q is small).
    let mut cols = Matrix::zeros(n, q);
    for (k, &j) in selected.iter().enumerate() {
        let mut unit = vec![0.0; n];
        design.col_axpy(j, 1.0, &mut unit);
        for i in 0..n {
            cols[(i, k)] = unit[i];
        }
    }
    let mut total = 0.0;
    for k in 0..q {
        // Response: column k; predictors: all others.
        let yk: Vec<f64> = (0..n).map(|i| cols[(i, k)]).collect();
        let mut xo = Matrix::zeros(n, q - 1);
        for i in 0..n {
            let mut c = 0;
            for other in 0..q {
                if other == k {
                    continue;
                }
                xo[(i, c)] = cols[(i, other)];
                c += 1;
            }
        }
        let (w, b0) = ols_ridge(&xo, &yk, 1e-8);
        let pred: Vec<f64> = (0..n)
            .map(|i| b0 + xo.row(i).iter().zip(&w).map(|(a, b)| a * b).sum::<f64>())
            .collect();
        let r = r2(&yk, &pred).clamp(0.0, 1.0 - 1e-12);
        total += (1.0 / (1.0 - r)).min(cap);
    }
    total / q as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::DenseDesign;

    #[test]
    fn perfect_prediction_metrics() {
        let y = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(r2(&y, &y), 1.0);
        assert_eq!(nrmse(&y, &y), 0.0);
        assert_eq!(nmae(&y, &y), 0.0);
        assert!((pearson(&y, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_prediction_has_zero_r2() {
        let y = vec![1.0, 2.0, 3.0];
        let pred = vec![2.0, 2.0, 2.0];
        assert!(r2(&y, &pred).abs() < 1e-12);
    }

    #[test]
    fn nrmse_and_nmae_scale_with_error() {
        let y = vec![10.0, 10.0, 10.0, 10.0];
        let pred = vec![11.0, 9.0, 11.0, 9.0];
        assert!((nrmse(&y, &pred) - 0.1).abs() < 1e-12);
        assert!((nmae(&y, &pred) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn pearson_detects_anticorrelation() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![3.0, 2.0, 1.0];
        assert!((pearson(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn vif_high_for_correlated_low_for_orthogonal() {
        let n = 64;
        // col0, col1 orthogonal-ish; col2 = col0 + tiny noise.
        let mut cols = vec![0.0; n * 3];
        for i in 0..n {
            cols[i] = ((i * 37) % 11) as f64;
            cols[n + i] = ((i * 17) % 7) as f64;
            cols[2 * n + i] = cols[i] + 0.001 * (i as f64).sin();
        }
        let d = DenseDesign::from_columns(n, 3, cols);
        let vif_indep = mean_vif(&d, &[0, 1], 1e6);
        let vif_corr = mean_vif(&d, &[0, 2], 1e6);
        assert!(vif_indep < 2.0, "independent VIF = {vif_indep}");
        assert!(vif_corr > 100.0, "correlated VIF = {vif_corr}");
    }
}
