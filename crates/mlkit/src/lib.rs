//! # apollo-mlkit
//!
//! A self-contained statistics / machine-learning kit for the APOLLO
//! reproduction, playing the role of NumPy + scikit-learn + PyTorch in
//! the paper's tooling:
//!
//! - [`Matrix`] — small dense linear algebra (Cholesky, Jacobi eigen).
//! - [`Design`] — an abstraction over design matrices, with a dense
//!   implementation ([`DenseDesign`]) and a packed binary one
//!   ([`BitMatrix`]) whose coordinate-descent inner loops run on
//!   popcounts over toggle bitmaps.
//! - [`coordinate_descent`] / [`lambda_path`] / [`select_features`] —
//!   penalized regression with [`Penalty::Lasso`], [`Penalty::Ridge`],
//!   [`Penalty::ElasticNet`] and the paper's centerpiece,
//!   [`Penalty::Mcp`] (minimax concave penalty, Zhang 2010), solved by
//!   cyclic coordinate descent with warm-started λ paths, active sets
//!   and strong-rule screening.
//! - [`ols_ridge`] — closed-form (ridge) least squares.
//! - [`KMeans`] — k-means++ clustering (the Simmani baseline).
//! - [`Pca`] — principal component analysis via Jacobi eigendecomposition
//!   (the PRIMAL-PCA baseline).
//! - [`Mlp`] — a small dense neural network trained with Adam (the
//!   PRIMAL-CNN stand-in).
//! - [`Gbt`] — gradient-boosted regression trees (the Lee et al.
//!   \[44\] baseline family).
//! - [`metrics`] — R², NRMSE, NMAE, Pearson correlation and variance
//!   inflation factors, exactly as defined in the paper's §7.1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cd;
pub mod design;
pub mod gbt;
pub mod kmeans;
pub mod linalg;
pub mod metrics;
pub mod nn;
pub mod pca;

pub use cd::{
    coordinate_descent, lambda_max, lambda_path, select_features, select_path_targets, CdOptions,
    CdResult, Penalty,
};
pub use design::{BitMatrix, DenseDesign, Design};
pub use gbt::{Gbt, GbtOptions};
pub use kmeans::KMeans;
pub use linalg::{ols_ridge, Matrix};
pub use nn::{Mlp, MlpOptions};
pub use pca::Pca;
