//! Small dense linear algebra: matrices, Cholesky solves, Jacobi
//! eigendecomposition.

// Lockstep multi-array index loops are intentional throughout this
// module; iterator zips would obscure the hardware/math being expressed.
#![allow(clippy::needless_range_loop)]

use std::fmt;

/// A dense row-major `f64` matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Matrix { rows, cols, data }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of one row.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of one row.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Raw data, row-major.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Matrix-vector product `A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Transposed matrix-vector product `Aᵀ·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != rows`.
    pub fn tr_matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows);
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let xi = x[i];
            for (o, a) in out.iter_mut().zip(self.row(i)) {
                *o += a * xi;
            }
        }
        out
    }

    /// Matrix product `A·B`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions differ");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Cholesky factorization of a symmetric positive-definite matrix:
    /// returns lower-triangular `L` with `L·Lᵀ = A`.
    ///
    /// # Errors
    /// Returns `None` if the matrix is not positive definite (or not
    /// square).
    pub fn cholesky(&self) -> Option<Matrix> {
        if self.rows != self.cols {
            return None;
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return None;
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Some(l)
    }

    /// Solves `A·x = b` for symmetric positive-definite `A` via
    /// Cholesky.
    ///
    /// Returns `None` if the factorization fails.
    pub fn solve_spd(&self, b: &[f64]) -> Option<Vec<f64>> {
        let l = self.cholesky()?;
        let n = self.rows;
        // Forward: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= l[(i, k)] * y[k];
            }
            y[i] = s / l[(i, i)];
        }
        // Back: Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in i + 1..n {
                s -= l[(k, i)] * x[k];
            }
            x[i] = s / l[(i, i)];
        }
        Some(x)
    }

    /// Jacobi eigendecomposition of a symmetric matrix.
    ///
    /// Returns `(eigenvalues, eigenvectors)` with eigenvectors as matrix
    /// columns, sorted by descending eigenvalue.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn symmetric_eigen(&self) -> (Vec<f64>, Matrix) {
        assert_eq!(
            self.rows, self.cols,
            "eigendecomposition needs a square matrix"
        );
        let n = self.rows;
        let mut a = self.clone();
        let mut v = Matrix::identity(n);
        for _sweep in 0..100 {
            // Largest off-diagonal magnitude.
            let mut off = 0.0f64;
            for i in 0..n {
                for j in i + 1..n {
                    off = off.max(a[(i, j)].abs());
                }
            }
            if off < 1e-12 {
                break;
            }
            for p in 0..n {
                for q in p + 1..n {
                    let apq = a[(p, q)];
                    if apq.abs() < 1e-14 {
                        continue;
                    }
                    let app = a[(p, p)];
                    let aqq = a[(q, q)];
                    let theta = 0.5 * (aqq - app) / apq;
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    for k in 0..n {
                        let akp = a[(k, p)];
                        let akq = a[(k, q)];
                        a[(k, p)] = c * akp - s * akq;
                        a[(k, q)] = s * akp + c * akq;
                    }
                    for k in 0..n {
                        let apk = a[(p, k)];
                        let aqk = a[(q, k)];
                        a[(p, k)] = c * apk - s * aqk;
                        a[(q, k)] = s * apk + c * aqk;
                    }
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        let mut order: Vec<usize> = (0..n).collect();
        let evals: Vec<f64> = (0..n).map(|i| a[(i, i)]).collect();
        order.sort_by(|&x, &y| evals[y].partial_cmp(&evals[x]).unwrap());
        let sorted_vals: Vec<f64> = order.iter().map(|&i| evals[i]).collect();
        let mut sorted_vecs = Matrix::zeros(n, n);
        for (new_j, &old_j) in order.iter().enumerate() {
            for i in 0..n {
                sorted_vecs[(i, new_j)] = v[(i, old_j)];
            }
        }
        (sorted_vals, sorted_vecs)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Closed-form ridge regression on a dense design: minimizes
/// `‖y − Xw − b‖² + λ‖w‖²` (intercept unpenalized) and returns
/// `(weights, intercept)`.
///
/// # Panics
/// Panics if dimensions are inconsistent or the normal equations are
/// singular even after regularisation.
pub fn ols_ridge(x: &Matrix, y: &[f64], lambda: f64) -> (Vec<f64>, f64) {
    let n = x.rows();
    let p = x.cols();
    assert_eq!(y.len(), n, "label length mismatch");
    // Center columns and y to handle the intercept.
    let mut xm = vec![0.0; p];
    for i in 0..n {
        for (m, v) in xm.iter_mut().zip(x.row(i)) {
            *m += v;
        }
    }
    for m in xm.iter_mut() {
        *m /= n as f64;
    }
    let ym: f64 = y.iter().sum::<f64>() / n as f64;

    // Gram matrix of centered X plus ridge.
    let mut gram = Matrix::zeros(p, p);
    let mut xty = vec![0.0; p];
    for i in 0..n {
        let row = x.row(i);
        let yc = y[i] - ym;
        for a in 0..p {
            let xa = row[a] - xm[a];
            xty[a] += xa * yc;
            for bcol in a..p {
                gram[(a, bcol)] += xa * (row[bcol] - xm[bcol]);
            }
        }
    }
    for a in 0..p {
        for bcol in 0..a {
            gram[(a, bcol)] = gram[(bcol, a)];
        }
        gram[(a, a)] += lambda.max(1e-10);
    }
    let w = gram
        .solve_spd(&xty)
        .expect("ridge normal equations not positive definite");
    let intercept = ym - w.iter().zip(&xm).map(|(wi, mi)| wi * mi).sum::<f64>();
    (w, intercept)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_and_matmul() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        let b = a.transpose();
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 14.0);
        assert_eq!(c[(0, 1)], 32.0);
        assert_eq!(c[(1, 1)], 77.0);
    }

    #[test]
    fn cholesky_solves() {
        let a = Matrix::from_vec(2, 2, vec![4.0, 2.0, 2.0, 3.0]);
        let x = a.solve_spd(&[8.0, 7.0]).unwrap();
        assert!((x[0] - 1.25).abs() < 1e-12);
        assert!((x[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]);
        assert!(a.cholesky().is_none());
    }

    #[test]
    fn eigen_of_diagonal() {
        let a = Matrix::from_vec(3, 3, vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]);
        let (vals, vecs) = a.symmetric_eigen();
        assert!((vals[0] - 3.0).abs() < 1e-9);
        assert!((vals[1] - 2.0).abs() < 1e-9);
        assert!((vals[2] - 1.0).abs() < 1e-9);
        // First eigenvector is e0.
        assert!((vecs[(0, 0)].abs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn eigen_of_symmetric() {
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let (vals, _) = a.symmetric_eigen();
        assert!((vals[0] - 3.0).abs() < 1e-9);
        assert!((vals[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ridge_recovers_known_line() {
        // y = 3 + 2a - b, noiseless.
        let n = 50;
        let mut data = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let a = (i as f64 * 0.7).sin();
            let b = (i as f64 * 0.3).cos();
            data.push(a);
            data.push(b);
            y.push(3.0 + 2.0 * a - b);
        }
        let x = Matrix::from_vec(n, 2, data);
        let (w, b0) = ols_ridge(&x, &y, 1e-8);
        assert!((w[0] - 2.0).abs() < 1e-5, "w0 = {}", w[0]);
        assert!((w[1] + 1.0).abs() < 1e-5, "w1 = {}", w[1]);
        assert!((b0 - 3.0).abs() < 1e-5, "b = {b0}");
    }
}
