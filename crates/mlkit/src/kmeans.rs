//! K-means clustering with k-means++ initialisation (used by the
//! Simmani baseline to cluster signals by toggle-pattern similarity).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fitted k-means model.
#[derive(Clone, Debug, PartialEq)]
pub struct KMeans {
    /// Cluster centroids, row per cluster.
    pub centroids: Vec<Vec<f64>>,
    /// Assignment of each input point to a cluster.
    pub assignment: Vec<usize>,
    /// Final within-cluster sum of squares.
    pub inertia: f64,
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl KMeans {
    /// Fits `k` clusters to `points` (each point a feature vector of
    /// equal length) with k-means++ seeding.
    ///
    /// # Panics
    /// Panics if `points` is empty, `k` is zero, or rows have unequal
    /// lengths.
    pub fn fit(points: &[Vec<f64>], k: usize, iters: usize, seed: u64) -> KMeans {
        assert!(!points.is_empty(), "no points to cluster");
        assert!(k >= 1, "need at least one cluster");
        let dim = points[0].len();
        assert!(points.iter().all(|p| p.len() == dim), "ragged points");
        let k = k.min(points.len());
        let mut rng = StdRng::seed_from_u64(seed);

        // k-means++ seeding.
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
        centroids.push(points[rng.gen_range(0..points.len())].clone());
        let mut d2: Vec<f64> = points.iter().map(|p| dist2(p, &centroids[0])).collect();
        while centroids.len() < k {
            let total: f64 = d2.iter().sum();
            let next = if total <= 0.0 {
                rng.gen_range(0..points.len())
            } else {
                let mut target = rng.gen_range(0.0..total);
                let mut chosen = points.len() - 1;
                for (i, &d) in d2.iter().enumerate() {
                    target -= d;
                    if target <= 0.0 {
                        chosen = i;
                        break;
                    }
                }
                chosen
            };
            centroids.push(points[next].clone());
            for (i, p) in points.iter().enumerate() {
                d2[i] = d2[i].min(dist2(p, centroids.last().unwrap()));
            }
        }

        // Lloyd iterations.
        let mut assignment = vec![0usize; points.len()];
        let mut inertia = f64::INFINITY;
        for _ in 0..iters {
            // Assign.
            let mut new_inertia = 0.0;
            for (i, p) in points.iter().enumerate() {
                let (best, bd) = centroids
                    .iter()
                    .enumerate()
                    .map(|(c, cent)| (c, dist2(p, cent)))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .unwrap();
                assignment[i] = best;
                new_inertia += bd;
            }
            // Update.
            let mut sums = vec![vec![0.0; dim]; centroids.len()];
            let mut counts = vec![0usize; centroids.len()];
            for (i, p) in points.iter().enumerate() {
                counts[assignment[i]] += 1;
                for (s, v) in sums[assignment[i]].iter_mut().zip(p) {
                    *s += v;
                }
            }
            for (c, sum) in sums.into_iter().enumerate() {
                if counts[c] > 0 {
                    centroids[c] = sum.into_iter().map(|s| s / counts[c] as f64).collect();
                } else {
                    // Re-seed an empty cluster on the farthest point.
                    let far = (0..points.len())
                        .max_by(|&a, &b| {
                            dist2(&points[a], &centroids[assignment[a]])
                                .partial_cmp(&dist2(&points[b], &centroids[assignment[b]]))
                                .unwrap()
                        })
                        .unwrap();
                    centroids[c] = points[far].clone();
                }
            }
            if (inertia - new_inertia).abs() < 1e-12 {
                inertia = new_inertia;
                break;
            }
            inertia = new_inertia;
        }
        KMeans {
            centroids,
            assignment,
            inertia,
        }
    }

    /// For each cluster, the index of the member point closest to the
    /// centroid (the "representative" Simmani selects as a proxy).
    pub fn representatives(&self, points: &[Vec<f64>]) -> Vec<usize> {
        let k = self.centroids.len();
        let mut best: Vec<Option<(usize, f64)>> = vec![None; k];
        for (i, p) in points.iter().enumerate() {
            let c = self.assignment[i];
            let d = dist2(p, &self.centroids[c]);
            if best[c].map(|(_, bd)| d < bd).unwrap_or(true) {
                best[c] = Some((i, d));
            }
        }
        best.into_iter().flatten().map(|(i, _)| i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..20 {
            pts.push(vec![0.0 + 0.01 * i as f64, 0.0]);
            pts.push(vec![10.0 - 0.01 * i as f64, 10.0]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let pts = two_blobs();
        let km = KMeans::fit(&pts, 2, 50, 7);
        // All even indices (blob A) share a cluster, odd (blob B) the other.
        let a = km.assignment[0];
        let b = km.assignment[1];
        assert_ne!(a, b);
        for i in 0..pts.len() {
            let expect = if i % 2 == 0 { a } else { b };
            assert_eq!(km.assignment[i], expect, "point {i}");
        }
    }

    #[test]
    fn representatives_are_members() {
        let pts = two_blobs();
        let km = KMeans::fit(&pts, 2, 50, 7);
        let reps = km.representatives(&pts);
        assert_eq!(reps.len(), 2);
        for r in reps {
            assert!(r < pts.len());
        }
    }

    #[test]
    fn k_clamped_to_points() {
        let pts = vec![vec![1.0], vec![2.0]];
        let km = KMeans::fit(&pts, 10, 10, 1);
        assert_eq!(km.centroids.len(), 2);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let pts = two_blobs();
        let a = KMeans::fit(&pts, 2, 50, 42);
        let b = KMeans::fit(&pts, 2, 50, 42);
        assert_eq!(a.assignment, b.assignment);
    }
}
