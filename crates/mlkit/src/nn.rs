//! A small dense neural network with Adam, standing in for the
//! PRIMAL-CNN baseline (a heavyweight model over *all* input signals).
//!
//! PRIMAL's point in the paper's comparison is that a deep model over
//! every register/signal reaches APOLLO-like accuracy at orders of
//! magnitude higher inference cost; an MLP over hashed full-signal
//! features reproduces both sides of that trade-off.

// Lockstep multi-array index loops are intentional throughout this
// module; iterator zips would obscure the hardware/math being expressed.
#![allow(clippy::needless_range_loop)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Training hyper-parameters for [`Mlp::fit`].
#[derive(Clone, Debug, PartialEq)]
pub struct MlpOptions {
    /// Hidden-layer widths.
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub lr: f64,
    /// Number of passes over the data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// L2 weight decay.
    pub weight_decay: f64,
    /// RNG seed for initialisation and shuffling.
    pub seed: u64,
}

impl Default for MlpOptions {
    fn default() -> Self {
        MlpOptions {
            hidden: vec![64, 32],
            lr: 1e-3,
            epochs: 30,
            batch: 64,
            weight_decay: 1e-5,
            seed: 1,
        }
    }
}

struct Layer {
    w: Vec<f64>, // out x in, row-major
    b: Vec<f64>,
    n_in: usize,
    n_out: usize,
    // Adam state
    mw: Vec<f64>,
    vw: Vec<f64>,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Layer {
    fn new(n_in: usize, n_out: usize, rng: &mut StdRng) -> Self {
        let scale = (2.0 / n_in as f64).sqrt();
        let w = (0..n_in * n_out)
            .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
            .collect();
        Layer {
            w,
            b: vec![0.0; n_out],
            n_in,
            n_out,
            mw: vec![0.0; n_in * n_out],
            vw: vec![0.0; n_in * n_out],
            mb: vec![0.0; n_out],
            vb: vec![0.0; n_out],
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.n_out {
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            let s: f64 = row.iter().zip(x).map(|(a, b)| a * b).sum();
            out.push(s + self.b[o]);
        }
    }
}

/// A multilayer perceptron regressor (ReLU activations, scalar output).
pub struct Mlp {
    layers: Vec<Layer>,
    /// Input standardization.
    x_mean: Vec<f64>,
    x_std: Vec<f64>,
    y_mean: f64,
    y_std: f64,
    adam_t: u64,
}

impl std::fmt::Debug for Mlp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let dims: Vec<usize> = self.layers.iter().map(|l| l.n_out).collect();
        write!(f, "Mlp(in={}, dims={:?})", self.layers[0].n_in, dims)
    }
}

impl Mlp {
    /// Trains an MLP on row-major inputs `x` (`n × d`) and targets `y`.
    ///
    /// # Panics
    /// Panics on dimension mismatches or empty data.
    pub fn fit(x: &[f64], n: usize, d: usize, y: &[f64], opts: &MlpOptions) -> Mlp {
        assert_eq!(x.len(), n * d, "input length mismatch");
        assert_eq!(y.len(), n, "target length mismatch");
        assert!(n > 0 && d > 0, "empty training data");
        let mut rng = StdRng::seed_from_u64(opts.seed);

        // Standardize inputs and target.
        let mut x_mean = vec![0.0; d];
        let mut x_std = vec![0.0; d];
        for i in 0..n {
            for j in 0..d {
                x_mean[j] += x[i * d + j];
            }
        }
        for m in x_mean.iter_mut() {
            *m /= n as f64;
        }
        for i in 0..n {
            for j in 0..d {
                let v = x[i * d + j] - x_mean[j];
                x_std[j] += v * v;
            }
        }
        for s in x_std.iter_mut() {
            *s = (*s / n as f64).sqrt().max(1e-9);
        }
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let y_std = (y.iter().map(|v| (v - y_mean) * (v - y_mean)).sum::<f64>() / n as f64)
            .sqrt()
            .max(1e-9);

        // Build layers.
        let mut dims = vec![d];
        dims.extend_from_slice(&opts.hidden);
        dims.push(1);
        let layers: Vec<Layer> = dims
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], &mut rng))
            .collect();
        let mut mlp = Mlp {
            layers,
            x_mean,
            x_std,
            y_mean,
            y_std,
            adam_t: 0,
        };

        let mut order: Vec<usize> = (0..n).collect();
        let mut xin = vec![0.0; d];
        for _epoch in 0..opts.epochs {
            // Shuffle.
            for i in (1..n).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for chunk in order.chunks(opts.batch) {
                mlp.adam_t += 1;
                // Accumulate gradients over the batch.
                let mut grads: Vec<(Vec<f64>, Vec<f64>)> = mlp
                    .layers
                    .iter()
                    .map(|l| (vec![0.0; l.w.len()], vec![0.0; l.b.len()]))
                    .collect();
                for &i in chunk {
                    for j in 0..d {
                        xin[j] = (x[i * d + j] - mlp.x_mean[j]) / mlp.x_std[j];
                    }
                    let yt = (y[i] - mlp.y_mean) / mlp.y_std;
                    mlp.backprop(&xin, yt, &mut grads);
                }
                let scale = 1.0 / chunk.len() as f64;
                mlp.adam_step(&grads, scale, opts);
            }
        }
        mlp
    }

    /// Forward + backward for one sample; adds gradients into `grads`.
    fn backprop(&self, x: &[f64], yt: f64, grads: &mut [(Vec<f64>, Vec<f64>)]) {
        // Forward, keeping activations.
        let mut acts: Vec<Vec<f64>> = vec![x.to_vec()];
        let mut pre: Vec<Vec<f64>> = Vec::with_capacity(self.layers.len());
        let mut buf = Vec::new();
        for (li, layer) in self.layers.iter().enumerate() {
            layer.forward(acts.last().unwrap(), &mut buf);
            pre.push(buf.clone());
            let is_last = li + 1 == self.layers.len();
            let act: Vec<f64> = if is_last {
                buf.clone()
            } else {
                buf.iter().map(|v| v.max(0.0)).collect()
            };
            acts.push(act);
        }
        let pred = acts.last().unwrap()[0];
        // dL/dpred for 0.5*(pred-y)^2
        let mut delta = vec![pred - yt];
        for li in (0..self.layers.len()).rev() {
            let layer = &self.layers[li];
            let a_in = &acts[li];
            let (gw, gb) = &mut grads[li];
            for o in 0..layer.n_out {
                let dlt = delta[o];
                gb[o] += dlt;
                let row = &mut gw[o * layer.n_in..(o + 1) * layer.n_in];
                for (g, a) in row.iter_mut().zip(a_in) {
                    *g += dlt * a;
                }
            }
            if li > 0 {
                let mut next_delta = vec![0.0; layer.n_in];
                for o in 0..layer.n_out {
                    let dlt = delta[o];
                    let row = &layer.w[o * layer.n_in..(o + 1) * layer.n_in];
                    for (nd, w) in next_delta.iter_mut().zip(row) {
                        *nd += dlt * w;
                    }
                }
                // ReLU gate of the previous layer.
                for (nd, p) in next_delta.iter_mut().zip(&pre[li - 1]) {
                    if *p <= 0.0 {
                        *nd = 0.0;
                    }
                }
                delta = next_delta;
            }
        }
    }

    fn adam_step(&mut self, grads: &[(Vec<f64>, Vec<f64>)], scale: f64, opts: &MlpOptions) {
        let b1: f64 = 0.9;
        let b2: f64 = 0.999;
        let eps = 1e-8;
        let t = self.adam_t as f64;
        let bc1 = 1.0 - b1.powf(t);
        let bc2 = 1.0 - b2.powf(t);
        for (layer, (gw, gb)) in self.layers.iter_mut().zip(grads) {
            for k in 0..layer.w.len() {
                let g = gw[k] * scale + opts.weight_decay * layer.w[k];
                layer.mw[k] = b1 * layer.mw[k] + (1.0 - b1) * g;
                layer.vw[k] = b2 * layer.vw[k] + (1.0 - b2) * g * g;
                let mhat = layer.mw[k] / bc1;
                let vhat = layer.vw[k] / bc2;
                layer.w[k] -= opts.lr * mhat / (vhat.sqrt() + eps);
            }
            for k in 0..layer.b.len() {
                let g = gb[k] * scale;
                layer.mb[k] = b1 * layer.mb[k] + (1.0 - b1) * g;
                layer.vb[k] = b2 * layer.vb[k] + (1.0 - b2) * g * g;
                let mhat = layer.mb[k] / bc1;
                let vhat = layer.vb[k] / bc2;
                layer.b[k] -= opts.lr * mhat / (vhat.sqrt() + eps);
            }
        }
    }

    /// Predicts a single row-major sample.
    pub fn predict_one(&self, x: &[f64]) -> f64 {
        let d = self.x_mean.len();
        assert_eq!(x.len(), d, "feature length mismatch");
        let mut cur: Vec<f64> = (0..d)
            .map(|j| (x[j] - self.x_mean[j]) / self.x_std[j])
            .collect();
        let mut buf = Vec::new();
        for (li, layer) in self.layers.iter().enumerate() {
            layer.forward(&cur, &mut buf);
            let is_last = li + 1 == self.layers.len();
            cur = if is_last {
                buf.clone()
            } else {
                buf.iter().map(|v| v.max(0.0)).collect()
            };
        }
        cur[0] * self.y_std + self.y_mean
    }

    /// Predicts row-major samples.
    pub fn predict(&self, x: &[f64], n: usize) -> Vec<f64> {
        let d = self.x_mean.len();
        assert_eq!(x.len(), n * d, "input length mismatch");
        (0..n)
            .map(|i| self.predict_one(&x[i * d..(i + 1) * d]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2;

    #[test]
    fn learns_linear_function() {
        let n = 400;
        let d = 3;
        let mut x = Vec::with_capacity(n * d);
        let mut y = Vec::with_capacity(n);
        let mut seed = 5u64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..n {
            let a = rnd();
            let b = rnd();
            let c = rnd();
            x.extend_from_slice(&[a, b, c]);
            y.push(2.0 * a - 3.0 * b + 0.5 * c + 1.0);
        }
        let mlp = Mlp::fit(
            &x,
            n,
            d,
            &y,
            &MlpOptions {
                epochs: 60,
                ..MlpOptions::default()
            },
        );
        let pred = mlp.predict(&x, n);
        let score = r2(&y, &pred);
        assert!(score > 0.98, "R² = {score}");
    }

    #[test]
    fn learns_nonlinear_function() {
        let n = 600;
        let d = 2;
        let mut x = Vec::with_capacity(n * d);
        let mut y = Vec::with_capacity(n);
        let mut seed = 9u64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..n {
            let a = rnd() * 2.0 - 1.0;
            let b = rnd() * 2.0 - 1.0;
            x.extend_from_slice(&[a, b]);
            y.push(a.abs() + (b * 2.0).max(0.0));
        }
        let mlp = Mlp::fit(
            &x,
            n,
            d,
            &y,
            &MlpOptions {
                epochs: 120,
                ..MlpOptions::default()
            },
        );
        let pred = mlp.predict(&x, n);
        let score = r2(&y, &pred);
        assert!(score > 0.9, "R² = {score}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let x = vec![0.0, 1.0, 1.0, 0.0, 0.5, 0.5];
        let y = vec![1.0, 2.0, 1.5];
        let a = Mlp::fit(&x, 3, 2, &y, &MlpOptions::default());
        let b = Mlp::fit(&x, 3, 2, &y, &MlpOptions::default());
        assert_eq!(a.predict_one(&[0.3, 0.7]), b.predict_one(&[0.3, 0.7]));
    }
}
