//! Differential fuzzing of the compiled simulator against an
//! independent, naive reference interpreter of the RTL semantics.
//!
//! Random netlists are generated with every node kind (including gated
//! clocks, registers and synchronous memories), then simulated for many
//! cycles with random inputs; every node's value must match the
//! reference on every cycle. The reference interpreter is written
//! directly from the `Op` documentation, with an explicit two-phase
//! commit — precisely the semantics a simulator can get subtly wrong
//! (e.g. register-chain commit ordering).

#![allow(clippy::needless_range_loop)]

use apollo_rtl::{CapModel, ClockId, NetlistBuilder, Netlist, NodeId, Op, Unit, CLOCK_ROOT};
use apollo_sim::{PowerConfig, Simulator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Naive reference interpreter.
struct Reference<'a> {
    netlist: &'a Netlist,
    values: Vec<u64>,
    mems: Vec<Vec<u64>>,
}

fn mask_of(w: u8) -> u64 {
    if w == 64 {
        u64::MAX
    } else {
        (1 << w) - 1
    }
}

impl<'a> Reference<'a> {
    fn new(netlist: &'a Netlist) -> Self {
        let mut values = vec![0u64; netlist.len()];
        for (i, node) in netlist.nodes().iter().enumerate() {
            match node.op {
                Op::Const(v) => values[i] = v,
                Op::Reg { init, .. } => values[i] = init,
                _ => {}
            }
        }
        let mems = netlist
            .memories()
            .iter()
            .map(|m| {
                let mut d = vec![0u64; m.words as usize];
                d[..m.init.len()].copy_from_slice(&m.init);
                d
            })
            .collect();
        let mut r = Reference {
            netlist,
            values,
            mems,
        };
        r.eval_comb();
        r
    }

    fn val(&self, id: NodeId) -> u64 {
        self.values[id.index()]
    }

    fn eval_comb(&mut self) {
        for i in 0..self.netlist.len() {
            let node = &self.netlist.nodes()[i];
            let w = node.width;
            let m = mask_of(w);
            let v = match node.op {
                Op::Input | Op::Const(_) | Op::Reg { .. } | Op::MemRead { .. } => continue,
                Op::Not(a) => !self.val(a) & m,
                Op::And(a, b) => self.val(a) & self.val(b),
                Op::Or(a, b) => self.val(a) | self.val(b),
                Op::Xor(a, b) => self.val(a) ^ self.val(b),
                Op::Add(a, b) => self.val(a).wrapping_add(self.val(b)) & m,
                Op::Sub(a, b) => self.val(a).wrapping_sub(self.val(b)) & m,
                Op::Mul(a, b) => self.val(a).wrapping_mul(self.val(b)) & m,
                Op::Udiv(a, b) => self.val(a).checked_div(self.val(b)).unwrap_or(m),
                Op::Eq(a, b) => (self.val(a) == self.val(b)) as u64,
                Op::Ult(a, b) => (self.val(a) < self.val(b)) as u64,
                Op::Shl(a, s) => {
                    let amt = self.val(s);
                    if amt >= w as u64 {
                        0
                    } else {
                        (self.val(a) << amt) & m
                    }
                }
                Op::Shr(a, s) => {
                    let amt = self.val(s);
                    if amt >= 64 {
                        0
                    } else {
                        self.val(a) >> amt
                    }
                }
                Op::Mux { sel, t, f } => {
                    if self.val(sel) != 0 {
                        self.val(t)
                    } else {
                        self.val(f)
                    }
                }
                Op::Slice { src, lo } => (self.val(src) >> lo) & m,
                Op::Concat { hi, lo } => {
                    let lo_w = self.netlist.node(lo).width;
                    (self.val(hi) << lo_w) | self.val(lo)
                }
                Op::ReduceOr(a) => (self.val(a) != 0) as u64,
                Op::ReduceAnd(a) => {
                    let aw = self.netlist.node(a).width;
                    (self.val(a) == mask_of(aw)) as u64
                }
                Op::ReduceXor(a) => (self.val(a).count_ones() as u64) & 1,
                Op::GatedClock { enable } => self.val(enable),
            };
            self.values[i] = v;
        }
    }

    /// Advances one edge: all sequential elements sample pre-edge state
    /// simultaneously.
    fn step(&mut self, inputs: &[(NodeId, u64)]) {
        // Domain enables from the current (pre-edge) state.
        let enables: Vec<bool> = (0..self.netlist.clock_domains())
            .map(|d| match self.netlist.clock_node(ClockId::from_index(d)) {
                None => true,
                Some(n) => self.val(n) != 0,
            })
            .collect();
        // Stage every sequential update from pre-edge values.
        let mut staged: Vec<(usize, u64)> = Vec::new();
        for (i, node) in self.netlist.nodes().iter().enumerate() {
            match node.op {
                Op::Reg { next, clock, .. }
                    if enables[clock.index()] => {
                        let nv = self.val(next.unwrap()) & mask_of(node.width);
                        staged.push((i, nv));
                    }
                Op::MemRead { mem, addr, en }
                    if self.val(en) != 0 => {
                        let words = self.netlist.memory(mem).words as u64;
                        let a = (self.val(addr) % words) as usize;
                        // Write-first: apply writes below before reads —
                        // stage the *post-write* word by computing writes
                        // first. Collect now, fix later.
                        staged.push((i, u64::MAX)); // placeholder, resolved after writes
                        let _ = a;
                    }
                _ => {}
            }
        }
        // Memory writes (pre-edge operands).
        for (mi, m) in self.netlist.memories().iter().enumerate() {
            for wp in &m.writes {
                if self.val(wp.en) != 0 {
                    let a = (self.val(wp.addr) % m.words as u64) as usize;
                    self.mems[mi][a] = self.val(wp.data);
                }
            }
        }
        // Resolve read-port placeholders (write-first semantics).
        for entry in staged.iter_mut() {
            let (i, ref mut v) = *entry;
            if let Op::MemRead { mem, addr, .. } = self.netlist.nodes()[i].op {
                let words = self.netlist.memory(mem).words as u64;
                let a = (self.val(addr) % words) as usize;
                *v = self.mems[mem.index()][a];
            }
        }
        // Commit.
        for (i, v) in staged {
            self.values[i] = v;
        }
        // Inputs and combinational settle.
        for &(node, v) in inputs {
            self.values[node.index()] = v;
        }
        self.eval_comb();
    }
}

/// Generates a random but well-formed netlist with `n_nodes` nodes.
fn random_netlist(seed: u64, n_nodes: usize) -> (Netlist, Vec<NodeId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetlistBuilder::new("fuzz");
    let mut nodes: Vec<NodeId> = Vec::new();
    let mut inputs = Vec::new();
    let mut regs: Vec<NodeId> = Vec::new();

    // Seed inputs.
    for k in 0..3 {
        let w = rng.gen_range(1..=64);
        let i = b.input(w, &format!("in{k}"), Unit::Control);
        nodes.push(i);
        inputs.push(i);
    }
    // A gated domain driven by input 0's low bit.
    let en = b.bit(inputs[0], 0);
    nodes.push(en);
    let gclk = b.clock_gate(en, "gclk", Unit::ClockTree);

    // Up-front registers (their nexts are connected at the end).
    for k in 0..6 {
        let w = rng.gen_range(1..=64);
        let clock = if k % 2 == 0 { CLOCK_ROOT } else { gclk };
        let r = b.reg(w, rng.gen::<u64>() & mask_of(w), clock, &format!("r{k}"), Unit::Alu);
        nodes.push(r);
        regs.push(r);
    }
    // A memory with one read and one write port.
    let mem = b.memory(16, 16, "m", Unit::LoadStore);
    let addr_src = nodes[rng.gen_range(0..nodes.len())];
    let addr = b.trunc(addr_src, b.width(addr_src).min(8));
    let en_bit = b.bit(inputs[1], 0);
    let port = b.mem_read(mem, addr, en_bit, "rp", Unit::LoadStore);
    nodes.push(port);

    // Random combinational ops.
    for _ in 0..n_nodes {
        let pick = |rng: &mut StdRng, nodes: &Vec<NodeId>| nodes[rng.gen_range(0..nodes.len())];
        let a = pick(&mut rng, &nodes);
        let n = match rng.gen_range(0..14) {
            0 => b.not(a),
            1..=6 => {
                // width-matched binary op
                let wa = b.width(a);
                let other = pick(&mut rng, &nodes);
                let bb = if b.width(other) == wa {
                    other
                } else if b.width(other) < wa {
                    b.zext(other, wa)
                } else {
                    b.trunc(other, wa)
                };
                match rng.gen_range(0..7) {
                    0 => b.and(a, bb),
                    1 => b.or(a, bb),
                    2 => b.xor(a, bb),
                    3 => b.add(a, bb),
                    4 => b.sub(a, bb),
                    5 => b.mul(a, bb),
                    _ => b.udiv(a, bb),
                }
            }
            7 => {
                let wa = b.width(a);
                let other = pick(&mut rng, &nodes);
                let bb = if b.width(other) == wa {
                    other
                } else {
                    let bit0 = b.bit(other, 0);
                    b.zext(bit0, wa)
                };
                b.eq(a, bb)
            }
            8 => {
                let amt = pick(&mut rng, &nodes);
                let amt6 = b.trunc(amt, b.width(amt).min(6));
                let amt_w = b.zext(amt6, b.width(a).clamp(6, 64));
                let amt_m = b.trunc(amt_w, b.width(a).min(b.width(amt_w)));
                if rng.gen_bool(0.5) {
                    b.shl(a, amt_m)
                } else {
                    b.shr(a, amt_m)
                }
            }
            9 => {
                let wa = b.width(a);
                let lo = rng.gen_range(0..wa);
                let w = rng.gen_range(1..=wa - lo);
                b.slice(a, lo, w)
            }
            10 => {
                let other = pick(&mut rng, &nodes);
                if b.width(a) + b.width(other) <= 64 {
                    b.concat(a, other)
                } else {
                    b.reduce_or(a)
                }
            }
            11 => {
                let sel_src = pick(&mut rng, &nodes);
                let sel = b.bit(sel_src, 0);
                let t = pick(&mut rng, &nodes);
                let wt = b.width(t);
                let f0 = pick(&mut rng, &nodes);
                let f = if b.width(f0) == wt {
                    f0
                } else if b.width(f0) < wt {
                    b.zext(f0, wt)
                } else {
                    b.trunc(f0, wt)
                };
                b.mux(sel, t, f)
            }
            12 => b.reduce_and(a),
            _ => b.reduce_xor(a),
        };
        nodes.push(n);
    }
    // Connect register nexts to random width-matched nodes.
    for &r in &regs {
        let wr = b.width(r);
        let src = nodes[rng.gen_range(0..nodes.len())];
        let n = if b.width(src) == wr {
            src
        } else if b.width(src) < wr {
            b.zext(src, wr)
        } else {
            b.trunc(src, wr)
        };
        b.connect(r, n);
    }
    // A memory write port driven by random nodes.
    let wen = b.bit(inputs[2], 0);
    let waddr_src = nodes[rng.gen_range(0..nodes.len())];
    let waddr = b.trunc(waddr_src, b.width(waddr_src).min(8));
    let wdata_src = nodes[rng.gen_range(0..nodes.len())];
    let wdata = if b.width(wdata_src) == 16 {
        wdata_src
    } else if b.width(wdata_src) < 16 {
        b.zext(wdata_src, 16)
    } else {
        b.trunc(wdata_src, 16)
    };
    b.mem_write(mem, wen, waddr, wdata);

    (b.build().unwrap(), inputs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every node of a random netlist matches the reference interpreter
    /// on every cycle of a random stimulus.
    #[test]
    fn simulator_matches_reference(seed in any::<u64>(), n_nodes in 20usize..120) {
        let (netlist, inputs) = random_netlist(seed, n_nodes);
        let cap = CapModel::default().annotate(&netlist);
        let mut sim = Simulator::new(&netlist, &cap, PowerConfig::default());
        let mut reference = Reference::new(&netlist);

        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
        for cycle in 0..60 {
            let stimulus: Vec<(NodeId, u64)> = inputs
                .iter()
                .map(|&i| {
                    let w = netlist.node(i).width;
                    (i, rng.gen::<u64>() & mask_of(w))
                })
                .collect();
            for &(node, v) in &stimulus {
                sim.set_input(node, v);
            }
            sim.step();
            reference.step(&stimulus);
            for i in 0..netlist.len() {
                let id = NodeId::from_index(i);
                prop_assert_eq!(
                    sim.value(id),
                    reference.val(id),
                    "cycle {} node {} ({:?})",
                    cycle,
                    netlist.display_name(id),
                    netlist.node(id).op
                );
            }
        }
    }
}
