//! Differential fuzzing of the compiled simulator against an
//! independent, naive reference interpreter of the RTL semantics.
//!
//! Random netlists are generated with every node kind (including gated
//! clocks, registers and synchronous memories), then simulated for many
//! cycles with random inputs; every node's value must match the
//! reference on every cycle. The reference interpreter is written
//! directly from the `Op` documentation, with an explicit two-phase
//! commit — precisely the semantics a simulator can get subtly wrong
//! (e.g. register-chain commit ordering).

#![allow(clippy::needless_range_loop)]

mod common;

use apollo_rtl::{CapModel, ClockId, Netlist, NodeId, Op};
use apollo_sim::{PowerConfig, Simulator};
use common::{mask_of, random_netlist};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Naive reference interpreter.
struct Reference<'a> {
    netlist: &'a Netlist,
    values: Vec<u64>,
    mems: Vec<Vec<u64>>,
}

impl<'a> Reference<'a> {
    fn new(netlist: &'a Netlist) -> Self {
        let mut values = vec![0u64; netlist.len()];
        for (i, node) in netlist.nodes().iter().enumerate() {
            match node.op {
                Op::Const(v) => values[i] = v,
                Op::Reg { init, .. } => values[i] = init,
                _ => {}
            }
        }
        let mems = netlist
            .memories()
            .iter()
            .map(|m| {
                let mut d = vec![0u64; m.words as usize];
                d[..m.init.len()].copy_from_slice(&m.init);
                d
            })
            .collect();
        let mut r = Reference {
            netlist,
            values,
            mems,
        };
        r.eval_comb();
        r
    }

    fn val(&self, id: NodeId) -> u64 {
        self.values[id.index()]
    }

    fn eval_comb(&mut self) {
        for i in 0..self.netlist.len() {
            let node = &self.netlist.nodes()[i];
            let w = node.width;
            let m = mask_of(w);
            let v = match node.op {
                Op::Input | Op::Const(_) | Op::Reg { .. } | Op::MemRead { .. } => continue,
                Op::Not(a) => !self.val(a) & m,
                Op::And(a, b) => self.val(a) & self.val(b),
                Op::Or(a, b) => self.val(a) | self.val(b),
                Op::Xor(a, b) => self.val(a) ^ self.val(b),
                Op::Add(a, b) => self.val(a).wrapping_add(self.val(b)) & m,
                Op::Sub(a, b) => self.val(a).wrapping_sub(self.val(b)) & m,
                Op::Mul(a, b) => self.val(a).wrapping_mul(self.val(b)) & m,
                Op::Udiv(a, b) => self.val(a).checked_div(self.val(b)).unwrap_or(m),
                Op::Eq(a, b) => (self.val(a) == self.val(b)) as u64,
                Op::Ult(a, b) => (self.val(a) < self.val(b)) as u64,
                Op::Shl(a, s) => {
                    let amt = self.val(s);
                    if amt >= w as u64 {
                        0
                    } else {
                        (self.val(a) << amt) & m
                    }
                }
                Op::Shr(a, s) => {
                    let amt = self.val(s);
                    if amt >= 64 {
                        0
                    } else {
                        self.val(a) >> amt
                    }
                }
                Op::Mux { sel, t, f } => {
                    if self.val(sel) != 0 {
                        self.val(t)
                    } else {
                        self.val(f)
                    }
                }
                Op::Slice { src, lo } => (self.val(src) >> lo) & m,
                Op::Concat { hi, lo } => {
                    let lo_w = self.netlist.node(lo).width;
                    (self.val(hi) << lo_w) | self.val(lo)
                }
                Op::ReduceOr(a) => (self.val(a) != 0) as u64,
                Op::ReduceAnd(a) => {
                    let aw = self.netlist.node(a).width;
                    (self.val(a) == mask_of(aw)) as u64
                }
                Op::ReduceXor(a) => (self.val(a).count_ones() as u64) & 1,
                Op::GatedClock { enable } => self.val(enable),
            };
            self.values[i] = v;
        }
    }

    /// Advances one edge: all sequential elements sample pre-edge state
    /// simultaneously.
    fn step(&mut self, inputs: &[(NodeId, u64)]) {
        // Domain enables from the current (pre-edge) state.
        let enables: Vec<bool> = (0..self.netlist.clock_domains())
            .map(|d| match self.netlist.clock_node(ClockId::from_index(d)) {
                None => true,
                Some(n) => self.val(n) != 0,
            })
            .collect();
        // Stage every sequential update from pre-edge values.
        let mut staged: Vec<(usize, u64)> = Vec::new();
        for (i, node) in self.netlist.nodes().iter().enumerate() {
            match node.op {
                Op::Reg { next, clock, .. } if enables[clock.index()] => {
                    let nv = self.val(next.unwrap()) & mask_of(node.width);
                    staged.push((i, nv));
                }
                Op::MemRead { mem, addr, en } if self.val(en) != 0 => {
                    let words = self.netlist.memory(mem).words as u64;
                    let a = (self.val(addr) % words) as usize;
                    // Write-first: apply writes below before reads —
                    // stage the *post-write* word by computing writes
                    // first. Collect now, fix later.
                    staged.push((i, u64::MAX)); // placeholder, resolved after writes
                    let _ = a;
                }
                _ => {}
            }
        }
        // Memory writes (pre-edge operands).
        for (mi, m) in self.netlist.memories().iter().enumerate() {
            for wp in &m.writes {
                if self.val(wp.en) != 0 {
                    let a = (self.val(wp.addr) % m.words as u64) as usize;
                    self.mems[mi][a] = self.val(wp.data);
                }
            }
        }
        // Resolve read-port placeholders (write-first semantics).
        for entry in staged.iter_mut() {
            let (i, ref mut v) = *entry;
            if let Op::MemRead { mem, addr, .. } = self.netlist.nodes()[i].op {
                let words = self.netlist.memory(mem).words as u64;
                let a = (self.val(addr) % words) as usize;
                *v = self.mems[mem.index()][a];
            }
        }
        // Commit.
        for (i, v) in staged {
            self.values[i] = v;
        }
        // Inputs and combinational settle.
        for &(node, v) in inputs {
            self.values[node.index()] = v;
        }
        self.eval_comb();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every node of a random netlist — spanning several gated clock
    /// domains and multi-port SRAM macros — matches the reference
    /// interpreter on every cycle of a random stimulus. Failures shrink
    /// toward small node counts and few domains/memories.
    #[test]
    fn simulator_matches_reference(
        seed in any::<u64>(),
        n_nodes in 20usize..120,
        n_domains in 1usize..5,
        n_mems in 1usize..4,
    ) {
        let (netlist, inputs) = random_netlist(seed, n_nodes, n_domains, n_mems);
        let cap = CapModel::default().annotate(&netlist);
        let mut sim = Simulator::new(&netlist, &cap, PowerConfig::default());
        let mut reference = Reference::new(&netlist);

        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
        for cycle in 0..60 {
            let stimulus: Vec<(NodeId, u64)> = inputs
                .iter()
                .map(|&i| {
                    let w = netlist.node(i).width;
                    (i, rng.gen::<u64>() & mask_of(w))
                })
                .collect();
            for &(node, v) in &stimulus {
                sim.set_input(node, v);
            }
            sim.step();
            reference.step(&stimulus);
            for i in 0..netlist.len() {
                let id = NodeId::from_index(i);
                prop_assert_eq!(
                    sim.value(id),
                    reference.val(id),
                    "cycle {} node {} ({:?})",
                    cycle,
                    netlist.display_name(id),
                    netlist.node(id).op
                );
            }
        }
    }
}
