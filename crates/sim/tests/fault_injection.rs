//! Differential and determinism tests for the fault-injection layer.
//!
//! Contracts under test:
//! 1. An **empty** fault plan is bit-exact with a plan-less simulator
//!    in every observable (values, toggle bits, all power components),
//!    at every thread count.
//! 2. A **seeded** plan replays bit-identically: the same seed gives
//!    byte-identical serialized fault reports — and identical values
//!    and power — at 1, 2 and 4 threads.
//! 3. Stuck-at faults actually pin bits over their window and release
//!    cleanly; transient flips land at plausible rates.

mod common;

use apollo_rtl::{CapModel, NetlistBuilder, Unit, CLOCK_ROOT};
use apollo_sim::{FaultPlan, PowerConfig, Simulator, StuckAtFault};
use common::{mask_of, random_netlist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn drive_random(
    seed: u64,
    cycles: usize,
    sims: &mut [&mut Simulator<'_>],
    inputs: &[apollo_rtl::NodeId],
    widths: &[u8],
) {
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..cycles {
        let stimulus: Vec<u64> = widths
            .iter()
            .map(|&w| rng.gen::<u64>() & mask_of(w))
            .collect();
        for sim in sims.iter_mut() {
            for (k, &i) in inputs.iter().enumerate() {
                sim.set_input(i, stimulus[k]);
            }
            sim.step();
        }
    }
}

#[test]
fn empty_plan_is_bit_exact_with_planless_sim() {
    for seed in 0..4u64 {
        let (nl, inputs) = random_netlist(900 + seed, 120, 2, 2);
        let widths: Vec<u8> = inputs.iter().map(|&i| nl.node(i).width).collect();
        let cap = CapModel::default().annotate(&nl);
        let empty = FaultPlan::empty();
        let mut plain = Simulator::new(&nl, &cap, PowerConfig::default());
        let mut faulted =
            Simulator::with_faults(&nl, &cap, PowerConfig::default(), 1, Some(&empty)).unwrap();
        let mut faulted_mt =
            Simulator::with_faults(&nl, &cap, PowerConfig::default(), 2, Some(&empty)).unwrap();

        let mut rng = StdRng::seed_from_u64(7 + seed);
        for cycle in 0..100 {
            let stim: Vec<u64> = widths
                .iter()
                .map(|&w| rng.gen::<u64>() & mask_of(w))
                .collect();
            for sim in [&mut plain, &mut faulted, &mut faulted_mt] {
                for (k, &i) in inputs.iter().enumerate() {
                    sim.set_input(i, stim[k]);
                }
                sim.step();
            }
            for (i, _) in nl.nodes().iter().enumerate() {
                let id = apollo_rtl::NodeId::from_index(i);
                assert_eq!(plain.value(id), faulted.value(id), "cycle {cycle} node {i}");
            }
            assert_eq!(plain.toggles(), faulted.toggles(), "cycle {cycle}");
            assert_eq!(plain.toggles(), faulted_mt.toggles(), "cycle {cycle}");
            assert_eq!(plain.power(), faulted.power(), "cycle {cycle}");
            assert_eq!(plain.power(), faulted_mt.power(), "cycle {cycle}");
        }
        let report = faulted.fault_report().expect("plan attached");
        assert!(report.events.is_empty(), "empty plan injected: {report:?}");
    }
}

#[test]
fn seeded_plan_replays_identically_across_runs_and_threads() {
    let (nl, inputs) = random_netlist(41, 150, 3, 2);
    let widths: Vec<u8> = inputs.iter().map(|&i| nl.node(i).width).collect();
    let cap = CapModel::default().annotate(&nl);
    let plan = FaultPlan {
        seed: 0xDEAD_BEEF,
        stuck_at: vec![
            StuckAtFault {
                signal: "r0".into(),
                bit: 0,
                value: true,
                from_cycle: 10,
                to_cycle: 60,
            },
            StuckAtFault {
                signal: "r1".into(),
                bit: 2,
                value: false,
                from_cycle: 30,
                to_cycle: u64::MAX,
            },
        ],
        reg_flip_rate: 0.02,
        mem_flip_rate: 0.02,
    };

    let run = |threads: usize| {
        let mut sim =
            Simulator::with_faults(&nl, &cap, PowerConfig::default(), threads, Some(&plan))
                .unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let mut power_trace = Vec::new();
        for _ in 0..120 {
            for (k, &i) in inputs.iter().enumerate() {
                sim.set_input(i, rng.gen::<u64>() & mask_of(widths[k]));
            }
            sim.step();
            power_trace.push(sim.power().total.to_bits());
        }
        let report = sim.fault_report().unwrap();
        (serde_json::to_string(&report).unwrap(), power_trace)
    };

    let (report_1, power_1) = run(1);
    let (report_1b, power_1b) = run(1);
    let (report_2, power_2) = run(2);
    let (report_4, power_4) = run(4);
    assert_eq!(report_1, report_1b, "same seed, same thread count");
    assert_eq!(report_1, report_2, "1 vs 2 threads");
    assert_eq!(report_1, report_4, "1 vs 4 threads");
    assert_eq!(power_1, power_1b);
    assert_eq!(power_1, power_2, "power must be bit-identical under faults");
    assert_eq!(power_1, power_4);

    // The plan is non-trivial: it actually injected something.
    let report: apollo_sim::FaultReport = serde_json::from_str(&report_1).unwrap();
    assert!(
        report.reg_flips > 0,
        "no register flips at 2% over 120 cycles"
    );
    assert!(report.stuck_cycles > 0);
    assert!(!report.events.is_empty());
}

#[test]
fn stuck_at_pins_bit_over_window_and_releases() {
    let mut b = NetlistBuilder::new("t");
    let r = b.reg(8, 0, CLOCK_ROOT, "count", Unit::Control);
    let one = b.constant(1, 8);
    let n = b.add(r, one);
    b.connect(r, n);
    let nl = b.build().unwrap();
    let cap = CapModel::default().annotate(&nl);
    let plan = FaultPlan {
        stuck_at: vec![StuckAtFault {
            signal: "count".into(),
            bit: 0,
            value: false,
            from_cycle: 4,
            to_cycle: 12,
        }],
        ..FaultPlan::empty()
    };
    let mut sim =
        Simulator::with_faults(&nl, &cap, PowerConfig::default(), 1, Some(&plan)).unwrap();
    for cycle in 0..20u64 {
        sim.step();
        if (4..12).contains(&cycle) {
            assert_eq!(
                sim.value(r) & 1,
                0,
                "bit 0 must be pinned low at cycle {cycle}"
            );
        }
    }
    // After release the counter increments freely again: odd values
    // reappear within two cycles.
    let v0 = sim.value(r);
    sim.step();
    let v1 = sim.value(r);
    assert!(
        v0 & 1 == 1 || v1 & 1 == 1,
        "bit 0 never recovered: {v0} {v1}"
    );
    let report = sim.fault_report().unwrap();
    assert_eq!(report.stuck_cycles, 8);
    assert_eq!(
        report.events.len(),
        2,
        "one activation + one release: {report:?}"
    );
}

#[test]
fn stuck_at_one_forces_gated_clock_feature() {
    let mut b = NetlistBuilder::new("t");
    let en = b.input(1, "en", Unit::Control);
    let gclk = b.clock_gate(en, "gclk", Unit::ClockTree);
    let r = b.reg(8, 0, gclk, "r", Unit::Alu);
    let one = b.constant(1, 8);
    let n = b.add(r, one);
    b.connect(r, n);
    let nl = b.build().unwrap();
    let gc_node = nl.clock_node(gclk).unwrap();
    let cap = CapModel::default().annotate(&nl);
    let plan = FaultPlan {
        stuck_at: vec![StuckAtFault {
            signal: "gclk".into(),
            bit: 0,
            value: true,
            from_cycle: 0,
            to_cycle: u64::MAX,
        }],
        ..FaultPlan::empty()
    };
    let mut sim =
        Simulator::with_faults(&nl, &cap, PowerConfig::default(), 1, Some(&plan)).unwrap();
    // Enable held low, but the gated clock is stuck at 1: the register
    // keeps counting and the clock feature reports the forced enable.
    sim.set_input(en, 0);
    sim.step();
    sim.step();
    assert_eq!(
        sim.value(r),
        2,
        "stuck-at-1 clock must keep the domain running"
    );
    assert_eq!(
        sim.toggle_word(gc_node),
        1,
        "forced gated clock reports its enable"
    );
}

#[test]
fn transient_flip_rates_are_plausible_and_counted() {
    let (nl, inputs) = random_netlist(17, 100, 2, 2);
    let widths: Vec<u8> = inputs.iter().map(|&i| nl.node(i).width).collect();
    let cap = CapModel::default().annotate(&nl);
    let plan = FaultPlan {
        seed: 3,
        stuck_at: Vec::new(),
        reg_flip_rate: 0.05,
        mem_flip_rate: 1.0,
    };
    let mut sim =
        Simulator::with_faults(&nl, &cap, PowerConfig::default(), 1, Some(&plan)).unwrap();
    let mut sims = [&mut sim];
    drive_random(5, 200, &mut sims, &inputs, &widths);
    let report = sim.fault_report().unwrap();
    let n_regs = nl.registers().count() as f64;
    let n_mems = nl.memories().len() as u64;
    let expected = 0.05 * 200.0 * n_regs;
    assert!(
        (report.reg_flips as f64) > 0.3 * expected && (report.reg_flips as f64) < 3.0 * expected,
        "reg flips {} vs expected ~{expected}",
        report.reg_flips
    );
    // Rate 1.0 upsets every memory every cycle.
    assert_eq!(report.mem_flips, 200 * n_mems);
    assert_eq!(
        report.events.len() as u64,
        report.reg_flips + report.mem_flips,
        "every flip is logged"
    );
}
