//! Differential test of the parallel levelized engine against the
//! sequential reference engine.
//!
//! The contract is *bit-exactness*: for any netlist and any stimulus,
//! a simulator with 2, 4 or 8 worker threads must report exactly the
//! same register values, toggle bits and per-cycle power breakdown as
//! the single-threaded engine, every cycle. Value/toggle evaluation is
//! order-independent (disjoint writes, level barriers) and the float
//! accumulation runs in a serial netlist-order pass, so even the noise
//! and short-circuit terms match to the last bit.

mod common;

use apollo_rtl::{CapModel, NetlistBuilder, NodeId, Op, Unit, CLOCK_ROOT};
use apollo_sim::{PowerConfig, PowerSample, Simulator};
use common::{mask_of, random_netlist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREADS: [usize; 3] = [2, 4, 8];

fn assert_power_eq(a: &PowerSample, b: &PowerSample, what: &str) {
    let pairs = [
        ("total", a.total, b.total),
        ("switching", a.switching, b.switching),
        ("clock", a.clock, b.clock),
        ("memory", a.memory, b.memory),
        ("glitch", a.glitch, b.glitch),
        ("short_circuit", a.short_circuit, b.short_circuit),
        ("leakage", a.leakage, b.leakage),
    ];
    for (name, x, y) in pairs {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: power component `{name}` differs ({x} vs {y})"
        );
    }
}

/// Drives `seq` and `par` in lockstep with the same stimulus and checks
/// every observable every cycle.
fn lockstep(
    seq: &mut Simulator<'_>,
    par: &mut Simulator<'_>,
    inputs: &[NodeId],
    cycles: usize,
    stim_seed: u64,
) {
    let netlist = seq.netlist();
    let n_threads = par.threads();
    let mut rng = StdRng::seed_from_u64(stim_seed);
    let mut row_seq = vec![0u64; netlist.signal_bits().div_ceil(64)];
    let mut row_par = vec![0u64; netlist.signal_bits().div_ceil(64)];
    for cycle in 0..cycles {
        for &i in inputs {
            let w = netlist.node(i).width;
            let v = rng.gen::<u64>() & mask_of(w);
            seq.set_input(i, v);
            par.set_input(i, v);
        }
        seq.step();
        par.step();
        for i in 0..netlist.len() {
            let id = NodeId::from_index(i);
            assert_eq!(
                seq.value(id),
                par.value(id),
                "cycle {cycle}, {n_threads} threads: value of node {} ({:?})",
                netlist.display_name(id),
                netlist.node(id).op
            );
            assert_eq!(
                seq.toggle_word(id),
                par.toggle_word(id),
                "cycle {cycle}, {n_threads} threads: toggles of node {} ({:?})",
                netlist.display_name(id),
                netlist.node(id).op
            );
        }
        assert_eq!(seq.toggles(), par.toggles());
        seq.toggle_row(&mut row_seq);
        par.toggle_row(&mut row_par);
        assert_eq!(row_seq, row_par, "cycle {cycle}: packed toggle rows");
        assert_power_eq(
            &seq.power(),
            &par.power(),
            &format!("cycle {cycle}, {n_threads} threads"),
        );
        let us = seq.unit_switching();
        let up = par.unit_switching();
        for (k, (x, y)) in us.iter().zip(&up).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "cycle {cycle}: unit {k} switching"
            );
        }
    }
}

/// Random netlists with several gated domains and multi-port SRAMs:
/// every thread count matches the sequential engine exactly.
#[test]
fn random_netlists_bit_exact_across_thread_counts() {
    for (seed, n_nodes, n_domains, n_mems) in [
        (1u64, 90, 3, 2),
        (42, 140, 4, 3),
        (0xA110, 60, 1, 1),
        (0xF00D, 200, 2, 2),
    ] {
        let (netlist, inputs) = random_netlist(seed, n_nodes, n_domains, n_mems);
        let cap = CapModel::default().annotate(&netlist);
        for threads in THREADS {
            let mut seq = Simulator::new(&netlist, &cap, PowerConfig::default());
            let mut par = Simulator::with_threads(&netlist, &cap, PowerConfig::default(), threads);
            assert_eq!(par.threads(), threads);
            lockstep(&mut seq, &mut par, &inputs, 80, seed ^ 0xBEEF);
        }
    }
}

/// Register file semantics under parallel evaluation: a design dominated
/// by registers (level-0 two-phase commit) with a gated-off domain that
/// exercises the dirty-set skip path.
#[test]
fn register_chains_and_gated_domains_bit_exact() {
    let mut b = NetlistBuilder::new("chains");
    let en = b.input(1, "en", Unit::Control);
    let gclk = b.clock_gate(en, "gclk", Unit::ClockTree);
    // A free-running counter in the root domain feeding a 4-deep
    // register chain in the gated domain.
    let count = b.reg(16, 0, CLOCK_ROOT, "count", Unit::Control);
    let one = b.constant(1, 16);
    let next = b.add(count, one);
    b.connect(count, next);
    let mut stage = count;
    for k in 0..4 {
        let r = b.reg(16, 0, gclk, &format!("stage{k}"), Unit::Alu);
        b.connect(r, stage);
        stage = r;
    }
    let sum = b.add(stage, count);
    b.name(sum, "sum", Unit::Alu);
    let netlist = b.build().unwrap();
    let cap = CapModel::default().annotate(&netlist);
    let inputs = vec![en];
    for threads in THREADS {
        let mut seq = Simulator::new(&netlist, &cap, PowerConfig::default());
        let mut par = Simulator::with_threads(&netlist, &cap, PowerConfig::default(), threads);
        lockstep(&mut seq, &mut par, &inputs, 120, 7);
    }
}

/// Two parallel runs of the same netlist and stimulus are deterministic:
/// identical values, toggle rows and power bits cycle by cycle.
#[test]
fn parallel_runs_are_deterministic() {
    let (netlist, inputs) = random_netlist(99, 120, 3, 2);
    let cap = CapModel::default().annotate(&netlist);
    let mut a = Simulator::with_threads(&netlist, &cap, PowerConfig::default(), 4);
    let mut b = Simulator::with_threads(&netlist, &cap, PowerConfig::default(), 4);
    lockstep(&mut a, &mut b, &inputs, 100, 0x5EED);
}

/// Real CPU workloads on the tiny core: architectural state, toggle
/// bits and per-cycle power match the sequential engine at every
/// thread count, every cycle.
#[test]
fn tiny_cpu_workloads_bit_exact_across_thread_counts() {
    use apollo_cpu::{benchmarks, build_cpu, CpuConfig, CpuSim};

    let config = CpuConfig::tiny();
    let handles = build_cpu(&config).expect("tiny CPU build");
    let cap = CapModel::default().annotate(&handles.netlist);
    let workloads = [
        benchmarks::dhrystone(),
        benchmarks::maxpwr_cpu(),
        benchmarks::dcache_miss(&config),
    ];
    for bench in &workloads {
        for threads in THREADS {
            let mut seq = CpuSim::new(
                &handles,
                &cap,
                PowerConfig::default(),
                &bench.program,
                &bench.data,
            );
            let mut par = CpuSim::with_threads(
                &handles,
                &cap,
                PowerConfig::default(),
                &bench.program,
                &bench.data,
                threads,
            );
            for cycle in 0..200 {
                seq.step();
                par.step();
                for x in 0..16 {
                    assert_eq!(
                        seq.xreg(x),
                        par.xreg(x),
                        "{}: cycle {cycle}, {threads} threads: x{x}",
                        bench.name
                    );
                }
                assert_eq!(seq.retired(), par.retired());
                assert_eq!(seq.halted(), par.halted());
                assert_eq!(
                    seq.sim().toggles(),
                    par.sim().toggles(),
                    "{}: cycle {cycle}, {threads} threads: toggle words",
                    bench.name
                );
                assert_power_eq(
                    &seq.sim().power(),
                    &par.sim().power(),
                    &format!("{} cycle {cycle}, {threads} threads", bench.name),
                );
            }
        }
    }
}

/// The register-value observables specifically (the architectural state
/// a CPU harness reads back) survive long runs at every thread count.
#[test]
fn register_state_matches_over_long_run() {
    let (netlist, inputs) = random_netlist(0xCAFE, 100, 2, 2);
    let cap = CapModel::default().annotate(&netlist);
    let regs: Vec<NodeId> = netlist
        .nodes()
        .iter()
        .enumerate()
        .filter(|(_, n)| matches!(n.op, Op::Reg { .. }))
        .map(|(i, _)| NodeId::from_index(i))
        .collect();
    assert!(!regs.is_empty());
    for threads in THREADS {
        let mut seq = Simulator::new(&netlist, &cap, PowerConfig::default());
        let mut par = Simulator::with_threads(&netlist, &cap, PowerConfig::default(), threads);
        let mut rng = StdRng::seed_from_u64(0xD1CE);
        for cycle in 0..400 {
            for &i in &inputs {
                let w = netlist.node(i).width;
                let v = rng.gen::<u64>() & mask_of(w);
                seq.set_input(i, v);
                par.set_input(i, v);
            }
            seq.step();
            par.step();
            for &r in &regs {
                assert_eq!(
                    seq.value(r),
                    par.value(r),
                    "cycle {cycle}, {threads} threads: register {}",
                    netlist.display_name(r)
                );
            }
        }
    }
}
