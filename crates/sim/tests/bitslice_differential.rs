//! Differential battery: the bitslice engine against the scalar oracle.
//!
//! The contract is *per-lane bit-exactness*: for any netlist, any
//! stimulus, any active lane count `1..=64`, any worker thread count
//! and any fault plan, lane `k` of a [`BitsliceSimulator`] must report
//! exactly the same node values, toggle bits, packed toggle rows,
//! per-cycle power breakdown (every `f64` compared by bit pattern),
//! SRAM contents and fault events as a scalar [`Simulator`] driven
//! with lane `k`'s stimulus. The shared fuzz generator covers gated
//! clock domains, multi-port SRAMs and the full op mix; proptest walks
//! the netlist/lane space and deterministic cases pin the corners
//! (ragged batches, faults at every lane, lane-divergent memory
//! images).

mod common;

use apollo_rtl::{CapModel, Netlist, NetlistBuilder, NodeId, Unit, CLOCK_ROOT};
use apollo_sim::{
    BitsliceSimulator, EngineKind, FaultPlan, PowerConfig, PowerSample, SimEngine, Simulator,
    StuckAtFault,
};
use common::{mask_of, random_netlist};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn assert_power_eq(a: &PowerSample, b: &PowerSample, what: &str) {
    let pairs = [
        ("total", a.total, b.total),
        ("switching", a.switching, b.switching),
        ("clock", a.clock, b.clock),
        ("memory", a.memory, b.memory),
        ("glitch", a.glitch, b.glitch),
        ("short_circuit", a.short_circuit, b.short_circuit),
        ("leakage", a.leakage, b.leakage),
    ];
    for (name, x, y) in pairs {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: power component `{name}` differs ({x} vs {y})"
        );
    }
}

/// Drives one bitslice batch and `lanes` scalar oracles in lockstep
/// with independent per-lane stimulus and checks every observable of
/// every lane, every cycle.
fn lockstep_batch(
    netlist: &Netlist,
    inputs: &[NodeId],
    lanes: usize,
    threads: usize,
    cycles: usize,
    stim_seed: u64,
    plan: Option<&FaultPlan>,
) {
    let cap = CapModel::default().annotate(netlist);
    let mut bs =
        BitsliceSimulator::with_faults(netlist, &cap, PowerConfig::default(), lanes, threads, plan)
            .unwrap();
    let mut oracles: Vec<Simulator<'_>> = (0..lanes)
        .map(|_| Simulator::with_faults(netlist, &cap, PowerConfig::default(), 1, plan).unwrap())
        .collect();
    assert_eq!(bs.lanes(), lanes);
    assert_eq!(SimEngine::kind(&bs), EngineKind::Bitslice);

    let mut rng = StdRng::seed_from_u64(stim_seed);
    let row_words = netlist.signal_bits().div_ceil(64);
    let mut row_bs = vec![0u64; row_words];
    let mut row_sc = vec![0u64; row_words];
    for cycle in 0..cycles {
        for (lane, oracle) in oracles.iter_mut().enumerate() {
            for &i in inputs {
                let v = rng.gen::<u64>() & mask_of(netlist.node(i).width);
                bs.set_input(lane, i, v);
                oracle.set_input(i, v);
            }
        }
        bs.step();
        for oracle in &mut oracles {
            oracle.step();
        }
        for (lane, oracle) in oracles.iter().enumerate() {
            for i in 0..netlist.len() {
                let id = NodeId::from_index(i);
                assert_eq!(
                    bs.value(lane, id),
                    oracle.value(id),
                    "cycle {cycle}, lane {lane}/{lanes}, {threads} threads: value of {} ({:?})",
                    netlist.display_name(id),
                    netlist.node(id).op
                );
                assert_eq!(
                    bs.toggle_word(lane, id),
                    oracle.toggle_word(id),
                    "cycle {cycle}, lane {lane}/{lanes}: toggles of {} ({:?})",
                    netlist.display_name(id),
                    netlist.node(id).op
                );
            }
            bs.toggle_row(lane, &mut row_bs);
            oracle.toggle_row(&mut row_sc);
            assert_eq!(row_bs, row_sc, "cycle {cycle}, lane {lane}: packed rows");
            assert_power_eq(
                &bs.power(lane),
                &oracle.power(),
                &format!("cycle {cycle}, lane {lane}/{lanes}, {threads} threads"),
            );
            let ub = bs.unit_switching(lane);
            let uo = oracle.unit_switching();
            for (k, (x, y)) in ub.iter().zip(&uo).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "cycle {cycle}, lane {lane}: unit {k} switching"
                );
            }
        }
    }
    // Fault decisions are lane-blind and recorded once per batch step,
    // so the event stream and report match every oracle exactly.
    for (lane, oracle) in oracles.iter().enumerate() {
        assert_eq!(
            bs.fault_events(),
            oracle.fault_events(),
            "lane {lane}: fault event streams"
        );
        assert_eq!(
            bs.fault_report(),
            oracle.fault_report(),
            "lane {lane}: fault reports"
        );
    }
}

/// A busy plan against the fuzz generator's netlists: `r0` always
/// exists (registers are named `r0..`), and the flip rates are high
/// enough to land upsets within a short run.
fn busy_plan() -> FaultPlan {
    FaultPlan {
        seed: 0xFA_17,
        stuck_at: vec![
            StuckAtFault {
                signal: "r0".into(),
                bit: 0,
                value: true,
                from_cycle: 4,
                to_cycle: 18,
            },
            StuckAtFault {
                signal: "r1".into(),
                bit: 0,
                value: false,
                from_cycle: 9,
                to_cycle: 13,
            },
        ],
        reg_flip_rate: 0.05,
        mem_flip_rate: 0.08,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random netlists (gated domains, multi-port SRAMs, full op mix)
    /// at a random active lane count: every lane matches its oracle.
    #[test]
    fn random_netlists_random_lanes(
        seed in any::<u64>(),
        n_nodes in 30usize..100,
        n_domains in 1usize..=4,
        n_mems in 1usize..=2,
        lanes in 1usize..=64,
    ) {
        let (netlist, inputs) = random_netlist(seed, n_nodes, n_domains, n_mems);
        lockstep_batch(&netlist, &inputs, lanes, 1, 20, seed ^ 0x51CE, None);
    }

    /// Same walk under an active fault plan: stuck-at windows open and
    /// close mid-run, register and SRAM upsets land at every lane.
    #[test]
    fn random_netlists_with_faults(
        seed in any::<u64>(),
        n_nodes in 30usize..80,
        n_domains in 1usize..=3,
        lanes in 1usize..=64,
    ) {
        let (netlist, inputs) = random_netlist(seed, n_nodes, n_domains, 2);
        let plan = busy_plan();
        lockstep_batch(&netlist, &inputs, lanes, 1, 24, seed ^ 0xFA57, Some(&plan));
    }
}

/// Ragged tails: every interesting batch size, including both extremes
/// and the 63/64 boundary, at 1 and 2 worker threads.
#[test]
fn ragged_batch_sizes_bit_exact() {
    let (netlist, inputs) = random_netlist(0xBA7C, 90, 3, 2);
    for lanes in [1usize, 2, 5, 63, 64] {
        for threads in [1usize, 2] {
            lockstep_batch(&netlist, &inputs, lanes, threads, 16, 0xD00F, None);
        }
    }
}

/// Worker-pool composition: the level-parallel pool under the bitslice
/// kernel changes nothing observable at any thread count.
#[test]
fn thread_counts_bit_exact_at_full_width() {
    let (netlist, inputs) = random_netlist(0x7EAD, 120, 4, 2);
    for threads in [2usize, 4, 8] {
        lockstep_batch(&netlist, &inputs, 64, threads, 12, 0x1DE5, None);
    }
}

/// Fault plans at full lane width with workers: stuck-at edges, reg
/// flips and SRAM flips all replay identically on all 64 lanes.
#[test]
fn faults_at_every_lane_with_workers() {
    let (netlist, inputs) = random_netlist(0xFA11, 70, 2, 2);
    let plan = busy_plan();
    lockstep_batch(&netlist, &inputs, 64, 2, 24, 0xAB1E, Some(&plan));
}

/// Lane-divergent SRAM images: each lane's memory is poked with its own
/// program/data words (the CPU-batch loading path), then the batch must
/// track one scalar oracle per lane, including final memory contents.
#[test]
fn per_lane_memory_images_diverge_and_match() {
    let mut b = NetlistBuilder::new("membat");
    let addr_in = b.input(4, "addr", Unit::LoadStore);
    let wen = b.input(1, "wen", Unit::LoadStore);
    let wdata = b.input(16, "wdata", Unit::LoadStore);
    let ren = b.constant(1, 1);
    let mem = b.memory(16, 16, "scratch", Unit::LoadStore);
    let port = b.mem_read(mem, addr_in, ren, "rp", Unit::LoadStore);
    b.mem_write(mem, wen, addr_in, wdata);
    let acc = b.reg(16, 0, CLOCK_ROOT, "acc", Unit::Alu);
    let sum = b.add(acc, port);
    b.connect(acc, sum);
    let netlist = b.build().unwrap();
    let cap = CapModel::default().annotate(&netlist);

    let lanes = 9usize;
    let mut bs = BitsliceSimulator::new(&netlist, &cap, PowerConfig::default(), lanes);
    let mut oracles: Vec<Simulator<'_>> = (0..lanes)
        .map(|_| Simulator::new(&netlist, &cap, PowerConfig::default()))
        .collect();
    // Divergent per-lane images.
    for (lane, oracle) in oracles.iter_mut().enumerate() {
        for w in 0..16u32 {
            let v = (lane as u64 * 131 + w as u64 * 7 + 1) & 0xFFFF;
            bs.poke_mem(lane, mem, w, v);
            oracle.poke_mem(mem, w, v);
        }
    }
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for _ in 0..40 {
        for (lane, oracle) in oracles.iter_mut().enumerate() {
            let a = rng.gen::<u64>() & 0xF;
            let we = rng.gen::<u64>() & 1;
            let d = rng.gen::<u64>() & 0xFFFF;
            bs.set_input(lane, addr_in, a);
            bs.set_input(lane, wen, we);
            bs.set_input(lane, wdata, d);
            oracle.set_input(addr_in, a);
            oracle.set_input(wen, we);
            oracle.set_input(wdata, d);
        }
        bs.step();
        for (lane, oracle) in oracles.iter_mut().enumerate() {
            oracle.step();
            assert_eq!(bs.value(lane, acc), oracle.value(acc), "lane {lane}: acc");
            assert_eq!(
                bs.value(lane, port),
                oracle.value(port),
                "lane {lane}: port"
            );
            assert_power_eq(&bs.power(lane), &oracle.power(), &format!("lane {lane}"));
        }
    }
    for (lane, oracle) in oracles.iter().enumerate() {
        for w in 0..16u32 {
            assert_eq!(
                bs.mem_word(lane, mem, w),
                oracle.mem_word(mem, w),
                "lane {lane}, word {w}: final SRAM state"
            );
        }
    }
}

/// The trait object surface: both engines behind `dyn SimEngine` agree
/// lane-for-lane, and `EngineKind` round-trips through its string form.
#[test]
fn engine_trait_surface() {
    assert_eq!("scalar".parse::<EngineKind>().unwrap(), EngineKind::Scalar);
    assert_eq!(
        "bitslice".parse::<EngineKind>().unwrap(),
        EngineKind::Bitslice
    );
    assert!("vliw".parse::<EngineKind>().is_err());
    assert_eq!(EngineKind::Bitslice.to_string(), "bitslice");
    assert_eq!(EngineKind::default(), EngineKind::Scalar);

    let (netlist, inputs) = random_netlist(0xD1CE, 50, 2, 1);
    let cap = CapModel::default().annotate(&netlist);
    let mut scalar = Simulator::new(&netlist, &cap, PowerConfig::default());
    let mut slice = BitsliceSimulator::new(&netlist, &cap, PowerConfig::default(), 3);
    {
        let mut engines: [&mut dyn SimEngine; 2] = [&mut scalar, &mut slice];
        let mut rng = StdRng::seed_from_u64(0xE16);
        for _ in 0..10 {
            let stim: Vec<u64> = inputs
                .iter()
                .map(|&i| rng.gen::<u64>() & mask_of(netlist.node(i).width))
                .collect();
            for e in engines.iter_mut() {
                for lane in 0..e.lanes() {
                    for (&i, &v) in inputs.iter().zip(&stim) {
                        e.set_input(lane, i, v);
                    }
                }
                e.step();
            }
        }
    }
    assert_eq!(scalar.cycle(), 10);
    assert_eq!(SimEngine::cycle(&slice), 10);
    for i in 0..netlist.len() {
        let id = NodeId::from_index(i);
        for lane in 0..3 {
            assert_eq!(
                scalar.value(id),
                slice.value(lane, id),
                "identical stimulus on every lane: node {}",
                netlist.display_name(id)
            );
        }
    }
}
