//! Shared random-netlist generator for the differential test suites
//! (`fuzz_netlist` and `parallel_differential`).

use apollo_rtl::{Netlist, NetlistBuilder, NodeId, Unit, CLOCK_ROOT};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub fn mask_of(w: u8) -> u64 {
    if w == 64 {
        u64::MAX
    } else {
        (1 << w) - 1
    }
}

/// Generates a random but well-formed netlist with `n_nodes` random
/// combinational nodes, `n_domains` gated clock domains (enables drawn
/// from input 0's low bits) and `n_mems` SRAM macros, each with one or
/// two read ports and one or two write ports. Registers round-robin
/// over the root clock and every gated domain. Returns the netlist and
/// its primary inputs.
pub fn random_netlist(
    seed: u64,
    n_nodes: usize,
    n_domains: usize,
    n_mems: usize,
) -> (Netlist, Vec<NodeId>) {
    assert!((1..=8).contains(&n_domains));
    assert!((1..=4).contains(&n_mems));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetlistBuilder::new("fuzz");
    let mut nodes: Vec<NodeId> = Vec::new();
    let mut inputs = Vec::new();
    let mut regs: Vec<NodeId> = Vec::new();

    // Seed inputs. Input 0 feeds the domain enables and inputs 1/2 the
    // memory-port enables, so they need enough low bits to tap.
    for k in 0..3 {
        let w = rng.gen_range(8..=64);
        let i = b.input(w, &format!("in{k}"), Unit::Control);
        nodes.push(i);
        inputs.push(i);
    }
    // Gated domains driven by input 0's low bits.
    let mut clocks = vec![CLOCK_ROOT];
    for d in 0..n_domains {
        let en = b.bit(inputs[0], d as u8);
        nodes.push(en);
        clocks.push(b.clock_gate(en, &format!("gclk{d}"), Unit::ClockTree));
    }

    // Up-front registers (their nexts are connected at the end),
    // round-robin over all clock domains.
    for k in 0..(2 * (n_domains + 1)) {
        let w = rng.gen_range(1..=64);
        let clock = clocks[k % clocks.len()];
        let r = b.reg(
            w,
            rng.gen::<u64>() & mask_of(w),
            clock,
            &format!("r{k}"),
            Unit::Alu,
        );
        nodes.push(r);
        regs.push(r);
    }
    // Memory macros with one or two read ports each (write ports are
    // attached at the end, once data sources exist).
    let mut mems = Vec::new();
    for mi in 0..n_mems {
        let mem = b.memory(16, 16, &format!("m{mi}"), Unit::LoadStore);
        for p in 0..rng.gen_range(1..=2usize) {
            let addr_src = nodes[rng.gen_range(0..nodes.len())];
            let addr = b.trunc(addr_src, b.width(addr_src).min(8));
            let en_bit = b.bit(inputs[1], ((2 * mi + p) % 8) as u8);
            let port = b.mem_read(mem, addr, en_bit, &format!("rp{mi}_{p}"), Unit::LoadStore);
            nodes.push(port);
        }
        mems.push(mem);
    }

    // Random combinational ops.
    for _ in 0..n_nodes {
        let pick = |rng: &mut StdRng, nodes: &Vec<NodeId>| nodes[rng.gen_range(0..nodes.len())];
        let a = pick(&mut rng, &nodes);
        let n = match rng.gen_range(0..14) {
            0 => b.not(a),
            1..=6 => {
                // width-matched binary op
                let wa = b.width(a);
                let other = pick(&mut rng, &nodes);
                let bb = if b.width(other) == wa {
                    other
                } else if b.width(other) < wa {
                    b.zext(other, wa)
                } else {
                    b.trunc(other, wa)
                };
                match rng.gen_range(0..7) {
                    0 => b.and(a, bb),
                    1 => b.or(a, bb),
                    2 => b.xor(a, bb),
                    3 => b.add(a, bb),
                    4 => b.sub(a, bb),
                    5 => b.mul(a, bb),
                    _ => b.udiv(a, bb),
                }
            }
            7 => {
                let wa = b.width(a);
                let other = pick(&mut rng, &nodes);
                let bb = if b.width(other) == wa {
                    other
                } else {
                    let bit0 = b.bit(other, 0);
                    b.zext(bit0, wa)
                };
                b.eq(a, bb)
            }
            8 => {
                let amt = pick(&mut rng, &nodes);
                let amt6 = b.trunc(amt, b.width(amt).min(6));
                let amt_w = b.zext(amt6, b.width(a).clamp(6, 64));
                let amt_m = b.trunc(amt_w, b.width(a).min(b.width(amt_w)));
                if rng.gen_bool(0.5) {
                    b.shl(a, amt_m)
                } else {
                    b.shr(a, amt_m)
                }
            }
            9 => {
                let wa = b.width(a);
                let lo = rng.gen_range(0..wa);
                let w = rng.gen_range(1..=wa - lo);
                b.slice(a, lo, w)
            }
            10 => {
                let other = pick(&mut rng, &nodes);
                if b.width(a) + b.width(other) <= 64 {
                    b.concat(a, other)
                } else {
                    b.reduce_or(a)
                }
            }
            11 => {
                let sel_src = pick(&mut rng, &nodes);
                let sel = b.bit(sel_src, 0);
                let t = pick(&mut rng, &nodes);
                let wt = b.width(t);
                let f0 = pick(&mut rng, &nodes);
                let f = if b.width(f0) == wt {
                    f0
                } else if b.width(f0) < wt {
                    b.zext(f0, wt)
                } else {
                    b.trunc(f0, wt)
                };
                b.mux(sel, t, f)
            }
            12 => b.reduce_and(a),
            _ => b.reduce_xor(a),
        };
        nodes.push(n);
    }
    // Connect register nexts to random width-matched nodes.
    for &r in &regs {
        let wr = b.width(r);
        let src = nodes[rng.gen_range(0..nodes.len())];
        let n = if b.width(src) == wr {
            src
        } else if b.width(src) < wr {
            b.zext(src, wr)
        } else {
            b.trunc(src, wr)
        };
        b.connect(r, n);
    }
    // Write ports driven by random nodes (enables from input 2's bits).
    for (mi, &mem) in mems.iter().enumerate() {
        for p in 0..rng.gen_range(1..=2usize) {
            let wen = b.bit(inputs[2], ((2 * mi + p) % 8) as u8);
            let waddr_src = nodes[rng.gen_range(0..nodes.len())];
            let waddr = b.trunc(waddr_src, b.width(waddr_src).min(8));
            let wdata_src = nodes[rng.gen_range(0..nodes.len())];
            let wdata = if b.width(wdata_src) == 16 {
                wdata_src
            } else if b.width(wdata_src) < 16 {
                b.zext(wdata_src, 16)
            } else {
                b.trunc(wdata_src, 16)
            };
            b.mem_write(mem, wen, waddr, wdata);
        }
    }

    (b.build().unwrap(), inputs)
}
