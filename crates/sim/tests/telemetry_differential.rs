//! Differential tests for the telemetry determinism contract.
//!
//! Three machine-checked properties (see `apollo_telemetry`'s crate
//! docs):
//!
//! 1. metric *values* (after [`MetricsSnapshot::without_timing`]) are
//!    identical across worker-thread counts;
//! 2. the *event stream* (after [`Record::strip_timing`]) is identical
//!    across worker-thread counts, including under fault injection;
//! 3. enabling telemetry (span timing + an installed sink) leaves every
//!    simulation observable bit-exact against a fully disabled run.
//!
//! Telemetry state is process-global, so every test serializes on one
//! mutex and resets the world before and after.

mod common;

use apollo_rtl::{CapAnnotation, CapModel, Netlist, NodeId};
use apollo_sim::{BitsliceSimulator, FaultPlan, PowerConfig, Simulator, StuckAtFault};
use apollo_telemetry::{Record, VecSink};
use common::{mask_of, random_netlist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex};

/// Serializes tests that touch the global telemetry state.
static GLOBAL: Mutex<()> = Mutex::new(());

fn lock_global() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn reset_telemetry() {
    apollo_telemetry::clear_sink();
    apollo_telemetry::set_timing(false);
    apollo_telemetry::reset_metrics();
    apollo_telemetry::reset_phases();
}

/// A plan with every fault class active (`r0` is always a named
/// register in `random_netlist`'s output).
fn busy_plan() -> FaultPlan {
    FaultPlan {
        seed: 0xFA_07,
        stuck_at: vec![StuckAtFault {
            signal: "r0".into(),
            bit: 0,
            value: true,
            from_cycle: 10,
            to_cycle: 40,
        }],
        reg_flip_rate: 0.03,
        mem_flip_rate: 0.03,
    }
}

/// Runs `cycles` of seeded random stimulus and returns a bit-exact
/// digest of every observable: all node values, the packed toggle row
/// and the power breakdown.
fn run_digest(
    netlist: &Netlist,
    cap: &CapAnnotation,
    inputs: &[NodeId],
    threads: usize,
    cycles: usize,
    plan: Option<&FaultPlan>,
) -> Vec<u64> {
    let mut sim =
        Simulator::with_faults(netlist, cap, PowerConfig::default(), threads, plan).unwrap();
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    let mut row = vec![0u64; netlist.signal_bits().div_ceil(64)];
    let mut digest = Vec::new();
    for _ in 0..cycles {
        for &i in inputs {
            let w = netlist.node(i).width;
            sim.set_input(i, rng.gen::<u64>() & mask_of(w));
        }
        sim.step();
        for i in 0..netlist.len() {
            digest.push(sim.value(NodeId::from_index(i)));
        }
        sim.toggle_row(&mut row);
        digest.extend_from_slice(&row);
        let p = sim.power();
        for f in [
            p.total,
            p.switching,
            p.clock,
            p.memory,
            p.glitch,
            p.short_circuit,
            p.leakage,
        ] {
            digest.push(f.to_bits());
        }
    }
    digest
}

/// Counter and gauge values must not depend on the worker-thread
/// count; only `_ns`-suffixed timing metrics may (and those are
/// excluded by `without_timing`).
#[test]
fn metric_values_identical_across_thread_counts() {
    let _g = lock_global();
    let (netlist, inputs) = random_netlist(31, 120, 3, 2);
    let cap = CapModel::default().annotate(&netlist);
    let mut reference: Option<String> = None;
    for threads in [1usize, 2, 4] {
        reset_telemetry();
        run_digest(&netlist, &cap, &inputs, threads, 60, None);
        let snap = apollo_telemetry::snapshot().without_timing();
        let json = serde_json::to_string(&snap).unwrap();
        assert!(
            json.contains("sim.cycles"),
            "snapshot should include the step counter: {json}"
        );
        match &reference {
            None => reference = Some(json),
            Some(want) => assert_eq!(
                &json, want,
                "{threads}-thread metric values diverge from 1-thread"
            ),
        }
    }
    reset_telemetry();
}

/// The typed event stream — here fault-injection events, the richest
/// source — is identical across thread counts once wall-clock fields
/// are stripped: same records, same order, same sequence numbers.
#[test]
fn event_stream_identical_across_thread_counts_under_faults() {
    let _g = lock_global();
    let (netlist, inputs) = random_netlist(77, 100, 2, 2);
    let cap = CapModel::default().annotate(&netlist);
    let plan = busy_plan();
    let mut reference: Option<Vec<Record>> = None;
    for threads in [1usize, 2, 4] {
        reset_telemetry();
        let sink = Arc::new(VecSink::default());
        apollo_telemetry::install_sink(sink.clone());
        run_digest(&netlist, &cap, &inputs, threads, 80, Some(&plan));
        apollo_telemetry::clear_sink();
        let records: Vec<Record> = sink.take().iter().map(Record::strip_timing).collect();
        assert!(
            records.iter().any(|r| r.to_jsonl().contains("sim.fault.")),
            "plan should generate fault events"
        );
        for (k, r) in records.iter().enumerate() {
            assert_eq!(r.seq, k as u64, "dense sequence numbers");
        }
        match &reference {
            None => reference = Some(records),
            Some(want) => assert_eq!(
                &records, want,
                "{threads}-thread event stream diverges from 1-thread"
            ),
        }
    }
    reset_telemetry();
}

/// Like [`run_digest`] but through a one-lane [`BitsliceSimulator`]
/// with the same stimulus seed, so the two engines' telemetry output
/// is directly comparable.
fn run_digest_bitslice(
    netlist: &Netlist,
    cap: &CapAnnotation,
    inputs: &[NodeId],
    cycles: usize,
    plan: Option<&FaultPlan>,
) -> Vec<u64> {
    let mut sim =
        BitsliceSimulator::with_faults(netlist, cap, PowerConfig::default(), 1, 1, plan).unwrap();
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    let mut row = vec![0u64; netlist.signal_bits().div_ceil(64)];
    let mut digest = Vec::new();
    for _ in 0..cycles {
        for &i in inputs {
            let w = netlist.node(i).width;
            sim.set_input(0, i, rng.gen::<u64>() & mask_of(w));
        }
        sim.step();
        for i in 0..netlist.len() {
            digest.push(sim.value(0, NodeId::from_index(i)));
        }
        sim.toggle_row(0, &mut row);
        digest.extend_from_slice(&row);
        let p = sim.power(0);
        for f in [
            p.total,
            p.switching,
            p.clock,
            p.memory,
            p.glitch,
            p.short_circuit,
            p.leakage,
        ] {
            digest.push(f.to_bits());
        }
    }
    digest
}

/// The bitslice path must emit the same non-timing telemetry as the
/// scalar oracle: an identical typed event stream (fault events are the
/// richest source) and identical counter values — `sim.cycles` and
/// `sim.fault_events` in particular — once the engine-private shard
/// partitioning counters (`sim.shards_*` vs `sim.bitslice.shards_*`)
/// are set aside.
#[test]
fn bitslice_emits_identical_nontiming_telemetry() {
    let _g = lock_global();
    let (netlist, inputs) = random_netlist(55, 90, 2, 2);
    let cap = CapModel::default().annotate(&netlist);
    let plan = busy_plan();
    let shared_counters = |snap: &apollo_telemetry::MetricsSnapshot| {
        snap.without_timing()
            .counters
            .iter()
            .filter(|c| !c.name.contains("shards"))
            .map(|c| (c.name.clone(), c.value))
            .collect::<Vec<_>>()
    };

    reset_telemetry();
    let sink = Arc::new(VecSink::default());
    apollo_telemetry::install_sink(sink.clone());
    let scalar_digest = run_digest(&netlist, &cap, &inputs, 1, 80, Some(&plan));
    apollo_telemetry::clear_sink();
    let scalar_records: Vec<Record> = sink.take().iter().map(Record::strip_timing).collect();
    let scalar_counters = shared_counters(&apollo_telemetry::snapshot());

    reset_telemetry();
    let sink = Arc::new(VecSink::default());
    apollo_telemetry::install_sink(sink.clone());
    let bitslice_digest = run_digest_bitslice(&netlist, &cap, &inputs, 80, Some(&plan));
    apollo_telemetry::clear_sink();
    let bitslice_records: Vec<Record> = sink.take().iter().map(Record::strip_timing).collect();
    let bitslice_counters = shared_counters(&apollo_telemetry::snapshot());
    reset_telemetry();

    assert_eq!(scalar_digest, bitslice_digest, "simulation observables");
    assert!(
        scalar_records
            .iter()
            .any(|r| r.to_jsonl().contains("sim.fault.")),
        "plan should generate fault events"
    );
    assert_eq!(scalar_records, bitslice_records, "typed event streams");
    assert!(
        scalar_counters
            .iter()
            .any(|(n, v)| n == "sim.cycles" && *v == 80),
        "step counter should be visible and engine-independent: {scalar_counters:?}"
    );
    assert_eq!(scalar_counters, bitslice_counters, "shared counter values");
}

/// Turning the full observability stack on (span timing plus a live
/// sink) must not perturb a single bit of simulation output, with and
/// without fault injection.
#[test]
fn enabled_telemetry_is_bit_exact_with_disabled() {
    let _g = lock_global();
    let (netlist, inputs) = random_netlist(123, 110, 3, 2);
    let cap = CapModel::default().annotate(&netlist);
    let plan = busy_plan();
    for (threads, plan) in [
        (1usize, None),
        (4, None),
        (1, Some(&plan)),
        (4, Some(&plan)),
    ] {
        reset_telemetry();
        let baseline = run_digest(&netlist, &cap, &inputs, threads, 60, plan);

        apollo_telemetry::set_timing(true);
        apollo_telemetry::install_sink(Arc::new(VecSink::default()));
        let observed = run_digest(&netlist, &cap, &inputs, threads, 60, plan);
        reset_telemetry();

        assert_eq!(
            baseline,
            observed,
            "telemetry on/off digests differ ({threads} threads, faults: {})",
            plan.is_some()
        );
    }
    reset_telemetry();
}
