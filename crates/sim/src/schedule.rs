//! Levelized evaluation schedule for the simulator.
//!
//! At elaboration time the combinational graph is partitioned into
//! topological levels (computed by [`apollo_rtl::Netlist::level`]): all
//! operands of a level-`l` node live at levels `< l`, so the nodes of
//! one level can be evaluated in any order — or concurrently — once the
//! previous level has settled. Each level is further chopped into
//! fixed-size *shards*, the unit of work handed to simulator threads
//! and the granularity of the gated-clock dirty-set skip.
//!
//! Every shard carries an *influence mask* over at most 64 *source
//! groups*: one group for all primary inputs, one per clock domain
//! (covering its registers) and one per memory macro (covering its read
//! ports). A node's value can only change in a cycle if one of the
//! level-0 sources in its transitive fan-in changed, so a shard whose
//! influence mask is disjoint from the cycle's dirty set is skipped
//! wholesale — the key saving for gated-off clock domains. When a
//! design has more than 64 groups the masks degenerate to all-ones and
//! skipping only triggers on fully idle cycles.

use apollo_rtl::{Netlist, NodeId, Op};

/// Number of nodes per shard. Small enough to load-balance narrow
/// levels across threads, large enough to amortize scheduling.
const SHARD_SIZE: usize = 64;

/// A contiguous chunk of one level's nodes (indices into
/// [`LevelSchedule::order`]).
#[derive(Clone, Debug)]
pub(crate) struct Shard {
    /// Start index into `order`.
    pub start: u32,
    /// End index (exclusive) into `order`.
    pub end: u32,
    /// Union of the source-group masks of the shard's nodes.
    pub influence: u64,
}

/// The cached level/shard partition of a netlist.
#[derive(Clone, Debug)]
pub(crate) struct LevelSchedule {
    /// Node indices sorted by (level, creation index).
    order: Vec<u32>,
    shards: Vec<Shard>,
    /// Shard-id range per level.
    level_shards: Vec<(u32, u32)>,
    /// False when the design has more than 64 source groups.
    groups_enabled: bool,
    n_domains: usize,
}

impl LevelSchedule {
    pub(crate) fn build(netlist: &Netlist) -> Self {
        let n = netlist.len();
        let n_levels = netlist.n_levels();
        let n_domains = netlist.clock_domains();
        let n_mems = netlist.memories().len();
        let groups_enabled = 1 + n_domains + n_mems <= 64;

        // Per-node source-group masks: level-0 sources name their own
        // group; combinational nodes union their operands (which always
        // precede them in creation order — `Reg.next` back-edges are not
        // combinational operands of the register node).
        let mut node_mask = vec![0u64; n];
        for (i, node) in netlist.nodes().iter().enumerate() {
            node_mask[i] = if !groups_enabled {
                u64::MAX
            } else {
                match node.op {
                    Op::Input => 1,
                    Op::Const(_) => 0,
                    Op::Reg { clock, .. } => 1u64 << (1 + clock.index()),
                    Op::MemRead { mem, .. } => 1u64 << (1 + n_domains + mem.index()),
                    _ => {
                        let mut union = 0u64;
                        node.for_each_operand(|o| union |= node_mask[o.index()]);
                        union
                    }
                }
            };
        }

        // Counting sort of node indices by level, stable in index order.
        let mut counts = vec![0u32; n_levels + 1];
        for i in 0..n {
            counts[netlist.level(NodeId::from_index(i)) as usize + 1] += 1;
        }
        for l in 0..n_levels {
            counts[l + 1] += counts[l];
        }
        let mut order = vec![0u32; n];
        let mut cursor = counts.clone();
        for i in 0..n {
            let l = netlist.level(NodeId::from_index(i)) as usize;
            order[cursor[l] as usize] = i as u32;
            cursor[l] += 1;
        }

        let mut shards = Vec::new();
        let mut level_shards = Vec::with_capacity(n_levels);
        for l in 0..n_levels {
            let first = shards.len() as u32;
            let (lo, hi) = (counts[l] as usize, counts[l + 1] as usize);
            let mut s = lo;
            while s < hi {
                let e = (s + SHARD_SIZE).min(hi);
                let mut influence = 0u64;
                for &ni in &order[s..e] {
                    influence |= node_mask[ni as usize];
                }
                shards.push(Shard {
                    start: s as u32,
                    end: e as u32,
                    influence,
                });
                s = e;
            }
            level_shards.push((first, shards.len() as u32));
        }

        LevelSchedule {
            order,
            shards,
            level_shards,
            groups_enabled,
            n_domains,
        }
    }

    /// Node indices sorted by (level, creation index).
    pub(crate) fn order(&self) -> &[u32] {
        &self.order
    }

    pub(crate) fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Number of levels (one barrier per level in parallel mode).
    pub(crate) fn n_levels(&self) -> usize {
        self.level_shards.len()
    }

    /// Shard-id range of one level.
    pub(crate) fn level_shard_range(&self, level: usize) -> (u32, u32) {
        self.level_shards[level]
    }

    /// Dirty bit flagged when any primary input changes.
    pub(crate) fn input_bit(&self) -> u64 {
        if self.groups_enabled {
            1
        } else {
            u64::MAX
        }
    }

    /// Dirty bit flagged when any register of clock domain `d` changes.
    pub(crate) fn domain_bit(&self, d: usize) -> u64 {
        if self.groups_enabled {
            1u64 << (1 + d)
        } else {
            u64::MAX
        }
    }

    /// Dirty bit flagged when any read port of memory `m` changes.
    pub(crate) fn mem_bit(&self, m: usize) -> u64 {
        if self.groups_enabled {
            1u64 << (1 + self.n_domains + m)
        } else {
            u64::MAX
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apollo_rtl::{CapModel, NetlistBuilder, Unit, CLOCK_ROOT};

    #[test]
    fn order_is_levelized_and_complete() {
        let mut b = NetlistBuilder::new("s");
        let r = b.reg(8, 0, CLOCK_ROOT, "r", Unit::Alu);
        let one = b.constant(1, 8);
        let s1 = b.add(r, one);
        let s2 = b.add(s1, one);
        b.connect(r, s2);
        let nl = b.build().unwrap();
        let _ = CapModel::default().annotate(&nl);
        let sched = LevelSchedule::build(&nl);
        assert_eq!(sched.order().len(), nl.len());
        // Order is non-decreasing in level.
        let mut last = 0;
        for &ni in sched.order() {
            let l = nl.level(NodeId::from_index(ni as usize));
            assert!(l >= last);
            last = l;
        }
        assert_eq!(sched.n_levels(), nl.n_levels());
        // Shards tile `order` exactly.
        let mut covered = 0u32;
        for sh in sched.shards() {
            assert_eq!(sh.start, covered);
            covered = sh.end;
        }
        assert_eq!(covered as usize, nl.len());
    }

    #[test]
    fn influence_masks_track_sources() {
        let mut b = NetlistBuilder::new("s");
        let en = b.input(1, "en", Unit::Control);
        let gclk = b.clock_gate(en, "gclk", Unit::ClockTree);
        let r = b.reg(8, 0, gclk, "r", Unit::Alu);
        let one = b.constant(1, 8);
        let s = b.add(r, one);
        b.connect(r, s);
        let nl = b.build().unwrap();
        let sched = LevelSchedule::build(&nl);
        // The adder depends only on domain `gclk`'s register (the const
        // contributes nothing), so its shard's influence contains the
        // domain bit and not the memory bits.
        let add_level = nl.level(s) as usize;
        let (lo, hi) = sched.level_shard_range(add_level);
        let mask: u64 = (lo..hi)
            .map(|i| sched.shards()[i as usize].influence)
            .fold(0, |a, b| a | b);
        assert_ne!(mask & sched.domain_bit(gclk.index()), 0);
    }
}
