//! Deterministic fault injection for netlist simulation.
//!
//! A [`FaultPlan`] describes silicon-style faults — stuck-at-0/1 on
//! named signal bits over cycle windows, and seeded transient bit-flips
//! in registers and SRAM words — that a [`crate::Simulator`] applies
//! while it runs. The design goals, in order:
//!
//! 1. **Determinism.** Every fault decision is a pure function of
//!    `(seed, cycle, site)` via a counter-based hash, never a stateful
//!    RNG stream, so the same plan replays bit-identically regardless
//!    of evaluation order — including under the parallel levelized
//!    engine at any thread count.
//! 2. **A pristine fault-free path.** A simulator constructed without a
//!    plan shares no per-node overhead with fault injection (the engine
//!    checks a single `Option`), and an *empty* plan (no stuck-at
//!    entries, zero flip rates) produces values, toggles and power that
//!    are bit-identical to a plan-less simulator.
//! 3. **Observable faults.** Every injected fault is recorded as a
//!    [`FaultEvent`] in deterministic order; [`FaultReport`] serializes
//!    byte-identically across runs and thread counts.

use apollo_rtl::{Netlist, Op};
use std::fmt;

/// A stuck-at fault: one bit of a named signal forced to a constant
/// over a cycle window.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct StuckAtFault {
    /// Hierarchical signal name, as reported by
    /// [`Netlist::display_name`] (named signals only).
    pub signal: String,
    /// Bit within the signal (must be `< width`).
    pub bit: u8,
    /// Forced value: `false` = stuck-at-0, `true` = stuck-at-1.
    pub value: bool,
    /// First simulation cycle (0-based) at which the force is active.
    pub from_cycle: u64,
    /// First cycle at which the force is released (exclusive;
    /// `u64::MAX` keeps it active forever).
    pub to_cycle: u64,
}

/// A seeded, fully deterministic fault-injection plan.
///
/// Transient flip decisions are Bernoulli draws per site per cycle,
/// derived from `hash(seed, cycle, site)` — see the module docs for the
/// determinism contract.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultPlan {
    /// Seed for all transient-fault decisions.
    pub seed: u64,
    /// Stuck-at faults on named signal bits.
    pub stuck_at: Vec<StuckAtFault>,
    /// Per-register, per-cycle probability of a single-bit upset in
    /// that register (a random bit of its staged next value flips).
    pub reg_flip_rate: f64,
    /// Per-memory, per-cycle probability of a single-bit upset in one
    /// (hash-chosen) word of that SRAM macro.
    pub mem_flip_rate: f64,
}

impl FaultPlan {
    /// A plan that injects nothing. Simulating under an empty plan is
    /// machine-checked to be bit-exact with the fault-free engine.
    pub fn empty() -> Self {
        FaultPlan {
            seed: 0,
            stuck_at: Vec::new(),
            reg_flip_rate: 0.0,
            mem_flip_rate: 0.0,
        }
    }

    /// `true` if the plan can never inject a fault.
    pub fn is_empty(&self) -> bool {
        self.stuck_at.is_empty() && self.reg_flip_rate <= 0.0 && self.mem_flip_rate <= 0.0
    }

    /// Resolves the plan against a netlist, validating signal names,
    /// bit indices and rates.
    pub fn compile(&self, netlist: &Netlist) -> Result<CompiledFaults, FaultPlanError> {
        for (label, rate) in [
            ("reg_flip_rate", self.reg_flip_rate),
            ("mem_flip_rate", self.mem_flip_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
                return Err(FaultPlanError::BadRate { which: label, rate });
            }
        }
        let mut stuck = Vec::with_capacity(self.stuck_at.len());
        for f in &self.stuck_at {
            let Some((node, width)) = netlist
                .find_signal(&f.signal)
                .map(|id| (id, netlist.node(id).width))
            else {
                return Err(FaultPlanError::UnknownSignal {
                    signal: f.signal.clone(),
                });
            };
            if f.bit >= width {
                return Err(FaultPlanError::BitOutOfRange {
                    signal: f.signal.clone(),
                    bit: f.bit,
                    width,
                });
            }
            if f.from_cycle >= f.to_cycle {
                return Err(FaultPlanError::EmptyWindow {
                    signal: f.signal.clone(),
                });
            }
            stuck.push(CompiledStuck {
                node: node.index() as u32,
                signal: f.signal.clone(),
                bit: f.bit,
                value: f.value,
                from: f.from_cycle,
                to: f.to_cycle,
                active: false,
            });
        }
        // Register sites in netlist order; SRAM sites in memory order.
        let regs: Vec<RegSite> = netlist
            .nodes()
            .iter()
            .enumerate()
            .filter_map(|(i, n)| match n.op {
                Op::Reg { .. } => Some(RegSite {
                    node: i as u32,
                    width: n.width,
                }),
                _ => None,
            })
            .collect();
        let mems: Vec<MemSite> = netlist
            .memories()
            .iter()
            .enumerate()
            .map(|(i, m)| MemSite {
                mem: i as u32,
                words: m.words,
                width: m.width,
                name: m.name.clone(),
            })
            .collect();
        Ok(CompiledFaults {
            seed: self.seed,
            stuck,
            reg_threshold: rate_to_threshold(self.reg_flip_rate),
            mem_threshold: rate_to_threshold(self.mem_flip_rate),
            regs,
            mems,
            netlist_names: netlist
                .nodes()
                .iter()
                .enumerate()
                .map(|(i, _)| netlist.display_name(apollo_rtl::NodeId::from_index(i)))
                .collect(),
        })
    }
}

/// Errors from resolving a [`FaultPlan`] against a netlist.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum FaultPlanError {
    /// A stuck-at fault names a signal the netlist does not contain.
    UnknownSignal {
        /// The unresolved name.
        signal: String,
    },
    /// A stuck-at fault's bit index exceeds the signal's width.
    BitOutOfRange {
        /// The signal name.
        signal: String,
        /// The offending bit.
        bit: u8,
        /// The signal's actual width.
        width: u8,
    },
    /// A stuck-at window is empty (`from_cycle >= to_cycle`).
    EmptyWindow {
        /// The signal name.
        signal: String,
    },
    /// A flip rate is outside `[0, 1]` or NaN.
    BadRate {
        /// Which rate field.
        which: &'static str,
        /// The offending value.
        rate: f64,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::UnknownSignal { signal } => {
                write!(f, "fault plan names unknown signal `{signal}`")
            }
            FaultPlanError::BitOutOfRange { signal, bit, width } => {
                write!(f, "fault on `{signal}` bit {bit} exceeds width {width}")
            }
            FaultPlanError::EmptyWindow { signal } => {
                write!(f, "fault on `{signal}` has an empty cycle window")
            }
            FaultPlanError::BadRate { which, rate } => {
                write!(f, "fault plan {which} = {rate} is not in [0, 1]")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// One injected fault, recorded as it happens.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FaultEvent {
    /// A stuck-at force became active this cycle.
    StuckActivated {
        /// Cycle of activation.
        cycle: u64,
        /// Signal name.
        signal: String,
        /// Forced bit.
        bit: u8,
        /// Forced value.
        value: bool,
    },
    /// A stuck-at force was released this cycle.
    StuckReleased {
        /// Cycle of release.
        cycle: u64,
        /// Signal name.
        signal: String,
        /// Forced bit.
        bit: u8,
    },
    /// A transient single-bit upset in a register.
    RegFlip {
        /// Cycle of the upset.
        cycle: u64,
        /// Register signal name.
        signal: String,
        /// Flipped bit.
        bit: u8,
    },
    /// A transient single-bit upset in an SRAM word.
    MemFlip {
        /// Cycle of the upset.
        cycle: u64,
        /// Memory macro name.
        mem: String,
        /// Affected word.
        word: u32,
        /// Flipped bit.
        bit: u8,
    },
}

/// Summary of all faults a simulator injected, in deterministic order.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FaultReport {
    /// The plan's seed.
    pub seed: u64,
    /// Cycles simulated when the report was taken.
    pub cycles: u64,
    /// Number of register upsets injected.
    pub reg_flips: u64,
    /// Number of SRAM upsets injected.
    pub mem_flips: u64,
    /// Total node-cycles spent under an active stuck-at force.
    pub stuck_cycles: u64,
    /// Every fault event, in injection order (cycle-major, then
    /// stuck-at edges, SRAM upsets, register upsets, each in netlist
    /// order — independent of thread count).
    pub events: Vec<FaultEvent>,
}

#[derive(Clone, Debug)]
struct CompiledStuck {
    node: u32,
    signal: String,
    bit: u8,
    value: bool,
    from: u64,
    to: u64,
    active: bool,
}

#[derive(Clone, Debug)]
struct RegSite {
    node: u32,
    width: u8,
}

#[derive(Clone, Debug)]
struct MemSite {
    mem: u32,
    words: u32,
    width: u8,
    name: String,
}

/// A [`FaultPlan`] resolved against a netlist, plus the event log the
/// simulator appends to as it injects.
#[derive(Clone, Debug)]
pub struct CompiledFaults {
    seed: u64,
    stuck: Vec<CompiledStuck>,
    reg_threshold: u64,
    mem_threshold: u64,
    regs: Vec<RegSite>,
    mems: Vec<MemSite>,
    netlist_names: Vec<String>,
}

impl CompiledFaults {
    /// `(node, and_mask, or_mask)` of every stuck-at force active at
    /// `cycle`, plus whether the active set changed relative to the
    /// stored activation state (an edge requires a full re-evaluation
    /// because skipped shards would otherwise keep stale values).
    /// Updates activation state and appends edge events to `events`.
    pub(crate) fn stuck_forces_at(
        &mut self,
        cycle: u64,
        events: &mut Vec<FaultEvent>,
    ) -> (Vec<(u32, u64, u64)>, bool) {
        let mut forces = Vec::new();
        let mut edge = false;
        for s in &mut self.stuck {
            let now = cycle >= s.from && cycle < s.to;
            if now != s.active {
                edge = true;
                events.push(if now {
                    FaultEvent::StuckActivated {
                        cycle,
                        signal: s.signal.clone(),
                        bit: s.bit,
                        value: s.value,
                    }
                } else {
                    FaultEvent::StuckReleased {
                        cycle,
                        signal: s.signal.clone(),
                        bit: s.bit,
                    }
                });
                s.active = now;
            }
            if now {
                let bit = 1u64 << s.bit;
                if s.value {
                    forces.push((s.node, u64::MAX, bit));
                } else {
                    forces.push((s.node, !bit, 0));
                }
            }
        }
        (forces, edge)
    }

    /// Number of stuck-at forces active at `cycle` (for the report's
    /// `stuck_cycles` tally) without mutating activation state.
    pub(crate) fn active_stuck_count(&self, cycle: u64) -> u64 {
        self.stuck
            .iter()
            .filter(|s| cycle >= s.from && cycle < s.to)
            .count() as u64
    }

    /// Register upsets for `cycle`: `(site index into the simulator's
    /// register list is NOT used — the node id is)` as
    /// `(node, flip_mask)` in netlist order, with events appended.
    pub(crate) fn reg_flips_at(&self, cycle: u64, events: &mut Vec<FaultEvent>) -> Vec<(u32, u64)> {
        if self.reg_threshold == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        for site in &self.regs {
            let h = mix3(self.seed, cycle, 0x5245_4700 ^ site.node as u64);
            if h < self.reg_threshold {
                let bit = (mix3(self.seed, cycle, 0x5245_4701 ^ site.node as u64)
                    % site.width as u64) as u8;
                events.push(FaultEvent::RegFlip {
                    cycle,
                    signal: self.netlist_names[site.node as usize].clone(),
                    bit,
                });
                out.push((site.node, 1u64 << bit));
            }
        }
        out
    }

    /// SRAM upsets for `cycle` as `(mem, word, flip_mask)` in memory
    /// order, with events appended.
    pub(crate) fn mem_flips_at(
        &self,
        cycle: u64,
        events: &mut Vec<FaultEvent>,
    ) -> Vec<(u32, u32, u64)> {
        if self.mem_threshold == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        for site in &self.mems {
            let h = mix3(self.seed, cycle, 0x4D45_4D00 ^ site.mem as u64);
            if h < self.mem_threshold {
                let word = (mix3(self.seed, cycle, 0x4D45_4D01 ^ site.mem as u64)
                    % site.words as u64) as u32;
                let bit = (mix3(self.seed, cycle, 0x4D45_4D02 ^ site.mem as u64)
                    % site.width as u64) as u8;
                events.push(FaultEvent::MemFlip {
                    cycle,
                    mem: site.name.clone(),
                    word,
                    bit,
                });
                out.push((site.mem, word, 1u64 << bit));
            }
        }
        out
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Emits fault events through the telemetry sink as typed
/// `sim.fault.*` events (counting is the caller's concern). Shared by
/// the scalar and bitslice engines so both surface injections
/// identically; emission order is deterministic because fault-injecting
/// simulators step on one thread and record events cycle-major in
/// netlist order.
pub(crate) fn emit_events(new: &[FaultEvent]) {
    use apollo_telemetry::FieldValue;
    if !apollo_telemetry::events_enabled() {
        return;
    }
    for ev in new {
        match ev {
            FaultEvent::StuckActivated {
                cycle,
                signal,
                bit,
                value,
            } => {
                apollo_telemetry::emit_event(
                    "sim.fault.stuck_on",
                    &[
                        ("cycle", FieldValue::from(*cycle)),
                        ("signal", FieldValue::from(signal.as_str())),
                        ("bit", FieldValue::from(*bit)),
                        ("value", FieldValue::from(*value)),
                    ],
                );
            }
            FaultEvent::StuckReleased { cycle, signal, bit } => {
                apollo_telemetry::emit_event(
                    "sim.fault.stuck_off",
                    &[
                        ("cycle", FieldValue::from(*cycle)),
                        ("signal", FieldValue::from(signal.as_str())),
                        ("bit", FieldValue::from(*bit)),
                    ],
                );
            }
            FaultEvent::RegFlip { cycle, signal, bit } => {
                apollo_telemetry::emit_event(
                    "sim.fault.reg_flip",
                    &[
                        ("cycle", FieldValue::from(*cycle)),
                        ("signal", FieldValue::from(signal.as_str())),
                        ("bit", FieldValue::from(*bit)),
                    ],
                );
            }
            FaultEvent::MemFlip {
                cycle,
                mem,
                word,
                bit,
            } => {
                apollo_telemetry::emit_event(
                    "sim.fault.mem_flip",
                    &[
                        ("cycle", FieldValue::from(*cycle)),
                        ("mem", FieldValue::from(mem.as_str())),
                        ("word", FieldValue::from(*word)),
                        ("bit", FieldValue::from(*bit)),
                    ],
                );
            }
        }
    }
}

/// Maps a probability to a threshold on a uniform `u64` hash. `p = 1`
/// maps to `u64::MAX` (an `h < t` test then fires with probability
/// `1 - 2⁻⁶⁴`, indistinguishable in practice).
///
/// Public so meter-local fault injection (`apollo-opm`) shares the same
/// Bernoulli convention as the netlist-level injector.
pub fn rate_to_threshold(p: f64) -> u64 {
    if p <= 0.0 {
        0
    } else if p >= 1.0 {
        u64::MAX
    } else {
        (p * u64::MAX as f64) as u64
    }
}

/// Counter-based mix (splitmix64 finalizer over three words): a pure
/// function of its inputs, so fault decisions are independent of
/// evaluation order and thread count.
///
/// Public as the workspace-wide fault-decision hash: `apollo-opm`'s
/// meter-local injector uses the same function with `(seed, epoch,
/// site)` so its reports replay identically too.
pub fn mix3(seed: u64, cycle: u64, site: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(cycle.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(site.wrapping_mul(0x94D0_49BB_1331_11EB));
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apollo_rtl::{NetlistBuilder, Unit, CLOCK_ROOT};

    fn tiny_netlist() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        let r = b.reg(8, 0, CLOCK_ROOT, "count", Unit::Control);
        let one = b.constant(1, 8);
        let n = b.add(r, one);
        b.connect(r, n);
        b.build().unwrap()
    }

    #[test]
    fn compile_rejects_unknown_signal() {
        let nl = tiny_netlist();
        let plan = FaultPlan {
            stuck_at: vec![StuckAtFault {
                signal: "no_such".into(),
                bit: 0,
                value: true,
                from_cycle: 0,
                to_cycle: u64::MAX,
            }],
            ..FaultPlan::empty()
        };
        assert!(matches!(
            plan.compile(&nl),
            Err(FaultPlanError::UnknownSignal { .. })
        ));
    }

    #[test]
    fn compile_rejects_wide_bit_and_bad_rate() {
        let nl = tiny_netlist();
        let plan = FaultPlan {
            stuck_at: vec![StuckAtFault {
                signal: "count".into(),
                bit: 8,
                value: true,
                from_cycle: 0,
                to_cycle: 10,
            }],
            ..FaultPlan::empty()
        };
        assert!(matches!(
            plan.compile(&nl),
            Err(FaultPlanError::BitOutOfRange { width: 8, .. })
        ));
        let plan = FaultPlan {
            reg_flip_rate: 1.5,
            ..FaultPlan::empty()
        };
        assert!(matches!(
            plan.compile(&nl),
            Err(FaultPlanError::BadRate { .. })
        ));
    }

    #[test]
    fn mix_is_deterministic_and_spreads() {
        assert_eq!(mix3(1, 2, 3), mix3(1, 2, 3));
        assert_ne!(mix3(1, 2, 3), mix3(1, 2, 4));
        assert_ne!(mix3(1, 2, 3), mix3(2, 2, 3));
        // Empirical rate sanity: threshold at 10% fires ~10% of draws.
        let t = rate_to_threshold(0.1);
        let hits = (0..10_000).filter(|&c| mix3(7, c, 42) < t).count();
        assert!((700..1300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let plan = FaultPlan {
            seed: 42,
            stuck_at: vec![StuckAtFault {
                signal: "count".into(),
                bit: 3,
                value: false,
                from_cycle: 10,
                to_cycle: 90,
            }],
            reg_flip_rate: 1e-3,
            mem_flip_rate: 1e-4,
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
