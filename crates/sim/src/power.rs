//! Ground-truth per-cycle power computation.

use std::fmt;
use std::ops::Add;

/// Configuration of the ground-truth power engine.
///
/// All values are in arbitrary-but-consistent units (the paper likewise
/// reports scaled power).
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PowerConfig {
    /// Scale factor applied to switched capacitance, playing the role of
    /// `½V²` in Eq. (2) of the paper.
    pub half_v_squared: f64,
    /// Fraction of an arithmetic node's capacitance dissipated as glitch
    /// power per toggling *input* bit (spurious transitions inside carry
    /// chains and multiplier arrays that settle within the cycle).
    pub glitch_factor: f64,
    /// Short-circuit power as a fraction of the cycle's switching power,
    /// modulated per cycle by a deterministic data-dependent factor.
    pub short_circuit_factor: f64,
    /// Static leakage power added to every cycle (temperature/Vt are
    /// constant over a run; see paper §4).
    pub leakage: f64,
    /// Relative amplitude of the deterministic residual "measurement
    /// surface" noise applied to the dynamic component, modelling power
    /// contributions (crowbar currents, local IR effects) that no toggle
    /// model can express. 0 disables it.
    pub noise_rel: f64,
    /// Seed for the deterministic per-cycle noise.
    pub seed: u64,
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig {
            half_v_squared: 1.0,
            glitch_factor: 0.12,
            short_circuit_factor: 0.05,
            leakage: 30.0,
            noise_rel: 0.02,
            seed: 0xF00D,
        }
    }
}

/// Per-cycle power breakdown produced by the simulator.
#[derive(Copy, Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PowerSample {
    /// Total power for the cycle (sum of all components).
    pub total: f64,
    /// Net-switching power (Eq. 2 over toggling signal bits).
    pub switching: f64,
    /// Clock-tree and register clock-pin power of pulsing domains.
    pub clock: f64,
    /// Memory-macro access energy.
    pub memory: f64,
    /// Glitch power from arithmetic input activity.
    pub glitch: f64,
    /// Short-circuit power.
    pub short_circuit: f64,
    /// Leakage power.
    pub leakage: f64,
}

impl PowerSample {
    /// Builds a sample from components, computing the total.
    #[allow(clippy::too_many_arguments)]
    pub fn from_components(
        switching: f64,
        clock: f64,
        memory: f64,
        glitch: f64,
        short_circuit: f64,
        leakage: f64,
        noise: f64,
    ) -> Self {
        PowerSample {
            total: switching + clock + memory + glitch + short_circuit + leakage + noise,
            switching,
            clock,
            memory,
            glitch,
            short_circuit,
            leakage,
        }
    }
}

impl Add for PowerSample {
    type Output = PowerSample;

    fn add(self, rhs: PowerSample) -> PowerSample {
        PowerSample {
            total: self.total + rhs.total,
            switching: self.switching + rhs.switching,
            clock: self.clock + rhs.clock,
            memory: self.memory + rhs.memory,
            glitch: self.glitch + rhs.glitch,
            short_circuit: self.short_circuit + rhs.short_circuit,
            leakage: self.leakage + rhs.leakage,
        }
    }
}

impl fmt::Display for PowerSample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total={:.2} (sw={:.2} clk={:.2} mem={:.2} gl={:.2} sc={:.2} lk={:.2})",
            self.total,
            self.switching,
            self.clock,
            self.memory,
            self.glitch,
            self.short_circuit,
            self.leakage
        )
    }
}

/// Mean per-cycle power of one completed `T`-cycle window, the
/// ground-truth tap the runtime introspection pipeline compares the
/// OPM against.
#[derive(Copy, Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WindowPower {
    /// Zero-based window index.
    pub index: u64,
    /// Cycle count of the window (`T`).
    pub cycles: usize,
    /// Mean per-cycle power breakdown over the window.
    pub mean: PowerSample,
}

/// Accumulates per-cycle [`PowerSample`]s into fixed-size windows.
///
/// Summation order is cycle order, so window means are bit-identical
/// for any netlist-level thread count (per-cycle samples already are,
/// by the parallel engine's determinism contract).
#[derive(Clone, Debug)]
pub struct WindowTap {
    t: usize,
    acc: PowerSample,
    filled: usize,
    next_index: u64,
}

impl WindowTap {
    /// New tap with window length `t` (cycles).
    ///
    /// # Panics
    /// Panics if `t` is zero.
    pub fn new(t: usize) -> Self {
        assert!(t >= 1, "window must be at least 1 cycle");
        WindowTap {
            t,
            acc: PowerSample::default(),
            filled: 0,
            next_index: 0,
        }
    }

    /// Window length in cycles.
    pub fn window(&self) -> usize {
        self.t
    }

    /// Completed windows so far.
    pub fn completed(&self) -> u64 {
        self.next_index
    }

    /// Adds one cycle's sample; returns the finished window when this
    /// cycle completes it.
    pub fn push(&mut self, sample: &PowerSample) -> Option<WindowPower> {
        self.acc = self.acc + *sample;
        self.filled += 1;
        if self.filled < self.t {
            return None;
        }
        let n = self.t as f64;
        let mean = PowerSample {
            total: self.acc.total / n,
            switching: self.acc.switching / n,
            clock: self.acc.clock / n,
            memory: self.acc.memory / n,
            glitch: self.acc.glitch / n,
            short_circuit: self.acc.short_circuit / n,
            leakage: self.acc.leakage / n,
        };
        let out = WindowPower {
            index: self.next_index,
            cycles: self.t,
            mean,
        };
        self.acc = PowerSample::default();
        self.filled = 0;
        self.next_index += 1;
        Some(out)
    }
}

/// Deterministic uniform value in `[0, 1)` from a 64-bit key.
pub(crate) fn unit_hash(x: u64) -> f64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_components_totals() {
        let s = PowerSample::from_components(1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 0.5);
        assert!((s.total - 21.5).abs() < 1e-12);
    }

    #[test]
    fn add_sums_fields() {
        let a = PowerSample::from_components(1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.0);
        let b = a + a;
        assert!((b.total - 12.0).abs() < 1e-12);
        assert!((b.clock - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_total() {
        let s = PowerSample::from_components(1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
        assert!(s.to_string().contains("total=1.00"));
    }

    #[test]
    fn window_tap_means_match_manual_average() {
        let mut tap = WindowTap::new(4);
        let mut out = Vec::new();
        for c in 0..12u64 {
            let s = PowerSample::from_components(c as f64, 1.0, 0.0, 0.0, 0.0, 2.0, 0.0);
            if let Some(w) = tap.push(&s) {
                out.push(w);
            }
        }
        assert_eq!(out.len(), 3);
        assert_eq!(tap.completed(), 3);
        // Window 1 covers cycles 4..8: mean switching (4+5+6+7)/4.
        assert_eq!(out[1].index, 1);
        assert!((out[1].mean.switching - 5.5).abs() < 1e-12);
        assert!((out[1].mean.total - (5.5 + 3.0)).abs() < 1e-12);
        assert_eq!(out[1].cycles, 4);
    }

    #[test]
    fn unit_hash_in_range_and_deterministic() {
        for i in 0..100 {
            let v = unit_hash(i);
            assert!((0.0..1.0).contains(&v));
            assert_eq!(v, unit_hash(i));
        }
    }
}
