//! Minimal VCD (value change dump) export for debugging waveforms.

use crate::simulator::Simulator;
use apollo_rtl::{Netlist, NodeId};
use std::io::{self, Write};

/// Streams a value-change dump of selected signals to any writer.
///
/// Useful for eyeballing pipelines in a waveform viewer; not on any hot
/// path. A mutable reference can be passed as the writer.
#[derive(Debug)]
pub struct VcdWriter<W: Write> {
    out: W,
    nodes: Vec<NodeId>,
    idents: Vec<String>,
    last: Vec<Option<u64>>,
    time: u64,
}

impl<W: Write> VcdWriter<W> {
    /// Creates a VCD writer for the given signals and emits the header.
    ///
    /// # Errors
    /// Propagates I/O errors from the underlying writer.
    pub fn new(mut out: W, netlist: &Netlist, nodes: &[NodeId]) -> io::Result<Self> {
        writeln!(out, "$date today $end")?;
        writeln!(out, "$version apollo-sim $end")?;
        writeln!(out, "$timescale 1ns $end")?;
        writeln!(out, "$scope module {} $end", netlist.design_name())?;
        let mut idents = Vec::with_capacity(nodes.len());
        for (i, &n) in nodes.iter().enumerate() {
            let ident = vcd_ident(i);
            let width = netlist.node(n).width;
            let name = netlist.display_name(n).replace('/', ".");
            writeln!(out, "$var wire {width} {ident} {name} $end")?;
            idents.push(ident);
        }
        writeln!(out, "$upscope $end")?;
        writeln!(out, "$enddefinitions $end")?;
        Ok(VcdWriter {
            out,
            nodes: nodes.to_vec(),
            idents,
            last: vec![None; nodes.len()],
            time: 0,
        })
    }

    /// Samples the simulator's current values, emitting changes.
    ///
    /// # Errors
    /// Propagates I/O errors from the underlying writer.
    pub fn sample(&mut self, sim: &Simulator<'_>) -> io::Result<()> {
        writeln!(self.out, "#{}", self.time)?;
        for (i, &n) in self.nodes.iter().enumerate() {
            let v = sim.value(n);
            if self.last[i] != Some(v) {
                let width = sim.netlist().node(n).width;
                if width == 1 {
                    writeln!(self.out, "{}{}", v & 1, self.idents[i])?;
                } else {
                    writeln!(self.out, "b{:b} {}", v, self.idents[i])?;
                }
                self.last[i] = Some(v);
            }
        }
        self.time += 1;
        Ok(())
    }
}

/// Generates a printable-ASCII short identifier for signal `i`.
fn vcd_ident(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((b'!' + (i % 94) as u8) as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PowerConfig;
    use apollo_rtl::{CapModel, NetlistBuilder, Unit, CLOCK_ROOT};

    #[test]
    fn writes_header_and_changes() {
        let mut b = NetlistBuilder::new("t");
        let r = b.reg(4, 0, CLOCK_ROOT, "count", Unit::Control);
        let one = b.constant(1, 4);
        let n = b.add(r, one);
        b.connect(r, n);
        let nl = b.build().unwrap();
        let cap = CapModel::default().annotate(&nl);
        let mut sim = Simulator::new(&nl, &cap, PowerConfig::default());

        let mut buf = Vec::new();
        let mut vcd = VcdWriter::new(&mut buf, &nl, &[r]).unwrap();
        for _ in 0..3 {
            sim.step();
            vcd.sample(&sim).unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("$var wire 4"));
        assert!(text.contains("count"));
        assert!(text.contains("#0"));
        assert!(text.contains("b1 "));
        assert!(text.contains("b11 "));
    }

    #[test]
    fn idents_unique_for_many_signals() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(vcd_ident(i)));
        }
    }
}
