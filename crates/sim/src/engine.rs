//! Shared evaluation engine behind [`crate::Simulator`] and
//! [`crate::BitsliceSimulator`].
//!
//! Holds the compiled per-node instruction stream and the value/prev/
//! toggle arrays as `AtomicU64` words inside an [`Arc`], so a pool of
//! persistent worker threads can evaluate disjoint shards of one level
//! concurrently (nodes of equal level never depend on each other; see
//! [`crate::schedule`]). All element accesses are `Relaxed` — the
//! per-level barrier provides the acquire/release edges that order one
//! level's writes before the next level's reads. Power accumulation is
//! deliberately *not* done here: the simulator runs a serial
//! netlist-order pass afterwards so float summation order — and thus
//! every power figure — is bit-identical across thread counts.
//!
//! The level-parallel machinery (shard scheduling, worker pool,
//! barriers) is generic over [`LevelPass`], so the scalar engine and
//! the bit-sliced engine share one pool implementation and differ only
//! in how a shard is evaluated.

use crate::power::{PowerConfig, PowerSample};
use crate::schedule::LevelSchedule;
use apollo_rtl::{CapAnnotation, Netlist, NodeId, Op};
use apollo_telemetry::{counter, histogram, timing_enabled, Counter, Histogram};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, LazyLock, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Which simulation kernel evaluates the netlist.
///
/// The scalar levelized engine is the reference oracle: one trace
/// vector per instance, one gate at a time. The bitslice engine packs
/// up to 64 independent trace vectors into one `u64` lane word per
/// signal bit and evaluates all of them per gate op; it is
/// machine-checked bit-identical to the scalar engine per lane (see
/// `tests/bitslice_differential.rs`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// One vector per pass — the differential oracle.
    #[default]
    Scalar,
    /// 64 lane-packed vectors per pass (SIMD within a register).
    Bitslice,
}

impl EngineKind {
    /// Canonical lower-case name (`"scalar"` / `"bitslice"`).
    pub fn as_str(self) -> &'static str {
        match self {
            EngineKind::Scalar => "scalar",
            EngineKind::Bitslice => "bitslice",
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" => Ok(EngineKind::Scalar),
            "bitslice" => Ok(EngineKind::Bitslice),
            other => Err(format!(
                "unknown engine `{other}` (expected `scalar` or `bitslice`)"
            )),
        }
    }
}

/// Common per-lane observables of a simulation engine.
///
/// [`crate::Simulator`] implements this with a single lane (lane 0);
/// [`crate::BitsliceSimulator`] with up to 64. The differential tests
/// and batch capture helpers drive either engine through this trait;
/// lane `k` of a bitslice instance must be bit-identical to a scalar
/// instance driven with lane `k`'s stimulus.
pub trait SimEngine {
    /// Which kernel this engine runs.
    fn kind(&self) -> EngineKind;
    /// Number of active lanes (1 for the scalar engine).
    fn lanes(&self) -> usize;
    /// Stages an input value for `lane` to take effect at the next step.
    fn set_input(&mut self, lane: usize, node: NodeId, value: u64);
    /// Advances one clock edge on every lane.
    fn step(&mut self);
    /// Advances one clock edge on every lane without computing power
    /// (the proxy-trace extraction mode). Engines that cannot skip the
    /// power pass may fall back to [`SimEngine::step`]; either way the
    /// functional state and toggle planes advance identically.
    fn step_toggles(&mut self) {
        self.step();
    }
    /// Completed cycles per lane.
    fn cycle(&self) -> u64;
    /// Current value of a node on `lane`.
    fn value(&self, lane: usize, node: NodeId) -> u64;
    /// Feature-toggle word of a node on `lane` for the last cycle.
    fn toggle_word(&self, lane: usize, node: NodeId) -> u64;
    /// Packs `lane`'s last-cycle toggle bits into a flat `M`-bit row.
    fn toggle_row(&self, lane: usize, out: &mut [u64]);
    /// Ground-truth power of the last cycle on `lane`.
    fn power(&self, lane: usize) -> PowerSample;
    /// Per-unit switching power of the last cycle on `lane`.
    fn unit_switching(&self, lane: usize) -> Vec<f64>;
}

/// Engine metrics, interned once per kernel. Shard totals are
/// deterministic across thread counts (shard skipping depends only on
/// the dirty set); `_ns`-suffixed wall-clock metrics are collected only
/// while [`apollo_telemetry::timing_enabled`].
pub(crate) struct PassMetrics {
    shards_evaluated: &'static Counter,
    shards_skipped: &'static Counter,
    level_eval_ns: &'static Histogram,
    worker_pass_ns: &'static Counter,
    worker_idle_ns: &'static Counter,
}

static SCALAR_METRICS: LazyLock<PassMetrics> = LazyLock::new(|| PassMetrics {
    shards_evaluated: counter("sim.shards_evaluated"),
    shards_skipped: counter("sim.shards_skipped"),
    level_eval_ns: histogram("sim.level_eval_ns"),
    worker_pass_ns: counter("sim.worker.pass_ns"),
    worker_idle_ns: counter("sim.worker.idle_ns"),
});

/// The bitslice engine evaluates each shard once per 64-lane batch, so
/// its shard totals can never equal the scalar engine's; they get their
/// own namespace to keep cross-engine metric comparisons meaningful.
pub(crate) static BITSLICE_METRICS: LazyLock<PassMetrics> = LazyLock::new(|| PassMetrics {
    shards_evaluated: counter("sim.bitslice.shards_evaluated"),
    shards_skipped: counter("sim.bitslice.shards_skipped"),
    level_eval_ns: histogram("sim.bitslice.level_eval_ns"),
    worker_pass_ns: counter("sim.worker.pass_ns"),
    worker_idle_ns: counter("sim.worker.idle_ns"),
});

/// Compiled per-node instruction; mirrors [`apollo_rtl::Op`] with
/// resolved indices and pre-computed widths so the evaluation loop
/// touches no netlist structures.
#[derive(Clone, Debug)]
pub(crate) enum Instr {
    /// Sequential node (register or memory read port): value is state.
    Hold,
    /// External input: value is staged by the harness.
    Input,
    Const,
    Not(u32),
    And(u32, u32),
    Or(u32, u32),
    Xor(u32, u32),
    Add(u32, u32),
    Sub(u32, u32),
    Mul(u32, u32),
    Udiv(u32, u32),
    Eq(u32, u32),
    Ult(u32, u32),
    Shl(u32, u32, u8),
    Shr(u32, u32),
    Mux(u32, u32, u32),
    Slice(u32, u8),
    Concat(u32, u32, u8),
    ReduceOr(u32),
    ReduceAnd(u32, u64),
    ReduceXor(u32),
    Gated(u32),
}

/// A register's commit wiring: the holding node, its next-state source
/// and its clock domain.
#[derive(Clone, Debug)]
pub(crate) struct RegCommit {
    pub(crate) reg: u32,
    pub(crate) next: u32,
    pub(crate) domain: u32,
}

/// One memory macro's ports, with node indices resolved.
#[derive(Clone, Debug)]
pub(crate) struct MemPorts {
    pub(crate) mem: u32,
    pub(crate) words: u32,
    /// (port node, addr node, en node)
    pub(crate) reads: Vec<(u32, u32, u32)>,
    /// (en node, addr node, data node)
    pub(crate) writes: Vec<(u32, u32, u32)>,
}

/// Arithmetic node needing glitch power: operands `a`/`b` and energy
/// per toggling input bit. Sorted by node index.
#[derive(Clone, Debug)]
pub(crate) struct GlitchEntry {
    pub(crate) node: u32,
    pub(crate) a: u32,
    pub(crate) b: u32,
    pub(crate) energy: f64,
}

/// Everything both engines derive from a netlist + capacitance
/// annotation: the instruction stream, per-node masks/caps, sequential
/// element wiring, per-domain/memory energy tables and the levelized
/// schedule. Built once per simulator by [`compile`].
pub(crate) struct Compiled {
    pub(crate) instrs: Vec<Instr>,
    pub(crate) masks: Vec<u64>,
    pub(crate) caps: Vec<f64>,
    pub(crate) glitch_list: Vec<GlitchEntry>,
    pub(crate) regs: Vec<RegCommit>,
    pub(crate) init_values: Vec<u64>,
    pub(crate) mems_ports: Vec<MemPorts>,
    pub(crate) mem_init: Vec<Vec<u64>>,
    /// Gated-clock signal node per domain (`u32::MAX` for root).
    pub(crate) clock_nodes: Vec<u32>,
    pub(crate) clock_caps: Vec<f64>,
    pub(crate) mem_energy: Vec<f64>,
    /// Functional-unit index of each node (for power attribution).
    pub(crate) unit_of: Vec<u8>,
    pub(crate) schedule: LevelSchedule,
}

fn apollo_rtl_clock_id(d: usize) -> apollo_rtl::ClockId {
    apollo_rtl::ClockId::from_index(d)
}

/// Compiles a netlist into the engine-neutral [`Compiled`] tables.
pub(crate) fn compile(netlist: &Netlist, cap: &CapAnnotation, config: &PowerConfig) -> Compiled {
    let n = netlist.len();
    let mut instrs = Vec::with_capacity(n);
    let mut masks = Vec::with_capacity(n);
    let mut caps = Vec::with_capacity(n);
    let mut glitch_list = Vec::new();
    let mut regs = Vec::new();
    let mut values = vec![0u64; n];

    for (i, node) in netlist.nodes().iter().enumerate() {
        let w = node.width;
        let m = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        masks.push(m);
        caps.push(cap.node_cap(i));
        match node.op {
            Op::Add(a, b) | Op::Sub(a, b) => glitch_list.push(GlitchEntry {
                node: i as u32,
                a: a.index() as u32,
                b: b.index() as u32,
                energy: config.glitch_factor * cap.node_cap(i),
            }),
            Op::Mul(a, b) | Op::Udiv(a, b) => glitch_list.push(GlitchEntry {
                node: i as u32,
                a: a.index() as u32,
                b: b.index() as u32,
                energy: 2.0 * config.glitch_factor * cap.node_cap(i),
            }),
            _ => {}
        }
        let instr = match node.op {
            Op::Input => Instr::Input,
            Op::Const(v) => {
                values[i] = v;
                Instr::Const
            }
            Op::Not(a) => Instr::Not(a.index() as u32),
            Op::And(a, b) => Instr::And(a.index() as u32, b.index() as u32),
            Op::Or(a, b) => Instr::Or(a.index() as u32, b.index() as u32),
            Op::Xor(a, b) => Instr::Xor(a.index() as u32, b.index() as u32),
            Op::Add(a, b) => Instr::Add(a.index() as u32, b.index() as u32),
            Op::Sub(a, b) => Instr::Sub(a.index() as u32, b.index() as u32),
            Op::Mul(a, b) => Instr::Mul(a.index() as u32, b.index() as u32),
            Op::Udiv(a, b) => Instr::Udiv(a.index() as u32, b.index() as u32),
            Op::Eq(a, b) => Instr::Eq(a.index() as u32, b.index() as u32),
            Op::Ult(a, b) => Instr::Ult(a.index() as u32, b.index() as u32),
            Op::Shl(a, s) => Instr::Shl(a.index() as u32, s.index() as u32, w),
            Op::Shr(a, s) => Instr::Shr(a.index() as u32, s.index() as u32),
            Op::Mux { sel, t, f } => {
                Instr::Mux(sel.index() as u32, t.index() as u32, f.index() as u32)
            }
            Op::Slice { src, lo } => Instr::Slice(src.index() as u32, lo),
            Op::Concat { hi, lo } => {
                let lo_w = netlist.node(lo).width;
                Instr::Concat(hi.index() as u32, lo.index() as u32, lo_w)
            }
            Op::ReduceOr(a) => Instr::ReduceOr(a.index() as u32),
            Op::ReduceAnd(a) => {
                let aw = netlist.node(a).width;
                let am = if aw == 64 { u64::MAX } else { (1u64 << aw) - 1 };
                Instr::ReduceAnd(a.index() as u32, am)
            }
            Op::ReduceXor(a) => Instr::ReduceXor(a.index() as u32),
            Op::Reg { next, init, clock } => {
                values[i] = init;
                regs.push(RegCommit {
                    reg: i as u32,
                    next: next.expect("built netlist has connected regs").index() as u32,
                    domain: clock.index() as u32,
                });
                Instr::Hold
            }
            Op::GatedClock { enable } => Instr::Gated(enable.index() as u32),
            Op::MemRead { .. } => Instr::Hold,
        };
        instrs.push(instr);
    }

    let mut mems_ports: Vec<MemPorts> = netlist
        .memories()
        .iter()
        .enumerate()
        .map(|(mi, m)| MemPorts {
            mem: mi as u32,
            words: m.words,
            reads: Vec::new(),
            writes: m
                .writes
                .iter()
                .map(|wp| {
                    (
                        wp.en.index() as u32,
                        wp.addr.index() as u32,
                        wp.data.index() as u32,
                    )
                })
                .collect(),
        })
        .collect();
    for (i, node) in netlist.nodes().iter().enumerate() {
        if let Op::MemRead { mem, addr, en } = node.op {
            mems_ports[mem.index()]
                .reads
                .push((i as u32, addr.index() as u32, en.index() as u32));
        }
    }

    let mem_init: Vec<Vec<u64>> = netlist
        .memories()
        .iter()
        .map(|m| {
            let mut d = vec![0u64; m.words as usize];
            d[..m.init.len()].copy_from_slice(&m.init);
            d
        })
        .collect();

    let clock_nodes: Vec<u32> = (0..netlist.clock_domains())
        .map(|d| {
            netlist
                .clock_node(apollo_rtl_clock_id(d))
                .map(|n| n.index() as u32)
                .unwrap_or(u32::MAX)
        })
        .collect();

    let clock_caps = (0..netlist.clock_domains())
        .map(|d| cap.clock_cap(apollo_rtl_clock_id(d)))
        .collect();
    let mem_energy = (0..netlist.memories().len())
        .map(|m| cap.mem_energy(m))
        .collect();

    let unit_of: Vec<u8> = (0..netlist.len())
        .map(|i| {
            let u = netlist.unit(NodeId::from_index(i));
            apollo_rtl::Unit::ALL
                .iter()
                .position(|x| *x == u)
                .unwrap_or(0) as u8
        })
        .collect();

    Compiled {
        instrs,
        masks,
        caps,
        glitch_list,
        regs,
        init_values: values,
        mems_ports,
        mem_init,
        clock_nodes,
        clock_caps,
        mem_energy,
        unit_of,
        schedule: LevelSchedule::build(netlist),
    }
}

/// Per-node stuck-at force masks, allocated only for fault-injecting
/// simulators: every stored value becomes `(v & and) | or`. Neutral
/// masks (`and = !0`, `or = 0`) leave values untouched, so a compiled
/// plan whose stuck-at window is inactive is value-identical to the
/// fault-free engine. Updated serially by the simulator between value
/// passes (workers sleep on the job condvar then); the pass's own
/// synchronization orders the updates before worker reads.
#[derive(Debug)]
pub(crate) struct ForceMasks {
    pub(crate) and: Vec<AtomicU64>,
    pub(crate) or: Vec<AtomicU64>,
}

impl ForceMasks {
    pub(crate) fn neutral(n: usize) -> Self {
        ForceMasks {
            and: (0..n).map(|_| AtomicU64::new(u64::MAX)).collect(),
            or: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// One kernel's view of a levelized value pass: the shared schedule
/// plus the ability to evaluate (or skip) a single shard. The pool and
/// the sequential pass driver are generic over this, so the scalar and
/// bitslice engines reuse the same round-robin split, per-level
/// barriers and metric flushing.
pub(crate) trait LevelPass: Send + Sync + 'static {
    fn schedule(&self) -> &LevelSchedule;
    fn metrics(&self) -> &'static PassMetrics;
    /// Evaluates one shard; returns `true` when evaluated, `false`
    /// when skipped against the dirty set.
    fn run_shard(&self, shard_idx: usize, record: bool, dirty: u64) -> bool;
}

/// State shared between the owning scalar simulator and its workers.
#[derive(Debug)]
pub(crate) struct SharedState {
    pub(crate) instrs: Vec<Instr>,
    pub(crate) masks: Vec<u64>,
    pub(crate) schedule: LevelSchedule,
    /// Current node values.
    pub(crate) values: Vec<AtomicU64>,
    /// Previous-cycle values (for toggle extraction).
    pub(crate) prev: Vec<AtomicU64>,
    /// Per-node feature toggles (gated clocks report their enable).
    pub(crate) feat: Vec<AtomicU64>,
    /// Per-node raw toggles `(v ^ prev) & mask` (for power).
    pub(crate) raw: Vec<AtomicU64>,
    /// Stuck-at force masks; `None` outside fault injection, keeping
    /// the fault-free hot path a single branch.
    pub(crate) forces: Option<ForceMasks>,
}

impl SharedState {
    pub(crate) fn new(
        instrs: Vec<Instr>,
        masks: Vec<u64>,
        schedule: LevelSchedule,
        initial_values: &[u64],
        with_forces: bool,
    ) -> Self {
        let atomic = |src: &[u64]| src.iter().map(|&v| AtomicU64::new(v)).collect();
        let zeros = vec![0u64; initial_values.len()];
        let n = initial_values.len();
        SharedState {
            instrs,
            masks,
            schedule,
            values: atomic(initial_values),
            prev: atomic(initial_values),
            feat: atomic(&zeros),
            raw: atomic(&zeros),
            forces: with_forces.then(|| ForceMasks::neutral(n)),
        }
    }
}

impl LevelPass for SharedState {
    fn schedule(&self) -> &LevelSchedule {
        &self.schedule
    }

    fn metrics(&self) -> &'static PassMetrics {
        &SCALAR_METRICS
    }

    fn run_shard(&self, shard_idx: usize, record: bool, dirty: u64) -> bool {
        run_shard(self, shard_idx, record, dirty)
    }
}

#[inline]
fn ld(v: &[AtomicU64], i: u32) -> u64 {
    v[i as usize].load(Ordering::Relaxed)
}

/// Evaluates one node from the current values; returns the new value
/// and, for gated clocks, the feature-toggle override.
#[inline]
fn eval_node(sh: &SharedState, i: usize, m: u64) -> (u64, Option<u64>) {
    let values = &sh.values;
    match sh.instrs[i] {
        Instr::Hold | Instr::Input | Instr::Const => (values[i].load(Ordering::Relaxed), None),
        Instr::Not(a) => (!ld(values, a) & m, None),
        Instr::And(a, b) => (ld(values, a) & ld(values, b), None),
        Instr::Or(a, b) => (ld(values, a) | ld(values, b), None),
        Instr::Xor(a, b) => (ld(values, a) ^ ld(values, b), None),
        Instr::Add(a, b) => (ld(values, a).wrapping_add(ld(values, b)) & m, None),
        Instr::Sub(a, b) => (ld(values, a).wrapping_sub(ld(values, b)) & m, None),
        Instr::Mul(a, b) => (ld(values, a).wrapping_mul(ld(values, b)) & m, None),
        Instr::Udiv(a, b) => (ld(values, a).checked_div(ld(values, b)).unwrap_or(m), None),
        Instr::Eq(a, b) => ((ld(values, a) == ld(values, b)) as u64, None),
        Instr::Ult(a, b) => ((ld(values, a) < ld(values, b)) as u64, None),
        Instr::Shl(a, s, w) => {
            let amt = ld(values, s);
            let v = if amt >= w as u64 {
                0
            } else {
                (ld(values, a) << amt) & m
            };
            (v, None)
        }
        Instr::Shr(a, s) => {
            let amt = ld(values, s);
            let v = if amt >= 64 { 0 } else { ld(values, a) >> amt };
            (v, None)
        }
        Instr::Mux(sel, t, f) => {
            let v = if ld(values, sel) != 0 {
                ld(values, t)
            } else {
                ld(values, f)
            };
            (v, None)
        }
        Instr::Slice(src, lo) => ((ld(values, src) >> lo) & m, None),
        Instr::Concat(hi, lo, lo_w) => ((ld(values, hi) << lo_w) | ld(values, lo), None),
        Instr::ReduceOr(a) => ((ld(values, a) != 0) as u64, None),
        Instr::ReduceAnd(a, am) => ((ld(values, a) == am) as u64, None),
        Instr::ReduceXor(a) => ((ld(values, a).count_ones() as u64) & 1, None),
        Instr::Gated(en) => {
            let e = ld(values, en);
            // Feature semantics for gated clocks: the per-cycle toggle
            // bit is the enable itself (the net physically toggles
            // twice per enabled cycle).
            (e, Some(e))
        }
    }
}

/// Evaluates one shard. A shard disjoint from the dirty set is skipped:
/// none of its source groups changed, so every node keeps its value and
/// only the toggle words need clearing (gated clocks report their —
/// unchanged — enable as the feature).
/// Returns `true` when the shard was evaluated, `false` when skipped.
fn run_shard(sh: &SharedState, shard_idx: usize, record: bool, dirty: u64) -> bool {
    let shard = &sh.schedule.shards()[shard_idx];
    let nodes = &sh.schedule.order()[shard.start as usize..shard.end as usize];
    if record && shard.influence & dirty == 0 {
        for &ni in nodes {
            let i = ni as usize;
            let f = match sh.instrs[i] {
                Instr::Gated(_) => sh.values[i].load(Ordering::Relaxed),
                _ => 0,
            };
            sh.feat[i].store(f, Ordering::Relaxed);
            sh.raw[i].store(0, Ordering::Relaxed);
        }
        return false;
    }
    for &ni in nodes {
        let i = ni as usize;
        let m = sh.masks[i];
        let (mut v, mut feature_override) = eval_node(sh, i, m);
        if let Some(f) = &sh.forces {
            v = (v & f.and[i].load(Ordering::Relaxed)) | f.or[i].load(Ordering::Relaxed);
            // A forced gated clock reports its forced enable.
            if feature_override.is_some() {
                feature_override = Some(v);
            }
        }
        if record {
            let t = (v ^ sh.prev[i].load(Ordering::Relaxed)) & m;
            sh.prev[i].store(v, Ordering::Relaxed);
            sh.raw[i].store(t, Ordering::Relaxed);
            sh.feat[i].store(feature_override.unwrap_or(t), Ordering::Relaxed);
        }
        sh.values[i].store(v, Ordering::Relaxed);
    }
    true
}

/// Single-threaded value pass: shards in (level, index) order. Walks
/// levels explicitly (same shard order — shards are stored
/// level-contiguously) so per-level wall clock can be observed while
/// timing is on.
pub(crate) fn run_pass_seq<S: LevelPass>(sh: &S, record: bool, dirty: u64) {
    let timing = timing_enabled();
    let metrics = sh.metrics();
    let mut evaluated = 0u64;
    let mut skipped = 0u64;
    for level in 0..sh.schedule().n_levels() {
        let t0 = timing.then(Instant::now);
        let (lo, hi) = sh.schedule().level_shard_range(level);
        for idx in lo as usize..hi as usize {
            if sh.run_shard(idx, record, dirty) {
                evaluated += 1;
            } else {
                skipped += 1;
            }
        }
        if let Some(t0) = t0 {
            metrics
                .level_eval_ns
                .observe(t0.elapsed().as_nanos() as u64);
        }
    }
    metrics.shards_evaluated.add(evaluated);
    metrics.shards_skipped.add(skipped);
}

/// One participant (main thread or worker) of the parallel value pass.
/// Shards of each level are dealt round-robin by participant index;
/// every participant crosses the same `n_levels` barriers.
fn run_pass_parallel<S: LevelPass>(
    sh: &S,
    ctl: &Ctl,
    participant: usize,
    local_gen: &mut u64,
    record: bool,
    dirty: u64,
) {
    let n = ctl.n_threads;
    let timing = timing_enabled();
    let metrics = sh.metrics();
    let pass_start = timing.then(Instant::now);
    let mut idle_ns = 0u64;
    let mut evaluated = 0u64;
    let mut skipped = 0u64;
    for level in 0..sh.schedule().n_levels() {
        let (lo, hi) = sh.schedule().level_shard_range(level);
        let mut s = lo as usize + participant;
        while s < hi as usize {
            if sh.run_shard(s, record, dirty) {
                evaluated += 1;
            } else {
                skipped += 1;
            }
            s += n;
        }
        if let Some(wait_start) = timing.then(Instant::now) {
            barrier(ctl, local_gen);
            idle_ns += wait_start.elapsed().as_nanos() as u64;
        } else {
            barrier(ctl, local_gen);
        }
    }
    // One commutative flush per participant per pass: totals are
    // independent of the round-robin split, so the counters stay
    // bit-identical across thread counts.
    metrics.shards_evaluated.add(evaluated);
    metrics.shards_skipped.add(skipped);
    if let Some(t0) = pass_start {
        metrics.worker_pass_ns.add(t0.elapsed().as_nanos() as u64);
        metrics.worker_idle_ns.add(idle_ns);
    }
}

/// Sense-counting spin barrier. The generation counter is monotonic, so
/// a `< target` comparison tolerates racing past several barriers.
fn barrier(ctl: &Ctl, local_gen: &mut u64) {
    let target = *local_gen + 1;
    let arrived = ctl.arrivals.fetch_add(1, Ordering::AcqRel) + 1;
    if arrived == ctl.n_threads {
        ctl.arrivals.store(0, Ordering::Relaxed);
        ctl.gen.fetch_add(1, Ordering::Release);
    } else {
        let mut spins = 0u32;
        while ctl.gen.load(Ordering::Acquire) < target {
            spins += 1;
            if spins < 128 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
    *local_gen = target;
}

#[derive(Debug)]
struct Job {
    epoch: u64,
    record: bool,
    dirty: u64,
    shutdown: bool,
}

/// Control block shared by the pool's participants.
#[derive(Debug)]
struct Ctl {
    job: Mutex<Job>,
    wake: Condvar,
    arrivals: AtomicUsize,
    gen: AtomicU64,
    /// Total participants: the owning thread plus the workers.
    n_threads: usize,
}

/// Persistent worker pool, generic over the kernel's [`LevelPass`].
/// Workers sleep on a condvar between cycles and spin-then-yield at
/// the per-level barriers within one.
#[derive(Debug)]
pub(crate) struct Pool<S> {
    ctl: Arc<Ctl>,
    handles: Vec<JoinHandle<()>>,
    /// The owning thread's barrier generation.
    main_gen: u64,
    _marker: std::marker::PhantomData<fn(&S)>,
}

impl<S: LevelPass> Pool<S> {
    /// Spawns `threads - 1` workers (the owning thread is the remaining
    /// participant).
    pub(crate) fn spawn(shared: Arc<S>, threads: usize) -> Pool<S> {
        assert!(threads >= 2);
        let ctl = Arc::new(Ctl {
            job: Mutex::new(Job {
                epoch: 0,
                record: false,
                dirty: 0,
                shutdown: false,
            }),
            wake: Condvar::new(),
            arrivals: AtomicUsize::new(0),
            gen: AtomicU64::new(0),
            n_threads: threads,
        });
        // Workers inherit a deterministic per-shard trace context from
        // the spawning thread so anything they might emit stays
        // attributable to the owning pipeline (inert when no trace is
        // active).
        let parent = apollo_telemetry::current();
        let handles = (1..threads)
            .map(|participant| {
                let shared = Arc::clone(&shared);
                let ctl = Arc::clone(&ctl);
                std::thread::spawn(move || {
                    let _ctx = apollo_telemetry::enter(parent.worker(participant as u64));
                    worker_loop(&*shared, &ctl, participant)
                })
            })
            .collect();
        Pool {
            ctl,
            handles,
            main_gen: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Runs one value pass across the pool, returning when all shards
    /// of all levels are done.
    pub(crate) fn run(&mut self, shared: &S, record: bool, dirty: u64) {
        {
            let mut job = self.ctl.job.lock().unwrap();
            job.epoch += 1;
            job.record = record;
            job.dirty = dirty;
        }
        self.ctl.wake.notify_all();
        run_pass_parallel(shared, &self.ctl, 0, &mut self.main_gen, record, dirty);
    }
}

impl<S> Drop for Pool<S> {
    fn drop(&mut self) {
        {
            let mut job = self.ctl.job.lock().unwrap();
            job.shutdown = true;
        }
        self.ctl.wake.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop<S: LevelPass>(shared: &S, ctl: &Ctl, participant: usize) {
    let mut last_epoch = 0u64;
    let mut local_gen = 0u64;
    loop {
        let (record, dirty) = {
            let mut job = ctl.job.lock().unwrap();
            while job.epoch == last_epoch && !job.shutdown {
                job = ctl.wake.wait(job).unwrap();
            }
            if job.shutdown {
                return;
            }
            last_epoch = job.epoch;
            (job.record, job.dirty)
        };
        run_pass_parallel(shared, ctl, participant, &mut local_gen, record, dirty);
    }
}
