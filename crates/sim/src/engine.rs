//! Shared evaluation engine behind [`crate::Simulator`].
//!
//! Holds the compiled per-node instruction stream and the value/prev/
//! toggle arrays as `AtomicU64` words inside an [`Arc`], so a pool of
//! persistent worker threads can evaluate disjoint shards of one level
//! concurrently (nodes of equal level never depend on each other; see
//! [`crate::schedule`]). All element accesses are `Relaxed` — the
//! per-level barrier provides the acquire/release edges that order one
//! level's writes before the next level's reads. Power accumulation is
//! deliberately *not* done here: the simulator runs a serial
//! netlist-order pass afterwards so float summation order — and thus
//! every power figure — is bit-identical across thread counts.

use crate::schedule::LevelSchedule;
use apollo_telemetry::{counter, histogram, timing_enabled, Counter, Histogram};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, LazyLock, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Engine metrics, interned once. Shard totals are deterministic across
/// thread counts (shard skipping depends only on the dirty set);
/// `_ns`-suffixed wall-clock metrics are collected only while
/// [`apollo_telemetry::timing_enabled`].
struct EngineMetrics {
    shards_evaluated: &'static Counter,
    shards_skipped: &'static Counter,
    level_eval_ns: &'static Histogram,
    worker_pass_ns: &'static Counter,
    worker_idle_ns: &'static Counter,
}

static METRICS: LazyLock<EngineMetrics> = LazyLock::new(|| EngineMetrics {
    shards_evaluated: counter("sim.shards_evaluated"),
    shards_skipped: counter("sim.shards_skipped"),
    level_eval_ns: histogram("sim.level_eval_ns"),
    worker_pass_ns: counter("sim.worker.pass_ns"),
    worker_idle_ns: counter("sim.worker.idle_ns"),
});

/// Compiled per-node instruction; mirrors [`apollo_rtl::Op`] with
/// resolved indices and pre-computed widths so the evaluation loop
/// touches no netlist structures.
#[derive(Clone, Debug)]
pub(crate) enum Instr {
    /// Sequential node (register or memory read port): value is state.
    Hold,
    /// External input: value is staged by the harness.
    Input,
    Const,
    Not(u32),
    And(u32, u32),
    Or(u32, u32),
    Xor(u32, u32),
    Add(u32, u32),
    Sub(u32, u32),
    Mul(u32, u32),
    Udiv(u32, u32),
    Eq(u32, u32),
    Ult(u32, u32),
    Shl(u32, u32, u8),
    Shr(u32, u32),
    Mux(u32, u32, u32),
    Slice(u32, u8),
    Concat(u32, u32, u8),
    ReduceOr(u32),
    ReduceAnd(u32, u64),
    ReduceXor(u32),
    Gated(u32),
}

/// Per-node stuck-at force masks, allocated only for fault-injecting
/// simulators: every stored value becomes `(v & and) | or`. Neutral
/// masks (`and = !0`, `or = 0`) leave values untouched, so a compiled
/// plan whose stuck-at window is inactive is value-identical to the
/// fault-free engine. Updated serially by the simulator between value
/// passes (workers sleep on the job condvar then); the pass's own
/// synchronization orders the updates before worker reads.
#[derive(Debug)]
pub(crate) struct ForceMasks {
    pub(crate) and: Vec<AtomicU64>,
    pub(crate) or: Vec<AtomicU64>,
}

impl ForceMasks {
    pub(crate) fn neutral(n: usize) -> Self {
        ForceMasks {
            and: (0..n).map(|_| AtomicU64::new(u64::MAX)).collect(),
            or: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// State shared between the owning simulator and its worker threads.
#[derive(Debug)]
pub(crate) struct SharedState {
    pub(crate) instrs: Vec<Instr>,
    pub(crate) masks: Vec<u64>,
    pub(crate) schedule: LevelSchedule,
    /// Current node values.
    pub(crate) values: Vec<AtomicU64>,
    /// Previous-cycle values (for toggle extraction).
    pub(crate) prev: Vec<AtomicU64>,
    /// Per-node feature toggles (gated clocks report their enable).
    pub(crate) feat: Vec<AtomicU64>,
    /// Per-node raw toggles `(v ^ prev) & mask` (for power).
    pub(crate) raw: Vec<AtomicU64>,
    /// Stuck-at force masks; `None` outside fault injection, keeping
    /// the fault-free hot path a single branch.
    pub(crate) forces: Option<ForceMasks>,
}

impl SharedState {
    pub(crate) fn new(
        instrs: Vec<Instr>,
        masks: Vec<u64>,
        schedule: LevelSchedule,
        initial_values: &[u64],
        with_forces: bool,
    ) -> Self {
        let atomic = |src: &[u64]| src.iter().map(|&v| AtomicU64::new(v)).collect();
        let zeros = vec![0u64; initial_values.len()];
        let n = initial_values.len();
        SharedState {
            instrs,
            masks,
            schedule,
            values: atomic(initial_values),
            prev: atomic(initial_values),
            feat: atomic(&zeros),
            raw: atomic(&zeros),
            forces: with_forces.then(|| ForceMasks::neutral(n)),
        }
    }
}

#[inline]
fn ld(v: &[AtomicU64], i: u32) -> u64 {
    v[i as usize].load(Ordering::Relaxed)
}

/// Evaluates one node from the current values; returns the new value
/// and, for gated clocks, the feature-toggle override.
#[inline]
fn eval_node(sh: &SharedState, i: usize, m: u64) -> (u64, Option<u64>) {
    let values = &sh.values;
    match sh.instrs[i] {
        Instr::Hold | Instr::Input | Instr::Const => (values[i].load(Ordering::Relaxed), None),
        Instr::Not(a) => (!ld(values, a) & m, None),
        Instr::And(a, b) => (ld(values, a) & ld(values, b), None),
        Instr::Or(a, b) => (ld(values, a) | ld(values, b), None),
        Instr::Xor(a, b) => (ld(values, a) ^ ld(values, b), None),
        Instr::Add(a, b) => (ld(values, a).wrapping_add(ld(values, b)) & m, None),
        Instr::Sub(a, b) => (ld(values, a).wrapping_sub(ld(values, b)) & m, None),
        Instr::Mul(a, b) => (ld(values, a).wrapping_mul(ld(values, b)) & m, None),
        Instr::Udiv(a, b) => (ld(values, a).checked_div(ld(values, b)).unwrap_or(m), None),
        Instr::Eq(a, b) => ((ld(values, a) == ld(values, b)) as u64, None),
        Instr::Ult(a, b) => ((ld(values, a) < ld(values, b)) as u64, None),
        Instr::Shl(a, s, w) => {
            let amt = ld(values, s);
            let v = if amt >= w as u64 {
                0
            } else {
                (ld(values, a) << amt) & m
            };
            (v, None)
        }
        Instr::Shr(a, s) => {
            let amt = ld(values, s);
            let v = if amt >= 64 { 0 } else { ld(values, a) >> amt };
            (v, None)
        }
        Instr::Mux(sel, t, f) => {
            let v = if ld(values, sel) != 0 {
                ld(values, t)
            } else {
                ld(values, f)
            };
            (v, None)
        }
        Instr::Slice(src, lo) => ((ld(values, src) >> lo) & m, None),
        Instr::Concat(hi, lo, lo_w) => ((ld(values, hi) << lo_w) | ld(values, lo), None),
        Instr::ReduceOr(a) => ((ld(values, a) != 0) as u64, None),
        Instr::ReduceAnd(a, am) => ((ld(values, a) == am) as u64, None),
        Instr::ReduceXor(a) => ((ld(values, a).count_ones() as u64) & 1, None),
        Instr::Gated(en) => {
            let e = ld(values, en);
            // Feature semantics for gated clocks: the per-cycle toggle
            // bit is the enable itself (the net physically toggles
            // twice per enabled cycle).
            (e, Some(e))
        }
    }
}

/// Evaluates one shard. A shard disjoint from the dirty set is skipped:
/// none of its source groups changed, so every node keeps its value and
/// only the toggle words need clearing (gated clocks report their —
/// unchanged — enable as the feature).
/// Returns `true` when the shard was evaluated, `false` when skipped.
fn run_shard(sh: &SharedState, shard_idx: usize, record: bool, dirty: u64) -> bool {
    let shard = &sh.schedule.shards()[shard_idx];
    let nodes = &sh.schedule.order()[shard.start as usize..shard.end as usize];
    if record && shard.influence & dirty == 0 {
        for &ni in nodes {
            let i = ni as usize;
            let f = match sh.instrs[i] {
                Instr::Gated(_) => sh.values[i].load(Ordering::Relaxed),
                _ => 0,
            };
            sh.feat[i].store(f, Ordering::Relaxed);
            sh.raw[i].store(0, Ordering::Relaxed);
        }
        return false;
    }
    for &ni in nodes {
        let i = ni as usize;
        let m = sh.masks[i];
        let (mut v, mut feature_override) = eval_node(sh, i, m);
        if let Some(f) = &sh.forces {
            v = (v & f.and[i].load(Ordering::Relaxed)) | f.or[i].load(Ordering::Relaxed);
            // A forced gated clock reports its forced enable.
            if feature_override.is_some() {
                feature_override = Some(v);
            }
        }
        if record {
            let t = (v ^ sh.prev[i].load(Ordering::Relaxed)) & m;
            sh.prev[i].store(v, Ordering::Relaxed);
            sh.raw[i].store(t, Ordering::Relaxed);
            sh.feat[i].store(feature_override.unwrap_or(t), Ordering::Relaxed);
        }
        sh.values[i].store(v, Ordering::Relaxed);
    }
    true
}

/// Single-threaded value pass: shards in (level, index) order. Walks
/// levels explicitly (same shard order — shards are stored
/// level-contiguously) so per-level wall clock can be observed while
/// timing is on.
pub(crate) fn run_pass_seq(sh: &SharedState, record: bool, dirty: u64) {
    let timing = timing_enabled();
    let mut evaluated = 0u64;
    let mut skipped = 0u64;
    for level in 0..sh.schedule.n_levels() {
        let t0 = timing.then(Instant::now);
        let (lo, hi) = sh.schedule.level_shard_range(level);
        for idx in lo as usize..hi as usize {
            if run_shard(sh, idx, record, dirty) {
                evaluated += 1;
            } else {
                skipped += 1;
            }
        }
        if let Some(t0) = t0 {
            METRICS.level_eval_ns.observe(t0.elapsed().as_nanos() as u64);
        }
    }
    METRICS.shards_evaluated.add(evaluated);
    METRICS.shards_skipped.add(skipped);
}

/// One participant (main thread or worker) of the parallel value pass.
/// Shards of each level are dealt round-robin by participant index;
/// every participant crosses the same `n_levels` barriers.
fn run_pass_parallel(
    sh: &SharedState,
    ctl: &Ctl,
    participant: usize,
    local_gen: &mut u64,
    record: bool,
    dirty: u64,
) {
    let n = ctl.n_threads;
    let timing = timing_enabled();
    let pass_start = timing.then(Instant::now);
    let mut idle_ns = 0u64;
    let mut evaluated = 0u64;
    let mut skipped = 0u64;
    for level in 0..sh.schedule.n_levels() {
        let (lo, hi) = sh.schedule.level_shard_range(level);
        let mut s = lo as usize + participant;
        while s < hi as usize {
            if run_shard(sh, s, record, dirty) {
                evaluated += 1;
            } else {
                skipped += 1;
            }
            s += n;
        }
        if let Some(wait_start) = timing.then(Instant::now) {
            barrier(ctl, local_gen);
            idle_ns += wait_start.elapsed().as_nanos() as u64;
        } else {
            barrier(ctl, local_gen);
        }
    }
    // One commutative flush per participant per pass: totals are
    // independent of the round-robin split, so the counters stay
    // bit-identical across thread counts.
    METRICS.shards_evaluated.add(evaluated);
    METRICS.shards_skipped.add(skipped);
    if let Some(t0) = pass_start {
        METRICS.worker_pass_ns.add(t0.elapsed().as_nanos() as u64);
        METRICS.worker_idle_ns.add(idle_ns);
    }
}

/// Sense-counting spin barrier. The generation counter is monotonic, so
/// a `< target` comparison tolerates racing past several barriers.
fn barrier(ctl: &Ctl, local_gen: &mut u64) {
    let target = *local_gen + 1;
    let arrived = ctl.arrivals.fetch_add(1, Ordering::AcqRel) + 1;
    if arrived == ctl.n_threads {
        ctl.arrivals.store(0, Ordering::Relaxed);
        ctl.gen.fetch_add(1, Ordering::Release);
    } else {
        let mut spins = 0u32;
        while ctl.gen.load(Ordering::Acquire) < target {
            spins += 1;
            if spins < 128 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
    *local_gen = target;
}

#[derive(Debug)]
struct Job {
    epoch: u64,
    record: bool,
    dirty: u64,
    shutdown: bool,
}

/// Control block shared by the pool's participants.
#[derive(Debug)]
struct Ctl {
    job: Mutex<Job>,
    wake: Condvar,
    arrivals: AtomicUsize,
    gen: AtomicU64,
    /// Total participants: the owning thread plus the workers.
    n_threads: usize,
}

/// Persistent worker pool. Workers sleep on a condvar between cycles
/// and spin-then-yield at the per-level barriers within one.
#[derive(Debug)]
pub(crate) struct Pool {
    ctl: Arc<Ctl>,
    handles: Vec<JoinHandle<()>>,
    /// The owning thread's barrier generation.
    main_gen: u64,
}

impl Pool {
    /// Spawns `threads - 1` workers (the owning thread is the remaining
    /// participant).
    pub(crate) fn spawn(shared: Arc<SharedState>, threads: usize) -> Pool {
        assert!(threads >= 2);
        let ctl = Arc::new(Ctl {
            job: Mutex::new(Job {
                epoch: 0,
                record: false,
                dirty: 0,
                shutdown: false,
            }),
            wake: Condvar::new(),
            arrivals: AtomicUsize::new(0),
            gen: AtomicU64::new(0),
            n_threads: threads,
        });
        let handles = (1..threads)
            .map(|participant| {
                let shared = Arc::clone(&shared);
                let ctl = Arc::clone(&ctl);
                std::thread::spawn(move || worker_loop(&shared, &ctl, participant))
            })
            .collect();
        Pool {
            ctl,
            handles,
            main_gen: 0,
        }
    }

    /// Runs one value pass across the pool, returning when all shards
    /// of all levels are done.
    pub(crate) fn run(&mut self, shared: &SharedState, record: bool, dirty: u64) {
        {
            let mut job = self.ctl.job.lock().unwrap();
            job.epoch += 1;
            job.record = record;
            job.dirty = dirty;
        }
        self.ctl.wake.notify_all();
        run_pass_parallel(shared, &self.ctl, 0, &mut self.main_gen, record, dirty);
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut job = self.ctl.job.lock().unwrap();
            job.shutdown = true;
        }
        self.ctl.wake.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &SharedState, ctl: &Ctl, participant: usize) {
    let mut last_epoch = 0u64;
    let mut local_gen = 0u64;
    loop {
        let (record, dirty) = {
            let mut job = ctl.job.lock().unwrap();
            while job.epoch == last_epoch && !job.shutdown {
                job = ctl.wake.wait(job).unwrap();
            }
            if job.shutdown {
                return;
            }
            last_epoch = job.epoch;
            (job.record, job.dirty)
        };
        run_pass_parallel(shared, ctl, participant, &mut local_gen, record, dirty);
    }
}
