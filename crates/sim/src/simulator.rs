//! The cycle-accurate netlist simulator.

use crate::engine::{
    self, EngineKind, GlitchEntry, Instr, MemPorts, Pool, RegCommit, SharedState, SimEngine,
};
use crate::fault::{CompiledFaults, FaultEvent, FaultPlan, FaultPlanError, FaultReport};
use crate::power::{unit_hash, PowerConfig, PowerSample};
use apollo_rtl::{CapAnnotation, MemId, Netlist, NodeId};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// A cycle-accurate simulator over a [`Netlist`] with built-in
/// ground-truth power computation.
///
/// Each [`step`](Simulator::step) advances one clock edge and evaluates
/// the new cycle: registers in enabled clock domains capture their
/// next-state values, memory writes then reads retire (write-first),
/// combinational logic settles, per-bit toggles are extracted and the
/// cycle's [`PowerSample`] is computed.
///
/// Combinational evaluation runs over a levelized schedule (see the
/// `schedule` module): nodes of equal topological level are
/// independent, so [`Simulator::with_threads`] can evaluate each
/// level's shards on a persistent worker pool. Power is always
/// accumulated by a serial netlist-order pass afterwards, which makes
/// every observable — register values, toggle words, per-cycle power —
/// **bit-identical across thread counts**. Shards whose source groups
/// (inputs, clock domains, memories) saw no change this cycle are
/// skipped wholesale, so gated-off clock domains cost almost nothing in
/// either mode.
#[derive(Debug)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    config: PowerConfig,
    shared: Arc<SharedState>,
    pool: Option<Pool<SharedState>>,
    threads: usize,
    caps: Vec<f64>,
    glitch_list: Vec<GlitchEntry>,
    /// Functional-unit index of each node (for power attribution).
    unit_of: Vec<u8>,
    /// Switching power of the last cycle attributed per unit.
    unit_switching: Vec<f64>,
    clock_caps: Vec<f64>,
    mem_energy: Vec<f64>,
    regs: Vec<RegCommit>,
    mems_ports: Vec<MemPorts>,
    /// Gated-clock signal node per domain (`u32::MAX` for root).
    clock_nodes: Vec<u32>,
    /// Plain copy of the feature-toggle words, refreshed by the serial
    /// power pass each cycle (the slice handed out by
    /// [`Simulator::toggles`]).
    toggles_mirror: Vec<u64>,
    mem_data: Vec<Vec<u64>>,
    domain_enable_prev: Vec<bool>,
    reg_stage: Vec<u64>,
    /// Per-cycle staging of enabled memory reads `(port, value, mem)`,
    /// committed only after every port has sampled pre-edge state.
    mem_stage: Vec<(u32, u64, u32)>,
    pending_inputs: Vec<(u32, u64)>,
    cycle: u64,
    last_power: PowerSample,
    /// Compiled fault plan, if this simulator injects faults.
    faults: Option<CompiledFaults>,
    /// Every injected fault, in deterministic order.
    fault_events: Vec<FaultEvent>,
    /// Node indices currently carrying a non-neutral force mask.
    forced_nodes: Vec<u32>,
    reg_flip_count: u64,
    mem_flip_count: u64,
    stuck_cycle_count: u64,
    /// Batched instrumentation state (one atomic bump per step when
    /// telemetry is idle; see [`SimTelemetry`]).
    telem: SimTelemetry,
}

/// Per-simulator instrumentation: interned counter handles (bumped with
/// commutative `fetch_add`, so totals stay deterministic when many
/// simulators run in parallel), step-phase wall clock accumulated
/// locally and flushed to the profile table on drop, and a cursor over
/// `fault_events` so injected faults reach the event sink as they
/// happen instead of only through an end-of-run report.
#[derive(Debug)]
struct SimTelemetry {
    cycles: &'static apollo_telemetry::Counter,
    fault_events: &'static apollo_telemetry::Counter,
    /// Index into `Simulator::fault_events` already flushed.
    emitted: usize,
    /// Accumulated `[commit, eval, power]` nanoseconds while timing is
    /// enabled.
    phase_ns: [u64; 3],
    steps_timed: u64,
}

impl SimTelemetry {
    fn new() -> Self {
        SimTelemetry {
            cycles: apollo_telemetry::counter("sim.cycles"),
            fault_events: apollo_telemetry::counter("sim.fault_events"),
            emitted: 0,
            phase_ns: [0; 3],
            steps_timed: 0,
        }
    }
}

impl Drop for Simulator<'_> {
    fn drop(&mut self) {
        if self.telem.steps_timed > 0 {
            let [commit, eval, power] = self.telem.phase_ns;
            let steps = self.telem.steps_timed;
            apollo_telemetry::profile::record_phase("sim.step/commit", steps, commit);
            apollo_telemetry::profile::record_phase("sim.step/eval", steps, eval);
            apollo_telemetry::profile::record_phase("sim.step/power", steps, power);
        }
    }
}

impl<'a> Simulator<'a> {
    /// Creates a single-threaded simulator in the reset state (registers
    /// hold their init values, combinational logic settled, no toggles
    /// recorded yet).
    pub fn new(netlist: &'a Netlist, cap: &CapAnnotation, config: PowerConfig) -> Self {
        Self::with_threads(netlist, cap, config, 1)
    }

    /// Creates a simulator whose combinational evaluation is spread
    /// over `threads` participants (the calling thread plus
    /// `threads - 1` persistent workers). `threads <= 1` selects the
    /// sequential reference path. Results are bit-identical for every
    /// thread count.
    pub fn with_threads(
        netlist: &'a Netlist,
        cap: &CapAnnotation,
        config: PowerConfig,
        threads: usize,
    ) -> Self {
        match Self::with_faults(netlist, cap, config, threads, None) {
            Ok(sim) => sim,
            // Unreachable: only a fault plan can fail to compile.
            Err(e) => unreachable!("fault-free construction failed: {e}"),
        }
    }

    /// Creates a simulator that injects the given [`FaultPlan`] while
    /// it runs (see the [`crate::fault`] module for the determinism
    /// contract). `plan = None` is exactly [`Simulator::with_threads`];
    /// an **empty** plan is bit-identical to it in every observable.
    ///
    /// # Errors
    /// Returns [`FaultPlanError`] if the plan names unknown signals,
    /// out-of-range bits, empty windows or invalid rates.
    pub fn with_faults(
        netlist: &'a Netlist,
        cap: &CapAnnotation,
        config: PowerConfig,
        threads: usize,
        plan: Option<&FaultPlan>,
    ) -> Result<Self, FaultPlanError> {
        let faults = plan.map(|p| p.compile(netlist)).transpose()?;
        let n = netlist.len();
        let c = engine::compile(netlist, cap, &config);
        let shared = Arc::new(SharedState::new(
            c.instrs,
            c.masks,
            c.schedule,
            &c.init_values,
            faults.is_some(),
        ));
        let threads = threads.max(1);
        let pool = if threads > 1 {
            Some(Pool::spawn(Arc::clone(&shared), threads))
        } else {
            None
        };

        let mut sim = Simulator {
            netlist,
            config,
            shared,
            pool,
            threads,
            caps: c.caps,
            glitch_list: c.glitch_list,
            unit_of: c.unit_of,
            unit_switching: vec![0.0; apollo_rtl::Unit::ALL.len()],
            clock_caps: c.clock_caps,
            mem_energy: c.mem_energy,
            regs: c.regs,
            mems_ports: c.mems_ports,
            clock_nodes: c.clock_nodes,
            toggles_mirror: vec![0u64; n],
            mem_data: c.mem_init,
            domain_enable_prev: vec![true; netlist.clock_domains()],
            reg_stage: Vec::new(),
            mem_stage: Vec::new(),
            pending_inputs: Vec::new(),
            cycle: 0,
            last_power: PowerSample::default(),
            faults,
            fault_events: Vec::new(),
            forced_nodes: Vec::new(),
            reg_flip_count: 0,
            mem_flip_count: 0,
            stuck_cycle_count: 0,
            telem: SimTelemetry::new(),
        };
        sim.reg_stage = vec![0u64; sim.regs.len()];
        // Forces active at cycle 0 apply to the reset settle too, so
        // the first step already observes them (activation events are
        // logged here; the first step sees no edge and re-logs nothing).
        sim.update_forces(0);
        sim.settle();
        Ok(sim)
    }

    /// Number of evaluation participants (1 = sequential reference).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Settles combinational logic from the current state without
    /// recording toggles or power (used once at reset).
    fn settle(&mut self) {
        self.run_value_pass(false, u64::MAX);
        for i in 0..self.shared.values.len() {
            let v = self.shared.values[i].load(Ordering::Relaxed);
            self.shared.prev[i].store(v, Ordering::Relaxed);
        }
        self.capture_enables();
    }

    /// Runs one combinational value/toggle pass over the level schedule,
    /// sequentially or across the worker pool.
    fn run_value_pass(&mut self, record: bool, dirty: u64) {
        match &mut self.pool {
            None => engine::run_pass_seq(&*self.shared, record, dirty),
            Some(pool) => pool.run(&self.shared, record, dirty),
        }
    }

    fn capture_enables(&mut self) {
        for d in 0..self.clock_nodes.len() {
            let gc = self.clock_nodes[d];
            self.domain_enable_prev[d] = if gc == u32::MAX {
                true
            } else {
                self.shared.values[gc as usize].load(Ordering::Relaxed) != 0
            };
        }
    }

    /// Stages an input value to take effect at the next
    /// [`step`](Simulator::step).
    ///
    /// # Panics
    /// Panics if `node` is not an input or `value` exceeds its width.
    pub fn set_input(&mut self, node: NodeId, value: u64) {
        let i = node.index();
        assert!(
            matches!(self.shared.instrs[i], Instr::Input),
            "{node:?} is not an input"
        );
        assert!(
            value & !self.shared.masks[i] == 0,
            "input value {value:#x} exceeds width of {node:?}"
        );
        self.pending_inputs.push((i as u32, value));
    }

    /// Refreshes the engine's stuck-at force masks for `cycle`.
    /// Returns the dirty contribution: everything on an activation or
    /// release edge (a skipped shard would otherwise hold a stale
    /// value across the edge), nothing while the active set is stable.
    fn update_forces(&mut self, cycle: u64) -> u64 {
        let Some(f) = &mut self.faults else {
            return 0;
        };
        let mut events = std::mem::take(&mut self.fault_events);
        let (forces, edge) = f.stuck_forces_at(cycle, &mut events);
        self.fault_events = events;
        if !edge {
            return 0;
        }
        let fm = self
            .shared
            .forces
            .as_ref()
            .expect("fault-injecting simulators allocate force masks");
        for &node in &self.forced_nodes {
            fm.and[node as usize].store(u64::MAX, Ordering::Relaxed);
            fm.or[node as usize].store(0, Ordering::Relaxed);
        }
        self.forced_nodes.clear();
        // Merge, so several stuck bits on one node compose.
        for (node, and, or) in forces {
            let i = node as usize;
            let new_and = fm.and[i].load(Ordering::Relaxed) & and;
            let new_or = fm.or[i].load(Ordering::Relaxed) | or;
            fm.and[i].store(new_and, Ordering::Relaxed);
            fm.or[i].store(new_or, Ordering::Relaxed);
            self.forced_nodes.push(node);
        }
        u64::MAX
    }

    /// Advances one clock edge and evaluates the new cycle.
    pub fn step(&mut self) {
        self.step_impl(true);
    }

    /// Advances one clock edge evaluating values and toggles only,
    /// skipping the serial power pass and the clock/short-circuit/noise
    /// bookkeeping. Functional state and the toggle mirror behind
    /// [`Simulator::toggle_word`] / [`Simulator::toggle_row`] advance
    /// exactly as in [`Simulator::step`] (power never feeds back into
    /// state), but [`Simulator::power`] and
    /// [`Simulator::unit_switching`] keep reporting the last full
    /// step's figures. This is the stepping mode for proxy-trace
    /// extraction, where the runtime OPM — not the simulator — produces
    /// the power estimate.
    pub fn step_toggles(&mut self) {
        self.step_impl(false);
    }

    fn step_impl(&mut self, with_power: bool) {
        // Dirty set over source groups: set as state/input changes are
        // observed in phases 2–4, consumed by the value pass to skip
        // shards whose transitive sources are all clean.
        let mut dirty = 0u64;

        // With telemetry idle this instrumentation costs one relaxed
        // load here plus one `fetch_add` at the end of the step (the
        // overhead budget `repro_telemetry` measures).
        let timing = apollo_telemetry::timing_enabled();
        let t0 = timing.then(Instant::now);

        // 0. Fault injection for this cycle: refresh stuck-at forces
        //    and land SRAM upsets before the memory ports sample (a
        //    read of the upset word then observes it through the normal
        //    dirty-tracking path). Register upsets land on the staged
        //    values below, after phase 1.
        dirty |= self.update_forces(self.cycle);
        if let Some(f) = &self.faults {
            let mut events = std::mem::take(&mut self.fault_events);
            let flips = f.mem_flips_at(self.cycle, &mut events);
            self.fault_events = events;
            self.stuck_cycle_count += f.active_stuck_count(self.cycle);
            for (mem, word, mask) in flips {
                self.mem_data[mem as usize][word as usize] ^= mask;
                self.mem_flip_count += 1;
            }
        }

        // 1. Stage register next-state values from the pre-edge state.
        //    All sequential elements capture simultaneously at the clock
        //    edge, so no commit may observe another commit's result
        //    (direct register-to-register chains would otherwise
        //    collapse).
        for (k, rc) in self.regs.iter().enumerate() {
            self.reg_stage[k] = if self.domain_enable_prev[rc.domain as usize] {
                self.shared.values[rc.next as usize].load(Ordering::Relaxed)
                    & self.shared.masks[rc.reg as usize]
            } else {
                self.shared.values[rc.reg as usize].load(Ordering::Relaxed)
            };
        }

        // 1b. Transient register upsets flip bits of the *staged*
        //     values, so the commit in phase 3 handles dirty tracking
        //     and toggle extraction exactly like a functional change.
        if let Some(f) = &self.faults {
            let mut events = std::mem::take(&mut self.fault_events);
            let flips = f.reg_flips_at(self.cycle, &mut events);
            self.fault_events = events;
            for (node, mask) in flips {
                if let Ok(k) = self.regs.binary_search_by_key(&node, |rc| rc.reg) {
                    self.reg_stage[k] ^= mask;
                    self.reg_flip_count += 1;
                }
            }
        }

        // All of this cycle's injections have landed: surface them
        // through telemetry at injection time (previously they were
        // only observable via an end-of-run `fault_report()`).
        self.flush_fault_telemetry();

        let schedule = &self.shared.schedule;

        // 2. Memory-port commit (also pre-edge operands; runs before
        //    register values change). All write ports of all memories
        //    apply first, then all read ports sample the post-write
        //    arrays: a write whose data/addr/enable comes from another
        //    memory's read port must see that port's pre-edge value,
        //    not the value it commits this edge.
        let mut mem_power = 0.0f64;
        for mp in &self.mems_ports {
            let energy = self.mem_energy[mp.mem as usize];
            for &(en, addr, data) in &mp.writes {
                if self.shared.values[en as usize].load(Ordering::Relaxed) != 0 {
                    let a = (self.shared.values[addr as usize].load(Ordering::Relaxed)
                        % mp.words as u64) as usize;
                    self.mem_data[mp.mem as usize][a] =
                        self.shared.values[data as usize].load(Ordering::Relaxed);
                    mem_power += energy;
                }
            }
        }
        // Stage every enabled read from pre-edge addresses/enables (a
        // port's address may itself be another read port), then commit.
        self.mem_stage.clear();
        for mp in &self.mems_ports {
            let energy = self.mem_energy[mp.mem as usize];
            for &(port, addr, en) in &mp.reads {
                if self.shared.values[en as usize].load(Ordering::Relaxed) != 0 {
                    let a = (self.shared.values[addr as usize].load(Ordering::Relaxed)
                        % mp.words as u64) as usize;
                    let new = self.mem_data[mp.mem as usize][a];
                    self.mem_stage.push((port, new, mp.mem));
                    mem_power += energy;
                }
            }
        }
        for &(port, new, mem) in &self.mem_stage {
            let port = port as usize;
            if self.shared.values[port].load(Ordering::Relaxed) != new {
                dirty |= schedule.mem_bit(mem as usize);
                self.shared.values[port].store(new, Ordering::Relaxed);
            }
        }

        // 3. Register commit from the staged values.
        for (k, rc) in self.regs.iter().enumerate() {
            let reg = rc.reg as usize;
            let new = self.reg_stage[k];
            if self.shared.values[reg].load(Ordering::Relaxed) != new {
                dirty |= schedule.domain_bit(rc.domain as usize);
                self.shared.values[reg].store(new, Ordering::Relaxed);
            }
        }

        // 4. Apply staged inputs.
        for &(node, value) in &self.pending_inputs {
            let node = node as usize;
            if self.shared.values[node].load(Ordering::Relaxed) != value {
                dirty |= schedule.input_bit();
                self.shared.values[node].store(value, Ordering::Relaxed);
            }
        }
        self.pending_inputs.clear();

        let t_commit = timing.then(Instant::now);

        // 5. Combinational evaluation with toggle extraction, then the
        //    serial netlist-order power pass (bit-exact across thread
        //    counts).
        self.run_value_pass(true, dirty);
        let t_eval = timing.then(Instant::now);
        if with_power {
            let (switching, glitch) = self.power_pass();

            // 6. Clock power for domains pulsing this cycle.
            let mut clock_power = 0.0;
            for d in 0..self.clock_nodes.len() {
                let gc = self.clock_nodes[d];
                let pulsing =
                    gc == u32::MAX || self.shared.values[gc as usize].load(Ordering::Relaxed) != 0;
                if pulsing {
                    clock_power += self.clock_caps[d] * self.config.half_v_squared;
                }
            }

            // 7. Data-dependent short-circuit and residual noise.
            let sc = self.config.short_circuit_factor
                * switching
                * (0.5 + unit_hash(self.config.seed ^ self.cycle.wrapping_mul(0x9E37)));
            let dynamic = switching + clock_power + mem_power + glitch + sc;
            let noise = self.config.noise_rel
                * dynamic
                * (2.0 * unit_hash(self.config.seed ^ self.cycle.wrapping_mul(0x85EB) ^ 0xC2B2)
                    - 1.0);

            self.last_power = PowerSample::from_components(
                switching,
                clock_power,
                mem_power,
                glitch,
                sc,
                self.config.leakage,
                noise,
            );
        } else {
            // Toggle-only stepping still refreshes the mirror behind
            // `toggle_word`/`toggle_row`; the power accumulators and
            // `last_power` hold the last full step's figures.
            for (m, f) in self.toggles_mirror.iter_mut().zip(&self.shared.feat) {
                *m = f.load(Ordering::Relaxed);
            }
        }

        // 8. Remember this cycle's enables for the next commit.
        self.capture_enables();
        self.cycle += 1;
        self.telem.cycles.inc();
        if let (Some(t0), Some(tc), Some(te)) = (t0, t_commit, t_eval) {
            self.telem.phase_ns[0] += (tc - t0).as_nanos() as u64;
            self.telem.phase_ns[1] += (te - tc).as_nanos() as u64;
            self.telem.phase_ns[2] += te.elapsed().as_nanos() as u64;
            self.telem.steps_timed += 1;
        }
    }

    /// Counts (and, when a sink is installed, emits as typed
    /// `sim.fault.*` events) every fault event appended since the last
    /// flush. Emission order is deterministic: fault-injecting
    /// simulators step on one thread and events are recorded
    /// cycle-major in netlist order.
    fn flush_fault_telemetry(&mut self) {
        if self.fault_events.len() == self.telem.emitted {
            return;
        }
        let new = &self.fault_events[self.telem.emitted..];
        self.telem.fault_events.add(new.len() as u64);
        crate::fault::emit_events(new);
        self.telem.emitted = self.fault_events.len();
    }

    /// Serial netlist-order accumulation of switching and glitch power
    /// from the toggle words the value pass produced. Always runs on
    /// the calling thread in node order, so float summation order — and
    /// thus every power figure — is independent of the thread count.
    /// Also refreshes the plain toggle mirror behind
    /// [`Simulator::toggles`].
    fn power_pass(&mut self) -> (f64, f64) {
        let mut switching_cap = 0.0f64;
        let mut glitch_power = 0.0f64;
        self.unit_switching.iter_mut().for_each(|v| *v = 0.0);
        let shared = &self.shared;
        let mut gk = 0usize;
        for i in 0..shared.instrs.len() {
            if gk < self.glitch_list.len() && self.glitch_list[gk].node as usize == i {
                let e = &self.glitch_list[gk];
                let it = shared.feat[e.a as usize].load(Ordering::Relaxed)
                    | shared.feat[e.b as usize].load(Ordering::Relaxed);
                glitch_power += e.energy * it.count_ones() as f64;
                gk += 1;
            }
            let t = shared.raw[i].load(Ordering::Relaxed);
            self.toggles_mirror[i] = shared.feat[i].load(Ordering::Relaxed);
            if t != 0 {
                let p = t.count_ones() as f64 * self.caps[i];
                switching_cap += p;
                self.unit_switching[self.unit_of[i] as usize] += p;
            }
        }
        (switching_cap * self.config.half_v_squared, glitch_power)
    }

    /// Number of completed cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Every fault injected so far, in deterministic order (empty for
    /// fault-free simulators).
    pub fn fault_events(&self) -> &[FaultEvent] {
        &self.fault_events
    }

    /// Fault-injection summary, or `None` for a simulator built
    /// without a plan. Identical seeds produce byte-identical reports
    /// across runs and thread counts.
    pub fn fault_report(&self) -> Option<FaultReport> {
        self.faults.as_ref().map(|f| FaultReport {
            seed: f.seed(),
            cycles: self.cycle,
            reg_flips: self.reg_flip_count,
            mem_flips: self.mem_flip_count,
            stuck_cycles: self.stuck_cycle_count,
            events: self.fault_events.clone(),
        })
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// Current value of a node.
    pub fn value(&self, node: NodeId) -> u64 {
        self.shared.values[node.index()].load(Ordering::Relaxed)
    }

    /// Toggle word of a node for the last completed cycle (bit `k` set if
    /// bit `k` of the node toggled; for gated clocks, the enable).
    pub fn toggle_word(&self, node: NodeId) -> u64 {
        self.toggles_mirror[node.index()]
    }

    /// Per-node toggle words for the last completed cycle.
    pub fn toggles(&self) -> &[u64] {
        &self.toggles_mirror
    }

    /// Ground-truth power of the last completed cycle.
    pub fn power(&self) -> PowerSample {
        self.last_power
    }

    /// Switching power of the last cycle attributed to each functional
    /// unit, indexed like [`apollo_rtl::Unit::ALL`] and scaled like
    /// [`PowerSample::switching`].
    pub fn unit_switching(&self) -> Vec<f64> {
        self.unit_switching
            .iter()
            .map(|v| v * self.config.half_v_squared)
            .collect()
    }

    /// Reads a word from a memory macro (for test harnesses).
    pub fn mem_word(&self, mem: MemId, addr: u32) -> u64 {
        let words = self.mems_ports[mem.index()].words;
        self.mem_data[mem.index()][(addr % words) as usize]
    }

    /// Writes a word directly into a memory macro (for loading data
    /// segments in test harnesses; does not consume access energy).
    pub fn poke_mem(&mut self, mem: MemId, addr: u32, value: u64) {
        let words = self.mems_ports[mem.index()].words;
        self.mem_data[mem.index()][(addr % words) as usize] = value;
    }

    /// Packs the last cycle's toggle bits into a flat `M`-bit row
    /// (`out` must hold at least `ceil(M / 64)` words; it is zeroed).
    pub fn toggle_row(&self, out: &mut [u64]) {
        crate::toggle::pack_row(self.netlist, &self.toggles_mirror, out);
    }
}

impl SimEngine for Simulator<'_> {
    fn kind(&self) -> EngineKind {
        EngineKind::Scalar
    }

    fn lanes(&self) -> usize {
        1
    }

    fn set_input(&mut self, lane: usize, node: NodeId, value: u64) {
        assert_eq!(lane, 0, "scalar engine has a single lane");
        Simulator::set_input(self, node, value);
    }

    fn step(&mut self) {
        Simulator::step(self);
    }

    fn step_toggles(&mut self) {
        Simulator::step_toggles(self);
    }

    fn cycle(&self) -> u64 {
        Simulator::cycle(self)
    }

    fn value(&self, lane: usize, node: NodeId) -> u64 {
        assert_eq!(lane, 0, "scalar engine has a single lane");
        Simulator::value(self, node)
    }

    fn toggle_word(&self, lane: usize, node: NodeId) -> u64 {
        assert_eq!(lane, 0, "scalar engine has a single lane");
        Simulator::toggle_word(self, node)
    }

    fn toggle_row(&self, lane: usize, out: &mut [u64]) {
        assert_eq!(lane, 0, "scalar engine has a single lane");
        Simulator::toggle_row(self, out);
    }

    fn power(&self, lane: usize) -> PowerSample {
        assert_eq!(lane, 0, "scalar engine has a single lane");
        Simulator::power(self)
    }

    fn unit_switching(&self, lane: usize) -> Vec<f64> {
        assert_eq!(lane, 0, "scalar engine has a single lane");
        Simulator::unit_switching(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PowerConfig;
    use apollo_rtl::{CapModel, NetlistBuilder, Unit, CLOCK_ROOT};

    fn power_cfg() -> PowerConfig {
        PowerConfig {
            noise_rel: 0.0,
            short_circuit_factor: 0.0,
            ..PowerConfig::default()
        }
    }

    #[test]
    fn counter_counts() {
        let mut b = NetlistBuilder::new("t");
        let r = b.reg(8, 0, CLOCK_ROOT, "count", Unit::Control);
        let one = b.constant(1, 8);
        let n = b.add(r, one);
        b.connect(r, n);
        let nl = b.build().unwrap();
        let cap = CapModel::default().annotate(&nl);
        let mut sim = Simulator::new(&nl, &cap, power_cfg());
        for i in 1..=300u64 {
            sim.step();
            assert_eq!(sim.value(r), i & 0xff);
        }
        assert_eq!(sim.cycle(), 300);
    }

    #[test]
    fn inputs_and_mux() {
        let mut b = NetlistBuilder::new("t");
        let sel = b.input(1, "sel", Unit::Control);
        let a = b.constant(5, 8);
        let c = b.constant(9, 8);
        let m = b.mux(sel, a, c);
        let r = b.delay(m, 0, CLOCK_ROOT, "r", Unit::Control);
        let nl = b.build().unwrap();
        let cap = CapModel::default().annotate(&nl);
        let mut sim = Simulator::new(&nl, &cap, power_cfg());
        sim.set_input(sel, 1);
        sim.step();
        assert_eq!(sim.value(m), 5);
        sim.step();
        assert_eq!(sim.value(r), 5);
        sim.set_input(sel, 0);
        sim.step();
        assert_eq!(sim.value(m), 9);
        sim.step();
        assert_eq!(sim.value(r), 9);
    }

    #[test]
    fn gated_clock_holds_registers() {
        let mut b = NetlistBuilder::new("t");
        let en = b.input(1, "en", Unit::Control);
        let gclk = b.clock_gate(en, "gclk", Unit::ClockTree);
        let r = b.reg(8, 0, gclk, "r", Unit::Alu);
        let one = b.constant(1, 8);
        let n = b.add(r, one);
        b.connect(r, n);
        let nl = b.build().unwrap();
        let cap = CapModel::default().annotate(&nl);
        let mut sim = Simulator::new(&nl, &cap, power_cfg());
        // enable off: register frozen
        sim.set_input(en, 0);
        sim.step();
        sim.step();
        assert_eq!(sim.value(r), 0);
        // enable on at cycle i gates the edge into cycle i+1
        sim.set_input(en, 1);
        sim.step(); // enable seen this cycle
        sim.step(); // edge: r <- 1
        assert_eq!(sim.value(r), 1);
        sim.set_input(en, 0);
        sim.step(); // edge still enabled from previous cycle: r <- 2
        assert_eq!(sim.value(r), 2);
        sim.step();
        assert_eq!(sim.value(r), 2);
    }

    #[test]
    fn gated_clock_toggle_feature_is_enable() {
        let mut b = NetlistBuilder::new("t");
        let en = b.input(1, "en", Unit::Control);
        let gclk_id = b.clock_gate(en, "gclk", Unit::ClockTree);
        let r = b.reg(4, 0, gclk_id, "r", Unit::Alu);
        let one = b.constant(1, 4);
        let n = b.add(r, one);
        b.connect(r, n);
        let nl = b.build().unwrap();
        let gc_node = nl.clock_node(gclk_id).unwrap();
        let cap = CapModel::default().annotate(&nl);
        let mut sim = Simulator::new(&nl, &cap, power_cfg());
        sim.set_input(en, 1);
        sim.step();
        assert_eq!(sim.toggle_word(gc_node), 1);
        sim.step();
        // enable stayed 1 (no edge on the enable) but the feature stays 1
        assert_eq!(sim.toggle_word(gc_node), 1);
        sim.set_input(en, 0);
        sim.step();
        assert_eq!(sim.toggle_word(gc_node), 0);
    }

    #[test]
    fn memory_write_then_read() {
        let mut b = NetlistBuilder::new("t");
        let mem = b.memory(16, 32, "m", Unit::LoadStore);
        let waddr = b.input(4, "waddr", Unit::LoadStore);
        let wdata = b.input(32, "wdata", Unit::LoadStore);
        let wen = b.input(1, "wen", Unit::LoadStore);
        let raddr = b.input(4, "raddr", Unit::LoadStore);
        let ren = b.input(1, "ren", Unit::LoadStore);
        let waddr_w = b.zext(waddr, 32);
        let raddr_w = b.zext(raddr, 32);
        b.mem_write(mem, wen, waddr_w, wdata);
        let rport = b.mem_read(mem, raddr_w, ren, "rdata", Unit::LoadStore);
        let nl = b.build().unwrap();
        let cap = CapModel::default().annotate(&nl);
        let mut sim = Simulator::new(&nl, &cap, power_cfg());

        sim.set_input(waddr, 3);
        sim.set_input(wdata, 0xDEAD);
        sim.set_input(wen, 1);
        sim.set_input(raddr, 3);
        sim.set_input(ren, 1);
        sim.step(); // write/read commands presented this cycle
        sim.set_input(wen, 0);
        sim.step(); // write retires at the edge, read sees it (write-first)
        assert_eq!(sim.value(rport), 0xDEAD);
        assert_eq!(sim.mem_word(mem, 3), 0xDEAD);
        // read power was consumed
        assert!(sim.power().memory > 0.0);
    }

    #[test]
    fn mem_read_disabled_holds_value() {
        let mut b = NetlistBuilder::new("t");
        let mem = b.memory(4, 8, "m", Unit::LoadStore);
        b.memory_init(mem, vec![7, 8, 9, 10]);
        let addr = b.input(2, "addr", Unit::LoadStore);
        let ren = b.input(1, "ren", Unit::LoadStore);
        let addr_w = b.zext(addr, 8);
        let rport = b.mem_read(mem, addr_w, ren, "rdata", Unit::LoadStore);
        let nl = b.build().unwrap();
        let cap = CapModel::default().annotate(&nl);
        let mut sim = Simulator::new(&nl, &cap, power_cfg());
        sim.set_input(addr, 1);
        sim.set_input(ren, 1);
        sim.step();
        sim.step();
        assert_eq!(sim.value(rport), 8);
        sim.set_input(addr, 2);
        sim.set_input(ren, 0);
        sim.step();
        sim.step();
        assert_eq!(sim.value(rport), 8, "disabled read holds");
    }

    #[test]
    fn shifts_handle_overflow_amounts() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input(8, "a", Unit::Alu);
        let amt = b.input(8, "amt", Unit::Alu);
        let l = b.shl(a, amt);
        let r = b.shr(a, amt);
        let rr = b.delay(l, 0, CLOCK_ROOT, "rl", Unit::Alu);
        let rs = b.delay(r, 0, CLOCK_ROOT, "rs", Unit::Alu);
        let _ = (rr, rs);
        let nl = b.build().unwrap();
        let cap = CapModel::default().annotate(&nl);
        let mut sim = Simulator::new(&nl, &cap, power_cfg());
        sim.set_input(a, 0b1011);
        sim.set_input(amt, 2);
        sim.step();
        assert_eq!(sim.value(l), 0b101100);
        assert_eq!(sim.value(r), 0b10);
        sim.set_input(amt, 100);
        sim.step();
        assert_eq!(sim.value(l), 0);
        assert_eq!(sim.value(r), 0);
    }

    #[test]
    fn toggle_row_packs_across_word_boundaries() {
        let mut b = NetlistBuilder::new("t");
        // 60-bit register then an 8-bit one straddles the 64-bit boundary.
        let r0 = b.reg(60, 0, CLOCK_ROOT, "r0", Unit::Alu);
        let r1 = b.reg(8, 0, CLOCK_ROOT, "r1", Unit::Alu);
        let ones60 = b.constant((1u64 << 60) - 1, 60);
        let n0 = b.xor(r0, ones60);
        let ones8 = b.constant(0xff, 8);
        let n1 = b.xor(r1, ones8);
        b.connect(r0, n0);
        b.connect(r1, n1);
        let nl = b.build().unwrap();
        let cap = CapModel::default().annotate(&nl);
        let mut sim = Simulator::new(&nl, &cap, power_cfg());
        sim.step();
        let mut row = vec![0u64; nl.signal_bits().div_ceil(64)];
        sim.toggle_row(&mut row);
        // r0 occupies bits 0..60 and toggled everywhere.
        assert_eq!(row[0] & ((1u64 << 60) - 1), (1u64 << 60) - 1);
        // r1 occupies bits 60..68: 4 bits in word 0, 4 bits in word 1.
        assert_eq!(row[0] >> 60, 0xf);
        assert_eq!(row[1] & 0xf, 0xf);
    }

    #[test]
    fn power_is_deterministic() {
        let mut b = NetlistBuilder::new("t");
        let r = b.reg(16, 0, CLOCK_ROOT, "r", Unit::Alu);
        let c = b.constant(0x1234, 16);
        let n = b.add(r, c);
        b.connect(r, n);
        let nl = b.build().unwrap();
        let cap = CapModel::default().annotate(&nl);
        let run = || {
            let mut sim = Simulator::new(&nl, &cap, PowerConfig::default());
            (0..50)
                .map(|_| {
                    sim.step();
                    sim.power().total
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn unit_attribution_sums_to_switching() {
        let mut b = NetlistBuilder::new("t");
        b.set_unit(Unit::Alu);
        let r1 = b.reg(16, 0, CLOCK_ROOT, "alu_r", Unit::Alu);
        let n1 = b.not(r1);
        b.connect(r1, n1);
        b.set_unit(Unit::Vector);
        let r2 = b.reg(16, 0, CLOCK_ROOT, "vec_r", Unit::Vector);
        let n2 = b.not(r2);
        b.connect(r2, n2);
        let nl = b.build().unwrap();
        let cap = CapModel::default().annotate(&nl);
        let mut sim = Simulator::new(&nl, &cap, power_cfg());
        sim.step();
        sim.step();
        let per_unit = sim.unit_switching();
        let total: f64 = per_unit.iter().sum();
        assert!((total - sim.power().switching).abs() < 1e-9);
        // Both units toggled; their indices carry nonzero power.
        let alu_idx = apollo_rtl::Unit::ALL
            .iter()
            .position(|u| *u == Unit::Alu)
            .unwrap();
        let vec_idx = apollo_rtl::Unit::ALL
            .iter()
            .position(|u| *u == Unit::Vector)
            .unwrap();
        assert!(per_unit[alu_idx] > 0.0);
        assert!(per_unit[vec_idx] > 0.0);
    }

    #[test]
    fn more_activity_means_more_switching_power() {
        let mut b = NetlistBuilder::new("t");
        let en = b.input(1, "en", Unit::Control);
        let r = b.reg(32, 0, CLOCK_ROOT, "r", Unit::Alu);
        let inv = b.not(r);
        let hold = b.mux(en, inv, r);
        b.connect(r, hold);
        let nl = b.build().unwrap();
        let cap = CapModel::default().annotate(&nl);
        let mut sim = Simulator::new(&nl, &cap, power_cfg());
        sim.set_input(en, 0);
        sim.step();
        sim.step();
        let idle = sim.power().switching;
        sim.set_input(en, 1);
        sim.step();
        sim.step();
        let active = sim.power().switching;
        assert!(active > idle, "active {active} <= idle {idle}");
    }

    #[test]
    fn parallel_counter_matches_sequential() {
        let mut b = NetlistBuilder::new("t");
        let r = b.reg(8, 0, CLOCK_ROOT, "count", Unit::Control);
        let one = b.constant(1, 8);
        let n = b.add(r, one);
        b.connect(r, n);
        let nl = b.build().unwrap();
        let cap = CapModel::default().annotate(&nl);
        let mut seq = Simulator::new(&nl, &cap, PowerConfig::default());
        let mut par = Simulator::with_threads(&nl, &cap, PowerConfig::default(), 3);
        assert_eq!(par.threads(), 3);
        for _ in 0..64 {
            seq.step();
            par.step();
            assert_eq!(seq.value(r), par.value(r));
            assert_eq!(seq.toggles(), par.toggles());
            assert_eq!(seq.power(), par.power());
        }
    }

    #[test]
    fn gated_off_domain_skips_but_stays_exact() {
        // A gated domain plus a free-running counter: with the enable
        // low the gated cone's shards are skipped, and everything must
        // still match a fresh full evaluation cycle-for-cycle.
        let build = || {
            let mut b = NetlistBuilder::new("t");
            let en = b.input(1, "en", Unit::Control);
            let gclk = b.clock_gate(en, "gclk", Unit::ClockTree);
            let rg = b.reg(16, 0, gclk, "rg", Unit::Vector);
            let one16 = b.constant(1, 16);
            let ng = b.add(rg, one16);
            b.connect(rg, ng);
            let rf = b.reg(8, 0, CLOCK_ROOT, "rf", Unit::Alu);
            let one8 = b.constant(1, 8);
            let nf = b.add(rf, one8);
            b.connect(rf, nf);
            (b.build().unwrap(), en, rg, rf)
        };
        let (nl, en, rg, rf) = build();
        let cap = CapModel::default().annotate(&nl);
        let mut a = Simulator::new(&nl, &cap, PowerConfig::default());
        let mut c = Simulator::with_threads(&nl, &cap, PowerConfig::default(), 2);
        let drive = [1u64, 1, 0, 0, 0, 1, 0, 1, 1, 0, 0, 0, 0, 1];
        for &e in &drive {
            a.set_input(en, e);
            c.set_input(en, e);
            a.step();
            c.step();
            assert_eq!(a.value(rg), c.value(rg));
            assert_eq!(a.value(rf), c.value(rf));
            assert_eq!(a.toggles(), c.toggles());
            assert_eq!(a.power(), c.power());
            assert_eq!(a.unit_switching(), c.unit_switching());
        }
    }
}
