//! Bit-sliced (SIMD-within-a-register) simulation kernel.
//!
//! ## Lane layout
//!
//! The scalar engine stores one `u64` *value* per node and evaluates
//! one trace vector per pass. This engine transposes that layout: each
//! signal **bit** of the netlist's flat `M`-bit feature space owns one
//! `u64` *plane* word whose bit `l` is that signal bit's value on lane
//! `l`. Up to 64 independent trace vectors (capture workloads, GA
//! individuals' stimuli) are packed into the lanes and evaluated
//! together: one AND over two plane words computes that gate bit for
//! all 64 vectors at once. Planes are indexed by
//! [`Netlist::bit_offset`], so the plane array lines up exactly with
//! the packed toggle rows the capture pipeline stores.
//!
//! Cheap ops (logic, add/sub ripple-carry, compares, mux, slices,
//! reductions) are evaluated directly on planes. Expensive ops (mul,
//! udiv, shifts) escape through a 64×64 bit-matrix transpose
//! ([`transpose64`]) to per-lane scalar values and back. Toggles are
//! the XOR of consecutive plane states; per-lane toggle rows fall out
//! of block-wise transposes of the toggle planes, and per-lane counts
//! via `popcnt` on the extracted row bits.
//!
//! ## Ragged tail
//!
//! A batch may hold any `1..=64` lanes. Inactive lanes are initialized
//! to the same reset state, receive no stimulus and are simply never
//! read out; memory ports skip them. Per-lane observables depend only
//! on that lane's stimulus, so the tail costs nothing in correctness.
//!
//! ## Oracle discipline
//!
//! The scalar levelized engine remains the differential oracle: lane
//! `k` of a bitslice batch must be **bit-identical** — node values,
//! toggle words, packed rows, every `f64` of the power breakdown — to
//! a scalar [`crate::Simulator`] driven with lane `k`'s stimulus, including
//! under fault injection (fault decisions are pure functions of
//! `(seed, cycle, site)` and therefore broadcast across lanes). The
//! per-lane power pass replays the scalar engine's float accumulation
//! in exact netlist order; see `tests/bitslice_differential.rs` for
//! the machine-checked contract.

use crate::engine::{
    self, EngineKind, ForceMasks, Instr, LevelPass, MemPorts, PassMetrics, Pool, RegCommit,
    SimEngine,
};
use crate::fault::{CompiledFaults, FaultEvent, FaultPlan, FaultPlanError, FaultReport};
use crate::power::{unit_hash, PowerConfig, PowerSample};
use crate::schedule::LevelSchedule;
use apollo_rtl::{CapAnnotation, MemId, Netlist, NodeId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Transposes a 64×64 bit matrix in place (Hacker's Delight 7-3):
/// afterwards bit `c` of `a[r]` equals bit `r` of the old `a[c]`.
/// The transform is an involution, so the same routine converts plane
/// words to per-lane values and back. Public so block writers (the
/// proxy-capture path in `apollo-core`) can turn 64 cycle-plane words
/// into 64 per-lane cycle words without re-deriving the kernel.
pub fn transpose64(a: &mut [u64; 64]) {
    // LSB-first variant: block-swap the high half-bits of the low words
    // with the low half-bits of the high words, recursively halving.
    let mut j = 32usize;
    let mut m = 0x0000_0000_FFFF_FFFFu64;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// Extracts `w` bits starting at flat offset `off` from a lane's packed
/// toggle row.
#[inline]
fn extract_row_bits(row: &[u64], off: usize, w: usize) -> u64 {
    let word = off / 64;
    let sh = off % 64;
    let mut v = row[word] >> sh;
    if sh + w > 64 {
        v |= row[word + 1] << (64 - sh);
    }
    if w < 64 {
        v &= (1u64 << w) - 1;
    }
    v
}

/// Branchless variant of [`extract_row_bits`] for the power pass inner
/// loop: `row` must carry a zero pad word so `word + 1` is always in
/// bounds, and the double shift handles `sh == 0` without a shift by
/// 64 (`x << 63 << 1 == 0`).
#[inline]
fn extract_at(row: &[u64], word: usize, sh: u32, mask: u64) -> u64 {
    ((row[word] >> sh) | ((row[word + 1] << (63 - sh)) << 1)) & mask
}

/// Precomputed per-node extraction plan for the power pass: row word,
/// shift and width mask resolved once at construction so the per-cycle
/// inner loop is a branch-light sequential sweep over one flat array.
#[derive(Clone, Copy, Debug)]
struct PowerNode {
    /// Row word of the node's first bit — or, for gated nodes, the
    /// node's raw toggle-plane index (switching counts the raw value
    /// toggle there, not the feature override the rows carry).
    word: u32,
    /// Bit offset within that row word (unused for gated nodes).
    sh: u8,
    /// Compiled to [`Instr::Gated`].
    gated: bool,
    /// `(1 << width) - 1` (all-ones at width 64).
    mask: u64,
    /// Switching capacitance.
    cap: f64,
}

/// Precomputed glitch-pair extraction plan (same resolution as
/// [`PowerNode`], for the two source operands).
#[derive(Clone, Copy, Debug)]
struct GlitchPlan {
    /// Node index the entry is keyed to in the scalar float order.
    node: u32,
    a_word: u32,
    b_word: u32,
    a_sh: u8,
    b_sh: u8,
    a_mask: u64,
    b_mask: u64,
    energy: f64,
}

/// Plane-array state shared between a [`BitsliceSimulator`] and its
/// worker pool. Mirrors [`crate::engine::SharedState`] but holds one
/// atomic word per signal *bit* (plane) instead of per node.
#[derive(Debug)]
pub(crate) struct BitsliceState {
    instrs: Vec<Instr>,
    masks: Vec<u64>,
    widths: Vec<u8>,
    /// Flat plane offset of each node (== `Netlist::bit_offset`).
    offs: Vec<u32>,
    schedule: LevelSchedule,
    /// Current value planes, one word per signal bit.
    planes: Vec<AtomicU64>,
    /// Previous-cycle planes (for toggle extraction).
    prev: Vec<AtomicU64>,
    /// Toggle planes `planes ^ prev`.
    raw: Vec<AtomicU64>,
    /// Stuck-at force masks (per node, broadcast across lanes).
    forces: Option<ForceMasks>,
}

impl BitsliceState {
    /// Plane `b` of node `a`, or 0 beyond the node's width (matching
    /// the scalar engine's masked-value semantics).
    #[inline]
    fn plane(&self, a: u32, b: usize) -> u64 {
        let a = a as usize;
        if b < self.widths[a] as usize {
            self.planes[self.offs[a] as usize + b].load(Ordering::Relaxed)
        } else {
            0
        }
    }

    /// All planes of node `a` as one slice. The eval hot loops iterate
    /// these directly — one width/offset lookup per *operand* instead
    /// of per plane, with the slice length carrying the width check.
    /// Planes past the slice read as 0 (the [`BitsliceState::plane`]
    /// fallback handles ragged tails).
    #[inline]
    fn planes_of(&self, a: u32) -> &[AtomicU64] {
        let i = a as usize;
        let off = self.offs[i] as usize;
        &self.planes[off..off + self.widths[i] as usize]
    }

    /// Lane word with bit `l` set iff node `a`'s value on lane `l` is
    /// nonzero (the scalar `value != 0` test, vectorized).
    #[inline]
    fn nonzero(&self, a: u32) -> u64 {
        self.planes_of(a)
            .iter()
            .fold(0u64, |acc, p| acc | p.load(Ordering::Relaxed))
    }

    /// Gathers node `a`'s per-lane values: `out[l]` = value on lane `l`.
    #[inline]
    fn gather(&self, a: u32, out: &mut [u64; 64]) {
        let pa = self.planes_of(a);
        for (o, p) in out.iter_mut().zip(pa) {
            *o = p.load(Ordering::Relaxed);
        }
        out[pa.len()..].fill(0);
        transpose64(out);
    }

    /// Evaluates node `i` into `tmp[..width]` (one plane word per bit).
    fn eval_into(&self, i: usize, tmp: &mut [u64; 64]) {
        let w = self.widths[i] as usize;
        match self.instrs[i] {
            Instr::Hold | Instr::Input | Instr::Const => {
                let off = self.offs[i] as usize;
                for (b, t) in tmp[..w].iter_mut().enumerate() {
                    *t = self.planes[off + b].load(Ordering::Relaxed);
                }
            }
            Instr::Not(a) => {
                let pa = self.planes_of(a);
                let n = w.min(pa.len());
                for (t, x) in tmp[..n].iter_mut().zip(pa) {
                    *t = !x.load(Ordering::Relaxed);
                }
                tmp[n..w].fill(u64::MAX);
            }
            Instr::And(a, b) => {
                // Beyond either operand's width one side reads 0, so
                // the tail is all-zero.
                let (pa, pb) = (self.planes_of(a), self.planes_of(b));
                let n = w.min(pa.len()).min(pb.len());
                for ((t, x), y) in tmp[..n].iter_mut().zip(pa).zip(pb) {
                    *t = x.load(Ordering::Relaxed) & y.load(Ordering::Relaxed);
                }
                tmp[n..w].fill(0);
            }
            Instr::Or(a, b) => {
                let (pa, pb) = (self.planes_of(a), self.planes_of(b));
                let n = w.min(pa.len()).min(pb.len());
                for ((t, x), y) in tmp[..n].iter_mut().zip(pa).zip(pb) {
                    *t = x.load(Ordering::Relaxed) | y.load(Ordering::Relaxed);
                }
                // Tail: whichever operand still has planes passes through.
                for (k, t) in tmp[..w].iter_mut().enumerate().skip(n) {
                    *t = self.plane(a, k) | self.plane(b, k);
                }
            }
            Instr::Xor(a, b) => {
                let (pa, pb) = (self.planes_of(a), self.planes_of(b));
                let n = w.min(pa.len()).min(pb.len());
                for ((t, x), y) in tmp[..n].iter_mut().zip(pa).zip(pb) {
                    *t = x.load(Ordering::Relaxed) ^ y.load(Ordering::Relaxed);
                }
                for (k, t) in tmp[..w].iter_mut().enumerate().skip(n) {
                    *t = self.plane(a, k) ^ self.plane(b, k);
                }
            }
            Instr::Add(a, b) => {
                // Lane-parallel ripple carry: each bit position is one
                // full-adder over plane words.
                let (pa, pb) = (self.planes_of(a), self.planes_of(b));
                let n = w.min(pa.len()).min(pb.len());
                let mut c = 0u64;
                for ((t, x), y) in tmp[..n].iter_mut().zip(pa).zip(pb) {
                    let x = x.load(Ordering::Relaxed);
                    let y = y.load(Ordering::Relaxed);
                    *t = x ^ y ^ c;
                    c = (x & y) | (c & (x ^ y));
                }
                for (k, t) in tmp[..w].iter_mut().enumerate().skip(n) {
                    let x = self.plane(a, k);
                    let y = self.plane(b, k);
                    *t = x ^ y ^ c;
                    c = (x & y) | (c & (x ^ y));
                }
            }
            Instr::Sub(a, b) => {
                // a - b = a + !b + 1: carry-in all-ones, complement b
                // (planes beyond b's width complement to all-ones,
                // matching two's-complement truncation).
                let (pa, pb) = (self.planes_of(a), self.planes_of(b));
                let n = w.min(pa.len()).min(pb.len());
                let mut c = u64::MAX;
                for ((t, x), y) in tmp[..n].iter_mut().zip(pa).zip(pb) {
                    let x = x.load(Ordering::Relaxed);
                    let y = !y.load(Ordering::Relaxed);
                    *t = x ^ y ^ c;
                    c = (x & y) | (c & (x ^ y));
                }
                for (k, t) in tmp[..w].iter_mut().enumerate().skip(n) {
                    let x = self.plane(a, k);
                    let y = !self.plane(b, k);
                    *t = x ^ y ^ c;
                    c = (x & y) | (c & (x ^ y));
                }
            }
            Instr::Mul(a, b) => {
                let m = self.masks[i];
                let mut va = [0u64; 64];
                let mut vb = [0u64; 64];
                self.gather(a, &mut va);
                self.gather(b, &mut vb);
                for (x, &y) in va.iter_mut().zip(vb.iter()) {
                    *x = x.wrapping_mul(y) & m;
                }
                transpose64(&mut va);
                tmp[..w].copy_from_slice(&va[..w]);
            }
            Instr::Udiv(a, b) => {
                let m = self.masks[i];
                let mut va = [0u64; 64];
                let mut vb = [0u64; 64];
                self.gather(a, &mut va);
                self.gather(b, &mut vb);
                for (x, &y) in va.iter_mut().zip(vb.iter()) {
                    *x = x.checked_div(y).unwrap_or(m);
                }
                transpose64(&mut va);
                tmp[..w].copy_from_slice(&va[..w]);
            }
            Instr::Eq(a, b) => {
                let (pa, pb) = (self.planes_of(a), self.planes_of(b));
                let mut acc = u64::MAX;
                for (x, y) in pa.iter().zip(pb) {
                    acc &= !(x.load(Ordering::Relaxed) ^ y.load(Ordering::Relaxed));
                }
                // The longer operand compares its excess planes to 0.
                let n = pa.len().min(pb.len());
                let longer = if pa.len() >= pb.len() { pa } else { pb };
                for x in &longer[n..] {
                    acc &= !x.load(Ordering::Relaxed);
                }
                tmp[0] = acc;
            }
            Instr::Ult(a, b) => {
                // LSB-to-MSB borrow chain: higher bits override lower.
                let (pa, pb) = (self.planes_of(a), self.planes_of(b));
                let wm = pa.len().max(pb.len());
                let mut lt = 0u64;
                for k in 0..wm {
                    let x = pa.get(k).map_or(0, |p| p.load(Ordering::Relaxed));
                    let y = pb.get(k).map_or(0, |p| p.load(Ordering::Relaxed));
                    lt = (!x & y) | (!(x ^ y) & lt);
                }
                tmp[0] = lt;
            }
            Instr::Shl(a, s, wn) => {
                let m = self.masks[i];
                let mut va = [0u64; 64];
                let mut vs = [0u64; 64];
                self.gather(a, &mut va);
                self.gather(s, &mut vs);
                for (x, &amt) in va.iter_mut().zip(vs.iter()) {
                    *x = if amt >= wn as u64 { 0 } else { (*x << amt) & m };
                }
                transpose64(&mut va);
                tmp[..w].copy_from_slice(&va[..w]);
            }
            Instr::Shr(a, s) => {
                let mut va = [0u64; 64];
                let mut vs = [0u64; 64];
                self.gather(a, &mut va);
                self.gather(s, &mut vs);
                for (x, &amt) in va.iter_mut().zip(vs.iter()) {
                    *x = if amt >= 64 { 0 } else { *x >> amt };
                }
                transpose64(&mut va);
                tmp[..w].copy_from_slice(&va[..w]);
            }
            Instr::Mux(sel, t_in, f_in) => {
                let s = self.nonzero(sel);
                let (pa, pb) = (self.planes_of(t_in), self.planes_of(f_in));
                let n = w.min(pa.len()).min(pb.len());
                for ((t, x), y) in tmp[..n].iter_mut().zip(pa).zip(pb) {
                    *t = (x.load(Ordering::Relaxed) & s) | (y.load(Ordering::Relaxed) & !s);
                }
                for (k, t) in tmp[..w].iter_mut().enumerate().skip(n) {
                    *t = (self.plane(t_in, k) & s) | (self.plane(f_in, k) & !s);
                }
            }
            Instr::Slice(src, lo) => {
                let pa = self.planes_of(src);
                let lo = lo as usize;
                let n = w.min(pa.len().saturating_sub(lo));
                for (t, x) in tmp[..n].iter_mut().zip(&pa[lo..]) {
                    *t = x.load(Ordering::Relaxed);
                }
                tmp[n..w].fill(0);
            }
            Instr::Concat(hi, lo, lo_w) => {
                let lo_w = lo_w as usize;
                let (ph, pl) = (self.planes_of(hi), self.planes_of(lo));
                let nl = w.min(lo_w).min(pl.len());
                for (t, x) in tmp[..nl].iter_mut().zip(pl) {
                    *t = x.load(Ordering::Relaxed);
                }
                tmp[nl..w.min(lo_w)].fill(0);
                if w > lo_w {
                    let nh = (w - lo_w).min(ph.len());
                    for (t, x) in tmp[lo_w..lo_w + nh].iter_mut().zip(ph) {
                        *t = x.load(Ordering::Relaxed);
                    }
                    tmp[lo_w + nh..w].fill(0);
                }
            }
            Instr::ReduceOr(a) => {
                tmp[0] = self.nonzero(a);
            }
            Instr::ReduceAnd(a, _am) => {
                tmp[0] = self
                    .planes_of(a)
                    .iter()
                    .fold(u64::MAX, |acc, p| acc & p.load(Ordering::Relaxed));
            }
            Instr::ReduceXor(a) => {
                tmp[0] = self
                    .planes_of(a)
                    .iter()
                    .fold(0u64, |acc, p| acc ^ p.load(Ordering::Relaxed));
            }
            Instr::Gated(en) => {
                // Builder asserts 1-bit enables; the value is the enable.
                tmp[0] = self.plane(en, 0);
            }
        }
    }
}

impl LevelPass for BitsliceState {
    fn schedule(&self) -> &LevelSchedule {
        &self.schedule
    }

    fn metrics(&self) -> &'static PassMetrics {
        &engine::BITSLICE_METRICS
    }

    fn run_shard(&self, shard_idx: usize, record: bool, dirty: u64) -> bool {
        let shard = &self.schedule.shards()[shard_idx];
        let nodes = &self.schedule.order()[shard.start as usize..shard.end as usize];
        if record && shard.influence & dirty == 0 {
            // Clean shard: values hold, toggle planes clear (gated
            // clocks report their — unchanged — enable at extraction).
            for &ni in nodes {
                let i = ni as usize;
                let off = self.offs[i] as usize;
                for b in 0..self.widths[i] as usize {
                    self.raw[off + b].store(0, Ordering::Relaxed);
                }
            }
            return false;
        }
        let mut tmp = [0u64; 64];
        for &ni in nodes {
            let i = ni as usize;
            let w = self.widths[i] as usize;
            self.eval_into(i, &mut tmp);
            if let Some(f) = &self.forces {
                let and = f.and[i].load(Ordering::Relaxed);
                let or = f.or[i].load(Ordering::Relaxed);
                if and != u64::MAX || or != 0 {
                    // (v & and) | or per lane: a forced-high bit's plane
                    // becomes all-ones, a forced-low bit's all-zeros.
                    for (b, t) in tmp[..w].iter_mut().enumerate() {
                        if (or >> b) & 1 == 1 {
                            *t = u64::MAX;
                        } else if (and >> b) & 1 == 0 {
                            *t = 0;
                        }
                    }
                }
            }
            let off = self.offs[i] as usize;
            for (b, &v) in tmp[..w].iter().enumerate() {
                let p = off + b;
                if record {
                    let t = v ^ self.prev[p].load(Ordering::Relaxed);
                    self.prev[p].store(v, Ordering::Relaxed);
                    self.raw[p].store(t, Ordering::Relaxed);
                }
                self.planes[p].store(v, Ordering::Relaxed);
            }
        }
        true
    }
}

/// One staged memory read: per-lane sampled values awaiting commit.
#[derive(Clone)]
struct ReadStage {
    port: u32,
    mem: u32,
    /// Enabled active lanes.
    en: u64,
    vals: [u64; 64],
}

/// Batched instrumentation, mirroring the scalar `SimTelemetry`:
/// `sim.cycles` advances by the active lane count per step (so N lanes
/// account like N scalar simulators), fault events flush through the
/// same typed-event path, and step phases land under
/// `sim.bitslice.step/*`.
#[derive(Debug)]
struct BitsliceTelemetry {
    cycles: &'static apollo_telemetry::Counter,
    fault_events: &'static apollo_telemetry::Counter,
    emitted: usize,
    phase_ns: [u64; 4],
    steps_timed: u64,
}

impl BitsliceTelemetry {
    fn new() -> Self {
        BitsliceTelemetry {
            cycles: apollo_telemetry::counter("sim.cycles"),
            fault_events: apollo_telemetry::counter("sim.fault_events"),
            emitted: 0,
            phase_ns: [0; 4],
            steps_timed: 0,
        }
    }
}

/// A lane-packed simulator evaluating up to 64 independent trace
/// vectors per pass (see the module docs for the lane layout and the
/// oracle discipline). Public observables take a `lane` index; lane `k`
/// is bit-identical to a scalar [`crate::Simulator`] driven with lane
/// `k`'s stimulus.
pub struct BitsliceSimulator<'a> {
    netlist: &'a Netlist,
    config: PowerConfig,
    lanes: usize,
    shared: Arc<BitsliceState>,
    pool: Option<Pool<BitsliceState>>,
    threads: usize,
    caps: Vec<f64>,
    power_plan: Vec<PowerNode>,
    glitch_plan: Vec<GlitchPlan>,
    unit_of: Vec<u8>,
    clock_caps: Vec<f64>,
    mem_energy: Vec<f64>,
    regs: Vec<RegCommit>,
    mems_ports: Vec<MemPorts>,
    clock_nodes: Vec<u32>,
    /// Nodes compiled to [`Instr::Gated`] (feature override sites).
    gated_nodes: Vec<u32>,
    /// Per-memory per-lane backing store: `mem_data[mem][lane*words + w]`.
    mem_data: Vec<Vec<u64>>,
    /// Last cycle's per-domain enable lane words (root = all-ones).
    domain_enable_prev: Vec<u64>,
    /// Staged register planes, reg-major at `reg_stage_off[k]`.
    reg_stage: Vec<u64>,
    reg_stage_off: Vec<u32>,
    read_stage: Vec<ReadStage>,
    /// Staged `(node, lane, value)` inputs.
    pending_inputs: Vec<(u32, u32, u64)>,
    cycle: u64,
    /// Lane-major packed feature rows of the last cycle
    /// (`rows[lane*row_stride..]`), refreshed by the power pass. Each
    /// lane's strip carries one trailing zero pad word so
    /// [`extract_at`] never branches on word boundaries.
    rows: Vec<u64>,
    row_words: usize,
    row_stride: usize,
    last_power: Vec<PowerSample>,
    /// Per-lane scratch accumulators (always 64 wide).
    mem_power: Vec<f64>,
    switch_cap: Vec<f64>,
    glitch_acc: Vec<f64>,
    faults: Option<CompiledFaults>,
    fault_events: Vec<FaultEvent>,
    forced_nodes: Vec<u32>,
    reg_flip_count: u64,
    mem_flip_count: u64,
    stuck_cycle_count: u64,
    telem: BitsliceTelemetry,
}

impl Drop for BitsliceSimulator<'_> {
    fn drop(&mut self) {
        if self.telem.steps_timed > 0 {
            let [commit, eval, power, rows] = self.telem.phase_ns;
            let steps = self.telem.steps_timed;
            apollo_telemetry::profile::record_phase("sim.bitslice.step/commit", steps, commit);
            apollo_telemetry::profile::record_phase("sim.bitslice.step/eval", steps, eval);
            apollo_telemetry::profile::record_phase("sim.bitslice.step/power", steps, power);
            apollo_telemetry::profile::record_phase("sim.bitslice.step/power/rows", steps, rows);
        }
    }
}

impl<'a> BitsliceSimulator<'a> {
    /// Creates a single-threaded bitslice simulator with `lanes` active
    /// lanes (1..=64), every lane in the reset state.
    pub fn new(
        netlist: &'a Netlist,
        cap: &CapAnnotation,
        config: PowerConfig,
        lanes: usize,
    ) -> Self {
        Self::with_threads(netlist, cap, config, lanes, 1)
    }

    /// Creates a bitslice simulator whose value passes are spread over
    /// `threads` participants of the shared level-parallel pool.
    pub fn with_threads(
        netlist: &'a Netlist,
        cap: &CapAnnotation,
        config: PowerConfig,
        lanes: usize,
        threads: usize,
    ) -> Self {
        match Self::with_faults(netlist, cap, config, lanes, threads, None) {
            Ok(sim) => sim,
            // Unreachable: only a fault plan can fail to compile.
            Err(e) => unreachable!("fault-free construction failed: {e}"),
        }
    }

    /// Creates a fault-injecting bitslice simulator. Fault decisions
    /// are pure functions of `(seed, cycle, site)`, so every lane sees
    /// the same injections — lane `k` equals a scalar
    /// [`crate::Simulator::with_faults`] on the same plan.
    ///
    /// # Errors
    /// Returns [`FaultPlanError`] if the plan does not compile against
    /// the netlist.
    ///
    /// # Panics
    /// Panics if `lanes` is outside `1..=64`.
    pub fn with_faults(
        netlist: &'a Netlist,
        cap: &CapAnnotation,
        config: PowerConfig,
        lanes: usize,
        threads: usize,
        plan: Option<&FaultPlan>,
    ) -> Result<Self, FaultPlanError> {
        assert!(
            (1..=64).contains(&lanes),
            "bitslice lanes must be in 1..=64, got {lanes}"
        );
        let faults = plan.map(|p| p.compile(netlist)).transpose()?;
        let c = engine::compile(netlist, cap, &config);
        let m_bits = netlist.signal_bits();

        let mut widths = Vec::with_capacity(netlist.len());
        let mut offs = Vec::with_capacity(netlist.len());
        let mut gated_nodes = Vec::new();
        for (i, node) in netlist.nodes().iter().enumerate() {
            widths.push(node.width);
            offs.push(netlist.bit_offset(NodeId::from_index(i)) as u32);
            if matches!(c.instrs[i], Instr::Gated(_)) {
                gated_nodes.push(i as u32);
            }
        }

        // Broadcast every node's init value across all 64 lanes.
        let mut planes = vec![0u64; m_bits];
        for (i, &v) in c.init_values.iter().enumerate() {
            if v != 0 {
                let off = offs[i] as usize;
                for b in 0..widths[i] as usize {
                    if (v >> b) & 1 == 1 {
                        planes[off + b] = u64::MAX;
                    }
                }
            }
        }
        let power_plan: Vec<PowerNode> = (0..netlist.len())
            .map(|i| {
                let off = netlist.bit_offset(NodeId::from_index(i));
                if gated_nodes.binary_search(&(i as u32)).is_ok() {
                    PowerNode {
                        word: off as u32,
                        sh: 0,
                        gated: true,
                        mask: 1,
                        cap: c.caps[i],
                    }
                } else {
                    PowerNode {
                        word: (off / 64) as u32,
                        sh: (off % 64) as u8,
                        gated: false,
                        mask: c.masks[i],
                        cap: c.caps[i],
                    }
                }
            })
            .collect();
        let glitch_plan: Vec<GlitchPlan> = c
            .glitch_list
            .iter()
            .map(|e| {
                let oa = netlist.bit_offset(NodeId::from_index(e.a as usize));
                let ob = netlist.bit_offset(NodeId::from_index(e.b as usize));
                GlitchPlan {
                    node: e.node,
                    a_word: (oa / 64) as u32,
                    b_word: (ob / 64) as u32,
                    a_sh: (oa % 64) as u8,
                    b_sh: (ob % 64) as u8,
                    a_mask: c.masks[e.a as usize],
                    b_mask: c.masks[e.b as usize],
                    energy: e.energy,
                }
            })
            .collect();

        let atomic = |src: &[u64]| src.iter().map(|&v| AtomicU64::new(v)).collect();
        let zeros = vec![0u64; m_bits];
        let shared = Arc::new(BitsliceState {
            instrs: c.instrs,
            masks: c.masks,
            widths,
            offs,
            schedule: c.schedule,
            planes: atomic(&planes),
            prev: atomic(&planes),
            raw: atomic(&zeros),
            forces: faults.is_some().then(|| ForceMasks::neutral(netlist.len())),
        });
        let threads = threads.max(1);
        let pool = if threads > 1 {
            Some(Pool::spawn(Arc::clone(&shared), threads))
        } else {
            None
        };

        // Per-lane memory images (active lanes only: inactive lanes
        // never issue pokes or port accesses that are read back).
        let mem_data: Vec<Vec<u64>> = c
            .mem_init
            .iter()
            .map(|init| {
                let mut d = Vec::with_capacity(init.len() * lanes);
                for _ in 0..lanes {
                    d.extend_from_slice(init);
                }
                d
            })
            .collect();

        let mut reg_stage_off = Vec::with_capacity(c.regs.len());
        let mut total = 0u32;
        for rc in &c.regs {
            reg_stage_off.push(total);
            total += netlist.node(NodeId::from_index(rc.reg as usize)).width as u32;
        }

        let row_words = m_bits.div_ceil(64);
        let row_stride = row_words + 1;
        let mut sim = BitsliceSimulator {
            netlist,
            config,
            lanes,
            shared,
            pool,
            threads,
            caps: c.caps,
            power_plan,
            glitch_plan,
            unit_of: c.unit_of,
            clock_caps: c.clock_caps,
            mem_energy: c.mem_energy,
            regs: c.regs,
            mems_ports: c.mems_ports,
            clock_nodes: c.clock_nodes,
            gated_nodes,
            mem_data,
            domain_enable_prev: vec![u64::MAX; netlist.clock_domains()],
            reg_stage: vec![0u64; total as usize],
            reg_stage_off,
            read_stage: Vec::new(),
            pending_inputs: Vec::new(),
            cycle: 0,
            rows: vec![0u64; 64 * row_stride],
            row_words,
            row_stride,
            last_power: vec![PowerSample::default(); lanes],
            mem_power: vec![0.0; 64],
            switch_cap: vec![0.0; 64],
            glitch_acc: vec![0.0; 64],
            faults,
            fault_events: Vec::new(),
            forced_nodes: Vec::new(),
            reg_flip_count: 0,
            mem_flip_count: 0,
            stuck_cycle_count: 0,
            telem: BitsliceTelemetry::new(),
        };
        sim.update_forces(0);
        sim.settle();
        Ok(sim)
    }

    /// Number of active lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of evaluation participants (1 = sequential).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of completed cycles (per lane).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    fn settle(&mut self) {
        self.run_value_pass(false, u64::MAX);
        for p in 0..self.shared.planes.len() {
            let v = self.shared.planes[p].load(Ordering::Relaxed);
            self.shared.prev[p].store(v, Ordering::Relaxed);
        }
        self.capture_enables();
    }

    fn run_value_pass(&mut self, record: bool, dirty: u64) {
        match &mut self.pool {
            None => engine::run_pass_seq(&*self.shared, record, dirty),
            Some(pool) => pool.run(&self.shared, record, dirty),
        }
    }

    fn capture_enables(&mut self) {
        for d in 0..self.clock_nodes.len() {
            let gc = self.clock_nodes[d];
            self.domain_enable_prev[d] = if gc == u32::MAX {
                u64::MAX
            } else {
                self.shared.nonzero(gc)
            };
        }
    }

    /// Stages an input value on `lane` for the next step.
    ///
    /// # Panics
    /// Panics if `lane` is inactive, `node` is not an input or `value`
    /// exceeds its width.
    pub fn set_input(&mut self, lane: usize, node: NodeId, value: u64) {
        let i = node.index();
        assert!(lane < self.lanes, "lane {lane} out of {} lanes", self.lanes);
        assert!(
            matches!(self.shared.instrs[i], Instr::Input),
            "{node:?} is not an input"
        );
        assert!(
            value & !self.shared.masks[i] == 0,
            "input value {value:#x} exceeds width of {node:?}"
        );
        self.pending_inputs.push((i as u32, lane as u32, value));
    }

    /// Refreshes stuck-at force masks for `cycle` (identical logic to
    /// the scalar engine; forces broadcast across lanes).
    fn update_forces(&mut self, cycle: u64) -> u64 {
        let Some(f) = &mut self.faults else {
            return 0;
        };
        let mut events = std::mem::take(&mut self.fault_events);
        let (forces, edge) = f.stuck_forces_at(cycle, &mut events);
        self.fault_events = events;
        if !edge {
            return 0;
        }
        let fm = self
            .shared
            .forces
            .as_ref()
            .expect("fault-injecting simulators allocate force masks");
        for &node in &self.forced_nodes {
            fm.and[node as usize].store(u64::MAX, Ordering::Relaxed);
            fm.or[node as usize].store(0, Ordering::Relaxed);
        }
        self.forced_nodes.clear();
        for (node, and, or) in forces {
            let i = node as usize;
            let new_and = fm.and[i].load(Ordering::Relaxed) & and;
            let new_or = fm.or[i].load(Ordering::Relaxed) | or;
            fm.and[i].store(new_and, Ordering::Relaxed);
            fm.or[i].store(new_or, Ordering::Relaxed);
            self.forced_nodes.push(node);
        }
        u64::MAX
    }

    fn flush_fault_telemetry(&mut self) {
        if self.fault_events.len() == self.telem.emitted {
            return;
        }
        let new = &self.fault_events[self.telem.emitted..];
        self.telem.fault_events.add(new.len() as u64);
        crate::fault::emit_events(new);
        self.telem.emitted = self.fault_events.len();
    }

    /// Advances one clock edge on every lane. Phase order mirrors the
    /// scalar engine exactly; see [`crate::Simulator::step`].
    pub fn step(&mut self) {
        self.step_impl(true);
    }

    /// Advances one clock edge on every lane evaluating values and
    /// toggle planes only, skipping the power pass (including the
    /// lane-major row transpose) and the clock/short-circuit/noise
    /// bookkeeping. Mirrors [`crate::Simulator::step_toggles`]:
    /// functional state advances exactly as in
    /// [`BitsliceSimulator::step`], and the toggle planes behind
    /// [`BitsliceSimulator::toggle_plane`] are fresh, but the
    /// row-based accessors ([`BitsliceSimulator::toggle_word`],
    /// [`BitsliceSimulator::toggle_row`]) and the power accessors keep
    /// reporting the last full step. This is the proxy-trace
    /// extraction mode: a plane read *is* the 64-lane toggle vector,
    /// so no transpose is needed at all.
    pub fn step_toggles(&mut self) {
        self.step_impl(false);
    }

    fn step_impl(&mut self, with_power: bool) {
        let mut dirty = 0u64;
        let timing = apollo_telemetry::timing_enabled();
        let t0 = timing.then(Instant::now);

        // 0. Fault injection: stuck-at forces and SRAM upsets (upsets
        //    land in every lane's array — decisions are lane-blind).
        dirty |= self.update_forces(self.cycle);
        if let Some(f) = &self.faults {
            let mut events = std::mem::take(&mut self.fault_events);
            let flips = f.mem_flips_at(self.cycle, &mut events);
            self.fault_events = events;
            self.stuck_cycle_count += f.active_stuck_count(self.cycle);
            for (mem, word, mask) in flips {
                let words = self.mems_ports[mem as usize].words as usize;
                for l in 0..self.lanes {
                    self.mem_data[mem as usize][l * words + word as usize] ^= mask;
                }
                self.mem_flip_count += 1;
            }
        }

        // 1. Stage register next-state planes from the pre-edge state,
        //    blending per lane on the previous cycle's domain enable.
        for (k, rc) in self.regs.iter().enumerate() {
            let en = self.domain_enable_prev[rc.domain as usize];
            let so = self.reg_stage_off[k] as usize;
            let w = self.shared.widths[rc.reg as usize] as usize;
            let roff = self.shared.offs[rc.reg as usize] as usize;
            for b in 0..w {
                let next_b = self.shared.plane(rc.next, b);
                let reg_b = self.shared.planes[roff + b].load(Ordering::Relaxed);
                self.reg_stage[so + b] = (next_b & en) | (reg_b & !en);
            }
        }

        // 1b. Register upsets flip the staged bit on every lane.
        if let Some(f) = &self.faults {
            let mut events = std::mem::take(&mut self.fault_events);
            let flips = f.reg_flips_at(self.cycle, &mut events);
            self.fault_events = events;
            for (node, mask) in flips {
                if let Ok(k) = self.regs.binary_search_by_key(&node, |rc| rc.reg) {
                    let so = self.reg_stage_off[k] as usize;
                    let w = self.shared.widths[node as usize] as usize;
                    for b in 0..w {
                        if (mask >> b) & 1 == 1 {
                            self.reg_stage[so + b] ^= u64::MAX;
                        }
                    }
                    self.reg_flip_count += 1;
                }
            }
        }
        self.flush_fault_telemetry();

        let schedule = &self.shared.schedule;

        // 2. Memory-port commit: all writes of all memories first, then
        //    all reads sample the post-write arrays, then staged reads
        //    commit to the port planes (write-first; same pre-edge
        //    operand discipline as the scalar engine).
        self.mem_power[..self.lanes].fill(0.0);
        let lane_mask = if self.lanes == 64 {
            u64::MAX
        } else {
            (1u64 << self.lanes) - 1
        };
        for mp in &self.mems_ports {
            let energy = self.mem_energy[mp.mem as usize];
            let words = mp.words as usize;
            for &(en, addr, data) in &mp.writes {
                let en_w = self.shared.nonzero(en) & lane_mask;
                if en_w == 0 {
                    continue;
                }
                let mut av = [0u64; 64];
                let mut dv = [0u64; 64];
                self.shared.gather(addr, &mut av);
                self.shared.gather(data, &mut dv);
                for l in 0..self.lanes {
                    if (en_w >> l) & 1 == 1 {
                        let a = (av[l] % mp.words as u64) as usize;
                        self.mem_data[mp.mem as usize][l * words + a] = dv[l];
                        self.mem_power[l] += energy;
                    }
                }
            }
        }
        self.read_stage.clear();
        for mp in &self.mems_ports {
            let energy = self.mem_energy[mp.mem as usize];
            let words = mp.words as usize;
            for &(port, addr, en) in &mp.reads {
                let en_w = self.shared.nonzero(en) & lane_mask;
                if en_w == 0 {
                    continue;
                }
                let mut av = [0u64; 64];
                self.shared.gather(addr, &mut av);
                let mut vals = [0u64; 64];
                for l in 0..self.lanes {
                    if (en_w >> l) & 1 == 1 {
                        let a = (av[l] % mp.words as u64) as usize;
                        vals[l] = self.mem_data[mp.mem as usize][l * words + a];
                        self.mem_power[l] += energy;
                    }
                }
                self.read_stage.push(ReadStage {
                    port,
                    mem: mp.mem,
                    en: en_w,
                    vals,
                });
            }
        }
        for rs in &self.read_stage {
            let mut cur = [0u64; 64];
            self.shared.gather(rs.port, &mut cur);
            let mut changed = false;
            for (l, c) in cur.iter_mut().enumerate().take(self.lanes) {
                if (rs.en >> l) & 1 == 1 && *c != rs.vals[l] {
                    *c = rs.vals[l];
                    changed = true;
                }
            }
            if changed {
                dirty |= schedule.mem_bit(rs.mem as usize);
                // Scatter back, preserving disabled/inactive lanes.
                transpose64(&mut cur);
                let off = self.shared.offs[rs.port as usize] as usize;
                let w = self.shared.widths[rs.port as usize] as usize;
                for (plane, &word) in self.shared.planes[off..off + w].iter().zip(&cur) {
                    plane.store(word, Ordering::Relaxed);
                }
            }
        }

        // 3. Register commit from the staged planes.
        for (k, rc) in self.regs.iter().enumerate() {
            let so = self.reg_stage_off[k] as usize;
            let roff = self.shared.offs[rc.reg as usize] as usize;
            let w = self.shared.widths[rc.reg as usize] as usize;
            for b in 0..w {
                let new = self.reg_stage[so + b];
                if self.shared.planes[roff + b].load(Ordering::Relaxed) != new {
                    dirty |= schedule.domain_bit(rc.domain as usize);
                    self.shared.planes[roff + b].store(new, Ordering::Relaxed);
                }
            }
        }

        // 4. Apply staged inputs per (node, lane).
        for &(node, lane, value) in &self.pending_inputs {
            let i = node as usize;
            let off = self.shared.offs[i] as usize;
            for b in 0..self.shared.widths[i] as usize {
                let p = off + b;
                let old = self.shared.planes[p].load(Ordering::Relaxed);
                let new = (old & !(1u64 << lane)) | (((value >> b) & 1) << lane);
                if new != old {
                    dirty |= schedule.input_bit();
                    self.shared.planes[p].store(new, Ordering::Relaxed);
                }
            }
        }
        self.pending_inputs.clear();

        let t_commit = timing.then(Instant::now);

        // 5. Combinational evaluation with toggle extraction, then the
        //    per-lane power pass in exact scalar float order.
        self.run_value_pass(true, dirty);
        let t_eval = timing.then(Instant::now);
        if with_power {
            self.power_pass();

            // 6. Clock power for domains pulsing this cycle, per lane.
            let half_v_squared = self.config.half_v_squared;
            let mut clock_acc = [0.0f64; 64];
            for d in 0..self.clock_nodes.len() {
                let gc = self.clock_nodes[d];
                let pulse = if gc == u32::MAX {
                    u64::MAX
                } else {
                    self.shared.nonzero(gc)
                };
                let p = self.clock_caps[d] * half_v_squared;
                for (l, acc) in clock_acc[..self.lanes].iter_mut().enumerate() {
                    if (pulse >> l) & 1 == 1 {
                        *acc += p;
                    }
                }
            }

            // 7. Short-circuit and residual noise (the hash multipliers
            //    depend only on the cycle, so they broadcast across
            //    lanes).
            let h_sc = 0.5 + unit_hash(self.config.seed ^ self.cycle.wrapping_mul(0x9E37));
            let h_noise =
                2.0 * unit_hash(self.config.seed ^ self.cycle.wrapping_mul(0x85EB) ^ 0xC2B2) - 1.0;
            for (l, &clk) in clock_acc.iter().enumerate().take(self.lanes) {
                let switching = self.switch_cap[l] * half_v_squared;
                let glitch = self.glitch_acc[l];
                let sc = self.config.short_circuit_factor * switching * h_sc;
                let dynamic = switching + clk + self.mem_power[l] + glitch + sc;
                let noise = self.config.noise_rel * dynamic * h_noise;
                self.last_power[l] = PowerSample::from_components(
                    switching,
                    clk,
                    self.mem_power[l],
                    glitch,
                    sc,
                    self.config.leakage,
                    noise,
                );
            }
        }

        // 8. Remember this cycle's enables for the next commit.
        self.capture_enables();
        self.cycle += 1;
        self.telem.cycles.add(self.lanes as u64);
        if let (Some(t0), Some(tc), Some(te)) = (t0, t_commit, t_eval) {
            self.telem.phase_ns[0] += (tc - t0).as_nanos() as u64;
            self.telem.phase_ns[1] += (te - tc).as_nanos() as u64;
            self.telem.phase_ns[2] += te.elapsed().as_nanos() as u64;
            self.telem.steps_timed += 1;
        }
    }

    /// Rebuilds the lane-major packed feature rows from the toggle
    /// planes via 64×64 block transposes, then patches gated-clock
    /// bits with their enable (the feature-toggle override).
    fn refresh_rows(&mut self) {
        let rw = self.row_stride;
        let m = self.netlist.signal_bits();
        let lanes = self.lanes;
        let mut blk = [0u64; 64];
        for wi in 0..self.row_words {
            let base = wi * 64;
            let hi = (m - base).min(64);
            let mut any = 0u64;
            for (b, x) in blk.iter_mut().enumerate() {
                *x = if b < hi {
                    self.shared.raw[base + b].load(Ordering::Relaxed)
                } else {
                    0
                };
                any |= *x;
            }
            // Blocks with no toggle in any lane skip the transpose;
            // the rows still need the zero written (they may be stale).
            if any == 0 {
                for l in 0..lanes {
                    self.rows[l * rw + wi] = 0;
                }
                continue;
            }
            transpose64(&mut blk);
            // Rows past the active lane count are never read.
            for (l, &w) in blk.iter().enumerate().take(lanes) {
                self.rows[l * rw + wi] = w;
            }
        }
        for &gc in &self.gated_nodes {
            let off = self.shared.offs[gc as usize] as usize;
            let word = off / 64;
            let sh = off % 64;
            let en = self.shared.planes[off].load(Ordering::Relaxed);
            for l in 0..lanes {
                let w = &mut self.rows[l * rw + word];
                *w = (*w & !(1u64 << sh)) | (((en >> l) & 1) << sh);
            }
        }
    }

    /// Per-lane switching/glitch accumulation replaying the scalar
    /// engine's float order: nodes ascending, glitch entries
    /// interleaved at their node index, per-lane accumulators. The
    /// node loop is outermost (one [`PowerNode`] plan load per node)
    /// and the lane loop innermost; each lane only ever adds terms in
    /// its own node-ascending order, so the per-lane float sums stay
    /// bit-identical to the scalar engine no matter the loop nesting.
    fn power_pass(&mut self) {
        let t0 = apollo_telemetry::timing_enabled().then(Instant::now);
        self.refresh_rows();
        if let Some(t0) = t0 {
            self.telem.phase_ns[3] += t0.elapsed().as_nanos() as u64;
        }
        let stride = self.row_stride;
        let lanes = self.lanes;
        self.switch_cap[..lanes].fill(0.0);
        self.glitch_acc[..lanes].fill(0.0);
        let rows = &self.rows[..lanes * stride];
        let mut gk = 0usize;
        for (i, pn) in self.power_plan.iter().enumerate() {
            if gk < self.glitch_plan.len() && self.glitch_plan[gk].node as usize == i {
                let g = &self.glitch_plan[gk];
                for (strip, acc) in rows.chunks_exact(stride).zip(&mut self.glitch_acc[..lanes]) {
                    let it = extract_at(strip, g.a_word as usize, g.a_sh as u32, g.a_mask)
                        | extract_at(strip, g.b_word as usize, g.b_sh as u32, g.b_mask);
                    *acc += g.energy * it.count_ones() as f64;
                }
                gk += 1;
            }
            if pn.gated {
                // Switching counts the raw value toggle, not the
                // feature override the rows carry.
                let t_plane = self.shared.raw[pn.word as usize].load(Ordering::Relaxed);
                for (l, acc) in self.switch_cap[..lanes].iter_mut().enumerate() {
                    *acc += ((t_plane >> l) & 1) as f64 * pn.cap;
                }
            } else {
                // Unconditional: a zero toggle word adds exactly
                // `+0.0`, which cannot change the accumulator bits, and
                // the 64 branch-free per-lane add chains are
                // independent, so they pipeline instead of serializing
                // on `f64` add latency.
                let (word, sh, mask) = (pn.word as usize, pn.sh as u32, pn.mask);
                for (strip, acc) in rows.chunks_exact(stride).zip(&mut self.switch_cap[..lanes]) {
                    let t = extract_at(strip, word, sh, mask);
                    *acc += t.count_ones() as f64 * pn.cap;
                }
            }
        }
    }

    /// Current value of a node on `lane`, reassembled from its planes.
    pub fn value(&self, lane: usize, node: NodeId) -> u64 {
        assert!(lane < self.lanes, "lane {lane} out of {} lanes", self.lanes);
        let i = node.index();
        let off = self.shared.offs[i] as usize;
        let mut v = 0u64;
        for b in 0..self.shared.widths[i] as usize {
            v |= ((self.shared.planes[off + b].load(Ordering::Relaxed) >> lane) & 1) << b;
        }
        v
    }

    /// Feature-toggle word of a node on `lane` for the last cycle
    /// (gated clocks report their enable).
    pub fn toggle_word(&self, lane: usize, node: NodeId) -> u64 {
        assert!(lane < self.lanes, "lane {lane} out of {} lanes", self.lanes);
        let i = node.index();
        extract_row_bits(
            &self.rows[lane * self.row_stride..(lane + 1) * self.row_stride],
            self.shared.offs[i] as usize,
            self.shared.widths[i] as usize,
        )
    }

    /// Packs `lane`'s last-cycle toggle bits into a flat `M`-bit row
    /// (same layout as [`crate::Simulator::toggle_row`]).
    pub fn toggle_row(&self, lane: usize, out: &mut [u64]) {
        assert!(lane < self.lanes, "lane {lane} out of {} lanes", self.lanes);
        assert!(out.len() >= self.row_words, "toggle_row buffer too small");
        let base = lane * self.row_stride;
        out[..self.row_words].copy_from_slice(&self.rows[base..base + self.row_words]);
    }

    /// The 64-lane feature-toggle plane of one signal bit for the last
    /// cycle: bit `l` of the returned word is lane `l`'s toggle of
    /// `node` bit `bit` (gated clocks report their enable, matching
    /// [`BitsliceSimulator::toggle_word`]). Unlike the row-based
    /// accessors this reads the toggle planes directly — no transpose,
    /// fresh after [`BitsliceSimulator::step_toggles`] — which makes
    /// per-cycle proxy extraction O(Q) plane loads for all 64 lanes.
    ///
    /// # Panics
    /// Panics if `bit` is not below the node's width.
    pub fn toggle_plane(&self, node: NodeId, bit: usize) -> u64 {
        let i = node.index();
        assert!(
            bit < self.shared.widths[i] as usize,
            "bit {bit} out of width {} for node {i}",
            self.shared.widths[i]
        );
        let off = self.shared.offs[i] as usize;
        if self.gated_nodes.binary_search(&(i as u32)).is_ok() {
            // Feature override: a gated clock's "toggle" is its enable.
            self.shared.planes[off].load(Ordering::Relaxed)
        } else {
            self.shared.raw[off + bit].load(Ordering::Relaxed)
        }
    }

    /// Ground-truth power of the last completed cycle on `lane`.
    pub fn power(&self, lane: usize) -> PowerSample {
        self.last_power[lane]
    }

    /// Switching power of the last cycle on `lane` attributed per
    /// functional unit (computed on demand; bit-identical to the scalar
    /// engine's [`crate::Simulator::unit_switching`]).
    pub fn unit_switching(&self, lane: usize) -> Vec<f64> {
        assert!(lane < self.lanes, "lane {lane} out of {} lanes", self.lanes);
        let mut unit = vec![0.0f64; apollo_rtl::Unit::ALL.len()];
        let row = &self.rows[lane * self.row_stride..(lane + 1) * self.row_stride];
        let mut gated_k = 0usize;
        for i in 0..self.shared.instrs.len() {
            let is_gated =
                gated_k < self.gated_nodes.len() && self.gated_nodes[gated_k] as usize == i;
            let t = if is_gated {
                gated_k += 1;
                (self.shared.raw[self.shared.offs[i] as usize].load(Ordering::Relaxed) >> lane) & 1
            } else {
                extract_row_bits(
                    row,
                    self.shared.offs[i] as usize,
                    self.shared.widths[i] as usize,
                )
            };
            if t != 0 {
                unit[self.unit_of[i] as usize] += t.count_ones() as f64 * self.caps[i];
            }
        }
        for u in &mut unit {
            *u *= self.config.half_v_squared;
        }
        unit
    }

    /// Reads a word from `lane`'s copy of a memory macro.
    pub fn mem_word(&self, lane: usize, mem: MemId, addr: u32) -> u64 {
        assert!(lane < self.lanes, "lane {lane} out of {} lanes", self.lanes);
        let words = self.mems_ports[mem.index()].words;
        self.mem_data[mem.index()][lane * words as usize + (addr % words) as usize]
    }

    /// Writes a word directly into `lane`'s copy of a memory macro
    /// (for loading per-lane program/data images; no access energy).
    pub fn poke_mem(&mut self, lane: usize, mem: MemId, addr: u32, value: u64) {
        assert!(lane < self.lanes, "lane {lane} out of {} lanes", self.lanes);
        let words = self.mems_ports[mem.index()].words;
        self.mem_data[mem.index()][lane * words as usize + (addr % words) as usize] = value;
    }

    /// Every fault injected so far (once per batch step, not per lane).
    pub fn fault_events(&self) -> &[FaultEvent] {
        &self.fault_events
    }

    /// Fault-injection summary, or `None` without a plan. Identical to
    /// a scalar simulator's report over the same plan and cycle count.
    pub fn fault_report(&self) -> Option<FaultReport> {
        self.faults.as_ref().map(|f| FaultReport {
            seed: f.seed(),
            cycles: self.cycle,
            reg_flips: self.reg_flip_count,
            mem_flips: self.mem_flip_count,
            stuck_cycles: self.stuck_cycle_count,
            events: self.fault_events.clone(),
        })
    }
}

impl std::fmt::Debug for BitsliceSimulator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BitsliceSimulator({} lanes, {} threads, cycle {})",
            self.lanes, self.threads, self.cycle
        )
    }
}

impl SimEngine for BitsliceSimulator<'_> {
    fn kind(&self) -> EngineKind {
        EngineKind::Bitslice
    }

    fn lanes(&self) -> usize {
        self.lanes
    }

    fn set_input(&mut self, lane: usize, node: NodeId, value: u64) {
        BitsliceSimulator::set_input(self, lane, node, value);
    }

    fn step(&mut self) {
        BitsliceSimulator::step(self);
    }

    fn step_toggles(&mut self) {
        BitsliceSimulator::step_toggles(self);
    }

    fn cycle(&self) -> u64 {
        BitsliceSimulator::cycle(self)
    }

    fn value(&self, lane: usize, node: NodeId) -> u64 {
        BitsliceSimulator::value(self, lane, node)
    }

    fn toggle_word(&self, lane: usize, node: NodeId) -> u64 {
        BitsliceSimulator::toggle_word(self, lane, node)
    }

    fn toggle_row(&self, lane: usize, out: &mut [u64]) {
        BitsliceSimulator::toggle_row(self, lane, out);
    }

    fn power(&self, lane: usize) -> PowerSample {
        BitsliceSimulator::power(self, lane)
    }

    fn unit_switching(&self, lane: usize) -> Vec<f64> {
        BitsliceSimulator::unit_switching(self, lane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::Simulator;
    use apollo_rtl::{CapModel, NetlistBuilder, Unit, CLOCK_ROOT};

    #[test]
    fn transpose64_moves_single_bits() {
        // Element (r, c): bit c of word r lands at bit r of word c —
        // including the corners and lane 63.
        for (r, c) in [(0, 0), (0, 63), (63, 0), (63, 63), (5, 41), (41, 5)] {
            let mut a = [0u64; 64];
            a[r] = 1u64 << c;
            transpose64(&mut a);
            for (k, &w) in a.iter().enumerate() {
                let want = if k == c { 1u64 << r } else { 0 };
                assert_eq!(w, want, "({r},{c}) word {k}");
            }
        }
    }

    #[test]
    fn transpose64_is_an_involution() {
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut a = [0u64; 64];
        for w in &mut a {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *w = x;
        }
        let orig = a;
        transpose64(&mut a);
        assert_ne!(a, orig, "transpose of a random matrix should differ");
        transpose64(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn transpose64_all_ones_fixed_point() {
        let mut a = [u64::MAX; 64];
        transpose64(&mut a);
        assert_eq!(a, [u64::MAX; 64], "all-toggle lanes are a fixed point");
    }

    #[test]
    fn extract_row_bits_handles_word_boundaries() {
        // Node of width 8 at offset 60: 4 bits in word 0, 4 in word 1.
        let row = [0xAu64 << 60, 0x5, 0x0];
        assert_eq!(extract_row_bits(&row, 60, 8), 0x5A);
        // Full 64-bit node at an aligned offset.
        assert_eq!(extract_row_bits(&row, 64, 64), 0x5);
        // Width-1 extraction at the top bit of a word (0xA = 0b1010).
        assert_eq!(extract_row_bits(&row, 63, 1), 1);
        assert_eq!(extract_row_bits(&row, 62, 1), 0);
        assert_eq!(extract_row_bits(&row, 61, 1), 1);
    }

    #[test]
    fn lane_packing_roundtrip_through_planes() {
        // A 64-lane counter: lane l is poked to value l via inputs and
        // read back exactly, exercising lane 0 and lane 63.
        let mut b = NetlistBuilder::new("t");
        let x = b.input(8, "x", Unit::Control);
        let r = b.delay(x, 0, CLOCK_ROOT, "r", Unit::Alu);
        let nl = b.build().unwrap();
        let cap = CapModel::default().annotate(&nl);
        let mut sim = BitsliceSimulator::new(&nl, &cap, PowerConfig::default(), 64);
        for l in 0..64 {
            sim.set_input(l, x, (l as u64 * 3 + 1) & 0xFF);
        }
        sim.step();
        for l in 0..64 {
            assert_eq!(sim.value(l, x), (l as u64 * 3 + 1) & 0xFF, "lane {l}");
        }
        sim.step();
        for l in 0..64 {
            assert_eq!(sim.value(l, r), (l as u64 * 3 + 1) & 0xFF, "lane {l} reg");
        }
    }

    #[test]
    fn popcnt_toggle_accumulation_all_toggle_lanes() {
        // Every lane flips all 16 bits every cycle: each lane's
        // switching power must equal a scalar run's, and the toggle
        // word must be all-ones on every lane including lane 63.
        let mut b = NetlistBuilder::new("t");
        let r = b.reg(16, 0, CLOCK_ROOT, "r", Unit::Alu);
        let ones = b.constant(0xFFFF, 16);
        let n = b.xor(r, ones);
        b.connect(r, n);
        let nl = b.build().unwrap();
        let cap = CapModel::default().annotate(&nl);
        let cfg = PowerConfig::default();
        let mut bs = BitsliceSimulator::new(&nl, &cap, cfg.clone(), 64);
        let mut sc = Simulator::new(&nl, &cap, cfg);
        for _ in 0..5 {
            bs.step();
            sc.step();
            for l in [0usize, 1, 31, 63] {
                assert_eq!(bs.toggle_word(l, r), 0xFFFF, "lane {l}");
                assert_eq!(
                    bs.power(l).switching.to_bits(),
                    sc.power().switching.to_bits(),
                    "lane {l}"
                );
            }
        }
    }

    #[test]
    fn ragged_tail_single_lane_matches_scalar() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input(32, "a", Unit::Alu);
        let c = b.input(32, "c", Unit::Alu);
        let s = b.add(a, c);
        let p = b.mul(a, c);
        let q = b.udiv(s, c);
        let r = b.delay(p, 0, CLOCK_ROOT, "rp", Unit::Alu);
        let r2 = b.delay(q, 0, CLOCK_ROOT, "rq", Unit::Alu);
        let nl = b.build().unwrap();
        let cap = CapModel::default().annotate(&nl);
        let cfg = PowerConfig::default();
        let mut bs = BitsliceSimulator::new(&nl, &cap, cfg.clone(), 1);
        let mut sc = Simulator::new(&nl, &cap, cfg);
        let stim = [(7u64, 3u64), (1000, 0), (0xFFFF_FFFF, 2), (12, 12), (5, 9)];
        for &(x, y) in &stim {
            bs.set_input(0, a, x);
            bs.set_input(0, c, y);
            sc.set_input(a, x);
            sc.set_input(c, y);
            bs.step();
            sc.step();
            for node in [a, c, s, p, q, r, r2] {
                assert_eq!(bs.value(0, node), sc.value(node), "value of {node:?}");
                assert_eq!(
                    bs.toggle_word(0, node),
                    sc.toggle_word(node),
                    "toggles of {node:?}"
                );
            }
            assert_eq!(bs.power(0), sc.power());
        }
    }

    #[test]
    fn toggle_rows_wrap_at_window_boundaries() {
        // 60-bit + 8-bit registers straddle the 64-bit row boundary;
        // rows must match the scalar packing on every lane.
        let mut b = NetlistBuilder::new("t");
        let r0 = b.reg(60, 0, CLOCK_ROOT, "r0", Unit::Alu);
        let r1 = b.reg(8, 0, CLOCK_ROOT, "r1", Unit::Alu);
        let ones60 = b.constant((1u64 << 60) - 1, 60);
        let n0 = b.xor(r0, ones60);
        let ones8 = b.constant(0xff, 8);
        let n1 = b.xor(r1, ones8);
        b.connect(r0, n0);
        b.connect(r1, n1);
        let nl = b.build().unwrap();
        let cap = CapModel::default().annotate(&nl);
        let cfg = PowerConfig::default();
        let mut bs = BitsliceSimulator::new(&nl, &cap, cfg.clone(), 3);
        let mut sc = Simulator::new(&nl, &cap, cfg);
        let words = nl.signal_bits().div_ceil(64);
        let mut row_b = vec![0u64; words];
        let mut row_s = vec![0u64; words];
        for _ in 0..3 {
            bs.step();
            sc.step();
            sc.toggle_row(&mut row_s);
            for l in 0..3 {
                bs.toggle_row(l, &mut row_b);
                assert_eq!(row_b, row_s, "lane {l}");
            }
        }
    }
}
