//! # apollo-sim
//!
//! Cycle-accurate simulation of [`apollo_rtl`] netlists with per-cycle
//! toggle extraction and a ground-truth power engine.
//!
//! This crate plays the role of the commercial RTL simulation + signoff
//! power analysis flow in the APOLLO paper (VCS + PowerPro): it evaluates
//! the design cycle by cycle, records which signal bits toggled
//! (the paper's feature vectors `x[i] ∈ {0,1}^M`), and computes per-cycle
//! power labels `y[i]` from back-annotated parasitics following Eq. (2)
//! of the paper — `P_dyn[i] = ½V² Σ C` over toggling nets — plus clock
//! tree, memory-macro, glitch, short-circuit and leakage components.
//!
//! ## Example
//!
//! ```
//! use apollo_rtl::{NetlistBuilder, Unit, CLOCK_ROOT, CapModel};
//! use apollo_sim::{Simulator, PowerConfig};
//!
//! let mut b = NetlistBuilder::new("counter");
//! let count = b.reg(8, 0, CLOCK_ROOT, "count", Unit::Control);
//! let one = b.constant(1, 8);
//! let next = b.add(count, one);
//! b.connect(count, next);
//! let netlist = b.build()?;
//!
//! let cap = CapModel::default().annotate(&netlist);
//! let mut sim = Simulator::new(&netlist, &cap, PowerConfig::default());
//! for _ in 0..16 {
//!     sim.step();
//!     assert!(sim.power().total > 0.0);
//! }
//! # Ok::<(), apollo_rtl::RtlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitslice;
mod engine;
pub mod fault;
mod power;
mod schedule;
mod simulator;
mod toggle;
mod trace;
mod vcd;

pub use bitslice::{transpose64, BitsliceSimulator};
pub use engine::{EngineKind, SimEngine};
pub use fault::{FaultEvent, FaultPlan, FaultPlanError, FaultReport, StuckAtFault};
pub use power::{PowerConfig, PowerSample, WindowPower, WindowTap};
pub use simulator::Simulator;
pub use toggle::ToggleMatrix;
pub use trace::{CaptureSelection, TraceCapture, TraceData};
pub use vcd::VcdWriter;
