//! Packed storage for per-cycle toggle activity.

use apollo_rtl::{Netlist, NodeId};
use std::fmt;

/// Packs per-node feature-toggle words into a flat `M`-bit row laid out
/// by [`Netlist::bit_offset`] (`out` must hold at least `ceil(M / 64)`
/// words; it is zeroed first). Shared by the scalar simulator's
/// `toggle_row` and the differential tests; the bitslice engine
/// produces the same layout via 64×64 block transposes of its toggle
/// planes.
pub(crate) fn pack_row(netlist: &Netlist, toggles: &[u64], out: &mut [u64]) {
    let words = netlist.signal_bits().div_ceil(64);
    assert!(out.len() >= words, "toggle_row buffer too small");
    out[..words].fill(0);
    for (i, node) in netlist.nodes().iter().enumerate() {
        let t = toggles[i];
        if t == 0 {
            continue;
        }
        let off = netlist.bit_offset(NodeId::from_index(i));
        let w = node.width as usize;
        let word = off / 64;
        let shift = off % 64;
        out[word] |= t << shift;
        if shift + w > 64 && shift > 0 {
            out[word + 1] |= t >> (64 - shift);
        }
    }
}

/// A column-major packed binary matrix of toggle activity: `m_bits`
/// columns (one per traced signal bit) by `n_cycles` rows (one per
/// cycle).
///
/// Column-major layout makes the coordinate-descent inner loops of the
/// regression solvers (dot products between a signal's toggle history
/// and the residual) cache-friendly `popcount` scans.
#[derive(Clone, PartialEq, Eq)]
pub struct ToggleMatrix {
    m_bits: usize,
    n_cycles: usize,
    /// Words per column.
    stride: usize,
    data: Vec<u64>,
}

impl ToggleMatrix {
    /// Creates an all-zero matrix for `m_bits` signals over `n_cycles`
    /// cycles.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(m_bits: usize, n_cycles: usize) -> Self {
        assert!(m_bits > 0, "toggle matrix needs at least one signal bit");
        assert!(n_cycles > 0, "toggle matrix needs at least one cycle");
        let stride = n_cycles.div_ceil(64);
        ToggleMatrix {
            m_bits,
            n_cycles,
            stride,
            data: vec![0u64; m_bits * stride],
        }
    }

    /// Number of signal-bit columns.
    pub fn m_bits(&self) -> usize {
        self.m_bits
    }

    /// Number of cycle rows.
    pub fn n_cycles(&self) -> usize {
        self.n_cycles
    }

    /// Words per column.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Sets the toggle bit for signal `bit` at `cycle`.
    ///
    /// # Panics
    /// Panics if out of bounds (debug builds index-check; release builds
    /// panic via slice indexing).
    #[inline]
    pub fn set(&mut self, bit: usize, cycle: usize) {
        debug_assert!(bit < self.m_bits && cycle < self.n_cycles);
        self.data[bit * self.stride + cycle / 64] |= 1u64 << (cycle % 64);
    }

    /// Reads the toggle bit for signal `bit` at `cycle`.
    #[inline]
    pub fn get(&self, bit: usize, cycle: usize) -> bool {
        debug_assert!(bit < self.m_bits && cycle < self.n_cycles);
        (self.data[bit * self.stride + cycle / 64] >> (cycle % 64)) & 1 == 1
    }

    /// The packed words of one signal's toggle history.
    #[inline]
    pub fn column(&self, bit: usize) -> &[u64] {
        &self.data[bit * self.stride..(bit + 1) * self.stride]
    }

    /// Mutable packed words of one signal's toggle history.
    #[inline]
    pub fn column_mut(&mut self, bit: usize) -> &mut [u64] {
        &mut self.data[bit * self.stride..(bit + 1) * self.stride]
    }

    /// Number of cycles in which signal `bit` toggled.
    pub fn popcount(&self, bit: usize) -> usize {
        self.column(bit)
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Toggle rate of signal `bit` over the captured window.
    pub fn density(&self, bit: usize) -> f64 {
        self.popcount(bit) as f64 / self.n_cycles as f64
    }

    /// Mean toggle density over the whole matrix.
    pub fn mean_density(&self) -> f64 {
        let ones: usize = self.data.iter().map(|w| w.count_ones() as usize).sum();
        ones as f64 / (self.m_bits as f64 * self.n_cycles as f64)
    }

    /// Stores a packed `M`-bit toggle row (as produced by
    /// [`crate::Simulator::toggle_row`]) into row `cycle`.
    ///
    /// # Panics
    /// Panics if `row` holds fewer than `ceil(m_bits / 64)` words or
    /// `cycle` is out of range.
    pub fn store_row(&mut self, cycle: usize, row: &[u64]) {
        assert!(cycle < self.n_cycles, "cycle {cycle} out of range");
        let words = self.m_bits.div_ceil(64);
        assert!(row.len() >= words, "row buffer too small");
        let cycle_word = cycle / 64;
        let cycle_bit = (cycle % 64) as u64;
        for (w, &rw) in row.iter().enumerate().take(words) {
            let mut bits = rw;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let col = w * 64 + b;
                if col < self.m_bits {
                    self.data[col * self.stride + cycle_word] |= 1u64 << cycle_bit;
                }
            }
        }
    }

    /// ORs a whole packed cycle-word into one column: bit `c` of
    /// `word` is the toggle at cycle `cycle_word * 64 + c`. Bits past
    /// `n_cycles` are masked off, so block writers (the bitslice
    /// proxy-capture path flushes 64 cycles per column at a time) can
    /// pass a full transpose word at a ragged tail.
    ///
    /// # Panics
    /// Panics if `bit` or `cycle_word` is out of range.
    #[inline]
    pub fn store_column_word(&mut self, bit: usize, cycle_word: usize, word: u64) {
        assert!(bit < self.m_bits, "bit {bit} out of range");
        assert!(
            cycle_word < self.stride,
            "cycle word {cycle_word} out of range"
        );
        let valid = self.n_cycles - cycle_word * 64;
        let mask = if valid >= 64 {
            u64::MAX
        } else {
            (1u64 << valid) - 1
        };
        self.data[bit * self.stride + cycle_word] |= word & mask;
    }

    /// Copies all of `src`'s cycles into this matrix starting at row
    /// `at_cycle` (bitwise OR, so the destination rows are normally
    /// all-zero). Used to stitch per-workload shards captured on
    /// separate simulator instances into one trace.
    ///
    /// # Panics
    /// Panics if the column counts differ or the source does not fit.
    pub fn merge_at(&mut self, src: &ToggleMatrix, at_cycle: usize) {
        assert_eq!(src.m_bits, self.m_bits, "column count mismatch");
        assert!(
            at_cycle + src.n_cycles <= self.n_cycles,
            "merge of {} cycles at {} exceeds {} total",
            src.n_cycles,
            at_cycle,
            self.n_cycles
        );
        let word0 = at_cycle / 64;
        let shift = at_cycle % 64;
        for bit in 0..self.m_bits {
            let scol = &src.data[bit * src.stride..(bit + 1) * src.stride];
            let dcol = &mut self.data[bit * self.stride..(bit + 1) * self.stride];
            if shift == 0 {
                for (w, &sw) in scol.iter().enumerate() {
                    dcol[word0 + w] |= sw;
                }
            } else {
                // Words past `src.n_cycles` are zero, so the spill-over
                // word is only touched when real bits land there.
                for (w, &sw) in scol.iter().enumerate() {
                    dcol[word0 + w] |= sw << shift;
                    let hi = sw >> (64 - shift);
                    if hi != 0 {
                        dcol[word0 + w + 1] |= hi;
                    }
                }
            }
        }
    }

    /// Returns `true` if two columns have identical toggle histories.
    pub fn columns_equal(&self, a: usize, b: usize) -> bool {
        self.column(a) == self.column(b)
    }

    /// A 64-bit hash of a column, for duplicate-group bucketing.
    pub fn column_hash(&self, bit: usize) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for &w in self.column(bit) {
            h ^= w;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Extracts column `bit` as an `f64` vector (0.0 / 1.0 per cycle).
    pub fn column_f64(&self, bit: usize) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.n_cycles);
        for c in 0..self.n_cycles {
            v.push(self.get(bit, c) as u8 as f64);
        }
        v
    }

    /// Mean of column `bit` over a cycle range.
    pub fn column_mean(&self, bit: usize, range: std::ops::Range<usize>) -> f64 {
        let mut ones = 0usize;
        for c in range.clone() {
            ones += self.get(bit, c) as usize;
        }
        ones as f64 / range.len().max(1) as f64
    }

    /// Approximate heap size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len() * 8
    }
}

impl fmt::Debug for ToggleMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ToggleMatrix({} bits x {} cycles, {:.1} MiB, density {:.3})",
            self.m_bits,
            self.n_cycles,
            self.size_bytes() as f64 / (1 << 20) as f64,
            self.mean_density()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut m = ToggleMatrix::new(10, 130);
        m.set(3, 0);
        m.set(3, 64);
        m.set(9, 129);
        assert!(m.get(3, 0));
        assert!(m.get(3, 64));
        assert!(!m.get(3, 1));
        assert!(m.get(9, 129));
        assert_eq!(m.popcount(3), 2);
        assert_eq!(m.popcount(0), 0);
    }

    #[test]
    fn store_row_scatters_bits() {
        let mut m = ToggleMatrix::new(130, 8);
        let mut row = vec![0u64; 3];
        row[0] = 1 | (1 << 63);
        row[1] = 1; // bit 64
        row[2] = 1; // bit 128
        m.store_row(5, &row);
        assert!(m.get(0, 5));
        assert!(m.get(63, 5));
        assert!(m.get(64, 5));
        assert!(m.get(128, 5));
        assert!(!m.get(1, 5));
        assert!(!m.get(0, 4));
    }

    #[test]
    fn density_and_mean() {
        let mut m = ToggleMatrix::new(2, 4);
        m.set(0, 0);
        m.set(0, 1);
        assert!((m.density(0) - 0.5).abs() < 1e-12);
        assert!((m.mean_density() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn hash_distinguishes_columns() {
        let mut m = ToggleMatrix::new(2, 100);
        m.set(0, 10);
        m.set(1, 11);
        assert_ne!(m.column_hash(0), m.column_hash(1));
        assert!(!m.columns_equal(0, 1));
    }

    #[test]
    fn column_f64_matches_get() {
        let mut m = ToggleMatrix::new(1, 5);
        m.set(0, 2);
        assert_eq!(m.column_f64(0), vec![0.0, 0.0, 1.0, 0.0, 0.0]);
        assert!((m.column_mean(0, 0..5) - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_cycles_panics() {
        ToggleMatrix::new(4, 0);
    }

    #[test]
    fn merge_at_matches_direct_recording() {
        // Build a reference 3x150 matrix directly, then the same content
        // as three shards merged at unaligned offsets.
        let pick = |bit: usize, cycle: usize| (cycle * 7 + bit * 13).is_multiple_of(3);
        let mut whole = ToggleMatrix::new(3, 150);
        for bit in 0..3 {
            for c in 0..150 {
                if pick(bit, c) {
                    whole.set(bit, c);
                }
            }
        }
        let mut merged = ToggleMatrix::new(3, 150);
        let bounds = [(0usize, 70usize), (70, 133), (133, 150)];
        for &(lo, hi) in &bounds {
            let mut shard = ToggleMatrix::new(3, hi - lo);
            for bit in 0..3 {
                for c in lo..hi {
                    if pick(bit, c) {
                        shard.set(bit, c - lo);
                    }
                }
            }
            merged.merge_at(&shard, lo);
        }
        assert_eq!(merged, whole);
    }
}
