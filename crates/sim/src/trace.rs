//! Trace capture: drives a simulator and records toggle features and
//! power labels, the raw material for model training (paper §4.2).

use crate::power::PowerSample;
use crate::simulator::Simulator;
use crate::toggle::ToggleMatrix;
use apollo_rtl::{Netlist, NodeId};
use std::ops::Range;

/// Which signal bits a capture records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CaptureSelection {
    /// All `M` signal bits of the design (model training).
    All,
    /// An explicit subset, by flat bit index (proxy-only capture, as in
    /// the paper's emulator-assisted flow where only `Q` proxies are
    /// dumped).
    Bits(Vec<usize>),
}

/// Incremental capture of toggles and power over one or more workload
/// segments.
///
/// Capacity (total cycles) is fixed up front so the packed matrix is
/// allocated once.
#[derive(Debug)]
pub struct TraceCapture {
    /// For subset captures: per recorded column, the (node, bit) source.
    subset: Option<Vec<(u32, u8)>>,
    bit_map: Option<Vec<usize>>,
    matrix: ToggleMatrix,
    power: Vec<PowerSample>,
    cursor: usize,
    row_buf: Vec<u64>,
    segments: Vec<(String, Range<usize>)>,
}

impl TraceCapture {
    /// Prepares to capture all signal bits of `netlist` for up to
    /// `capacity_cycles` cycles.
    pub fn all(netlist: &Netlist, capacity_cycles: usize) -> Self {
        let m = netlist.signal_bits();
        TraceCapture {
            subset: None,
            bit_map: None,
            matrix: ToggleMatrix::new(m, capacity_cycles),
            power: Vec::with_capacity(capacity_cycles),
            cursor: 0,
            row_buf: vec![0u64; m.div_ceil(64)],
            segments: Vec::new(),
        }
    }

    /// Prepares to capture only the given flat signal bits.
    ///
    /// # Panics
    /// Panics if `bits` is empty or any index is out of range.
    pub fn bits(netlist: &Netlist, bits: &[usize], capacity_cycles: usize) -> Self {
        assert!(!bits.is_empty(), "subset capture needs at least one bit");
        let subset = bits
            .iter()
            .map(|&b| {
                let (node, bit) = netlist.bit_owner(b);
                (node.index() as u32, bit)
            })
            .collect();
        TraceCapture {
            subset: Some(subset),
            bit_map: Some(bits.to_vec()),
            matrix: ToggleMatrix::new(bits.len(), capacity_cycles),
            power: Vec::with_capacity(capacity_cycles),
            cursor: 0,
            row_buf: Vec::new(),
            segments: Vec::new(),
        }
    }

    /// Cycles recorded so far.
    pub fn len(&self) -> usize {
        self.cursor
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.cursor == 0
    }

    /// Remaining capacity in cycles.
    pub fn remaining(&self) -> usize {
        self.matrix.n_cycles() - self.cursor
    }

    /// Steps `sim` for `cycles` cycles, recording toggles and power as a
    /// named segment.
    ///
    /// # Panics
    /// Panics if capacity would be exceeded.
    pub fn record(&mut self, sim: &mut Simulator<'_>, cycles: usize, label: &str) {
        assert!(
            cycles <= self.remaining(),
            "capture capacity exceeded: {} cycles requested, {} remaining",
            cycles,
            self.remaining()
        );
        let start = self.cursor;
        for _ in 0..cycles {
            sim.step();
            match &self.subset {
                None => {
                    sim.toggle_row(&mut self.row_buf);
                    self.matrix.store_row(self.cursor, &self.row_buf);
                }
                Some(subset) => {
                    for (col, &(node, bit)) in subset.iter().enumerate() {
                        let t = sim.toggle_word(NodeId::from_index(node as usize));
                        if (t >> bit) & 1 == 1 {
                            self.matrix.set(col, self.cursor);
                        }
                    }
                }
            }
            self.power.push(sim.power());
            self.cursor += 1;
        }
        self.segments.push((label.to_owned(), start..self.cursor));
    }

    /// Finalizes the capture.
    ///
    /// # Panics
    /// Panics if the capture is empty or under-filled (capacity must be
    /// fully used so matrix dimensions match the recorded cycle count;
    /// size the capture exactly).
    pub fn finish(self) -> TraceData {
        assert!(self.cursor > 0, "empty capture");
        assert!(
            self.cursor == self.matrix.n_cycles(),
            "capture under-filled: {} of {} cycles",
            self.cursor,
            self.matrix.n_cycles()
        );
        TraceData {
            toggles: self.matrix,
            power: self.power,
            bit_map: self.bit_map,
            segments: self.segments,
        }
    }
}

/// A finished trace: per-cycle toggle features and power labels.
#[derive(Clone, Debug)]
pub struct TraceData {
    /// Toggle matrix: one column per captured signal bit, one row per
    /// cycle.
    pub toggles: ToggleMatrix,
    /// Per-cycle ground-truth power breakdown.
    pub power: Vec<PowerSample>,
    /// For subset captures, the flat bit index each column came from.
    pub bit_map: Option<Vec<usize>>,
    /// Named workload segments and their cycle ranges.
    pub segments: Vec<(String, Range<usize>)>,
}

impl TraceData {
    /// Number of recorded cycles.
    pub fn n_cycles(&self) -> usize {
        self.power.len()
    }

    /// Per-cycle total-power labels (the paper's `y`).
    pub fn labels(&self) -> Vec<f64> {
        self.power.iter().map(|p| p.total).collect()
    }

    /// The cycle range of a named segment, if present.
    pub fn segment(&self, label: &str) -> Option<Range<usize>> {
        self.segments
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, r)| r.clone())
    }

    /// Mean total power over all cycles.
    pub fn mean_power(&self) -> f64 {
        if self.power.is_empty() {
            return 0.0;
        }
        self.power.iter().map(|p| p.total).sum::<f64>() / self.power.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PowerConfig;
    use apollo_rtl::{CapModel, NetlistBuilder, Unit, CLOCK_ROOT};

    fn counter_netlist() -> Netlist {
        let mut b = NetlistBuilder::new("c");
        let r = b.reg(8, 0, CLOCK_ROOT, "count", Unit::Control);
        let one = b.constant(1, 8);
        let n = b.add(r, one);
        b.name(n, "next", Unit::Control);
        b.connect(r, n);
        b.build().unwrap()
    }

    #[test]
    fn full_capture_records_counter_toggles() {
        let nl = counter_netlist();
        let cap = CapModel::default().annotate(&nl);
        let mut sim = Simulator::new(&nl, &cap, PowerConfig::default());
        let mut tc = TraceCapture::all(&nl, 8);
        tc.record(&mut sim, 8, "count");
        let data = tc.finish();
        assert_eq!(data.n_cycles(), 8);
        // Counter bit 0 toggles every cycle: column at the reg's offset.
        let reg_bit0 = 0; // reg is node 0, offset 0
        for c in 0..8 {
            assert!(data.toggles.get(reg_bit0, c), "cycle {c}");
        }
        assert!(data.mean_power() > 0.0);
        assert_eq!(data.segment("count"), Some(0..8));
    }

    #[test]
    fn subset_capture_matches_full() {
        let nl = counter_netlist();
        let cap = CapModel::default().annotate(&nl);
        let cfg = PowerConfig::default();

        let mut sim = Simulator::new(&nl, &cap, cfg.clone());
        let mut full = TraceCapture::all(&nl, 16);
        full.record(&mut sim, 16, "w");
        let full = full.finish();

        let bits: Vec<usize> = vec![0, 1, 2, 9];
        let mut sim2 = Simulator::new(&nl, &cap, cfg);
        let mut sub = TraceCapture::bits(&nl, &bits, 16);
        sub.record(&mut sim2, 16, "w");
        let sub = sub.finish();

        for (col, &bit) in bits.iter().enumerate() {
            for c in 0..16 {
                assert_eq!(sub.toggles.get(col, c), full.toggles.get(bit, c));
            }
        }
        assert_eq!(sub.labels(), full.labels());
    }

    #[test]
    #[should_panic(expected = "capacity exceeded")]
    fn over_capacity_panics() {
        let nl = counter_netlist();
        let cap = CapModel::default().annotate(&nl);
        let mut sim = Simulator::new(&nl, &cap, PowerConfig::default());
        let mut tc = TraceCapture::all(&nl, 4);
        tc.record(&mut sim, 5, "too long");
    }
}
