//! # apollo-fleet
//!
//! Sharded fleet serving for APOLLO runtime power introspection: the
//! paper's deployment story — power introspection across high-volume
//! silicon with thousands of monitored cores — needs more than the
//! single-pipeline TCP endpoint `apollo-introspect` provides. This
//! crate multiplexes many concurrent monitor pipelines (mixed presets
//! and window configurations) behind one endpoint, built so that at
//! fleet scale *partial failure is the steady state*: one wedged
//! core, slow subscriber, or malformed client can never degrade its
//! neighbors.
//!
//! * [`core`] — one monitored core as a resumable state machine:
//!   [`core::CoreMonitor`] re-expresses the monitor loop as
//!   `step_window`, producing per-window rows a shard batches;
//! * [`batch`] — columnar [`batch::WindowBatch`] export (one framed
//!   record per window across all cores on a shard, replacing
//!   line-at-a-time JSONL) and the bounded [`batch::BatchHub`] fan-out
//!   with queue-depth watermarks for admission control;
//! * [`shard`] — the sharded executor: N shard threads each own a
//!   disjoint set of cores behind a `catch_unwind` bulkhead with a
//!   per-shard circuit breaker reusing the supervisor's deterministic
//!   backoff; a panicking shard restarts (replaying completed windows
//!   so its stream stays byte-identical) or parks as `Degraded`
//!   without stalling siblings;
//! * [`aggregate`] — the degrade-don't-die aggregation tier: fleet
//!   p50/p99/mean power, per-unit attribution rollups and drift-alarm
//!   fan-in, published with an explicit `cores_reporting /
//!   cores_total` coverage field instead of blocking on missing or
//!   Degraded cores;
//! * [`server`] — per-core request routing (`/cores/<id>/metrics`,
//!   `/cores/<id>/events`, `/fleet/metrics`, `/fleet/events`) with
//!   admission control: connection caps, deadline-aware timeouts, and
//!   `503` + `Retry-After` load shedding on queue-depth watermarks.
//!
//! # Determinism contract
//!
//! Everything a shard publishes is a pure function of its core specs
//! and the seeded kill plan: batch streams and the final aggregation
//! report are byte-identical across reruns (modulo `ts_ns` fields),
//! and a shard killed and recovered produces the same stream as one
//! never killed. The chaos differential tests prove the stronger
//! bulkhead property: surviving shards' streams and the final
//! aggregate are byte-identical to a run where the killed cores were
//! simply absent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod batch;
pub mod core;
pub mod server;
pub mod shard;

pub use aggregate::{FleetAggregate, FleetAggregator, AGGREGATE_VERSION};
pub use batch::{BatchHub, BatchPoll, BatchSubscriber, WindowBatch, BATCH_VERSION};
pub use core::{CoreMonitor, CoreSpec, CoreWindow};
pub use server::{serve_fleet, FleetServerHandle, FleetServerOptions};
pub use shard::{
    run_fleet, shard_cores, FleetConfig, FleetReport, ShardKill, ShardOutcome, ShardRuntime,
};
