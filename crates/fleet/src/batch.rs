//! Columnar window-batch export and the bounded batch fan-out hub.
//!
//! The introspect endpoint streams one JSONL event per core per
//! window — at fleet scale that is hundreds of lines (and hundreds of
//! small writes) per window. [`WindowBatch`] replaces it with one
//! framed columnar record per shard per window round: parallel
//! column vectors across all cores on the shard, with per-unit
//! attribution as a row-major `cores × unit_labels` matrix over the
//! sorted label union. The record family follows the repo-wide
//! framing contract ([`apollo_telemetry::framing`]): schema-versioned
//! `v`, per-shard dense `seq`, and wall-clock data confined to
//! `ts_ns` ([`WindowBatch::strip_timing`] zeroes it for differential
//! byte comparisons).
//!
//! [`BatchHub`] fans batches out to streaming subscribers behind
//! bounded drop-oldest queues, mirroring the introspect hub's
//! backpressure contract: a slow subscriber loses its *oldest*
//! batches (counted, never blocking the shard), and the hub's
//! [`BatchHub::max_depth`] is the admission-control watermark the
//! fleet server sheds on.

use crate::core::CoreWindow;
use apollo_telemetry::framing::{self, Framed};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Schema version of [`WindowBatch`] records.
pub const BATCH_VERSION: u32 = 1;

/// One framed columnar batch: every core on one shard, one window
/// round. All column vectors are indexed by core position.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WindowBatch {
    /// Schema version ([`BATCH_VERSION`]).
    pub v: u32,
    /// Per-shard dense sequence number (restarts replay suppressed, so
    /// delivered streams stay dense across shard recoveries).
    pub seq: u64,
    /// Wall-clock stamp; the only field allowed to differ between
    /// otherwise identical runs.
    pub ts_ns: u64,
    /// Owning shard index.
    pub shard: u64,
    /// Shard-local window round (every core's `window` equals this
    /// once per round, since cores advance in lockstep rounds).
    pub window: u64,
    /// Core ids, in the shard's stable core order.
    pub cores: Vec<String>,
    /// De-scaled OPM estimate per core.
    pub est_power: Vec<f64>,
    /// Ground-truth mean power per core.
    pub true_power: Vec<f64>,
    /// Raw integer window accumulator per core.
    pub raw: Vec<u64>,
    /// Hardware window output per core.
    pub out: Vec<u64>,
    /// Cumulative drift alarms per core.
    pub alarms: Vec<u64>,
    /// Cumulative estimated energy per core.
    pub energy: Vec<f64>,
    /// Sorted union of the cores' attribution class labels.
    pub unit_labels: Vec<String>,
    /// Row-major `cores × unit_labels` raw attribution matrix; a core
    /// without a given class holds 0 there, so every row still sums
    /// bit-exactly to the core's `raw` entry.
    pub unit_raw: Vec<u64>,
}

impl Framed for WindowBatch {
    const VERSION: u32 = BATCH_VERSION;

    fn version(&self) -> u32 {
        self.v
    }

    fn seq(&self) -> u64 {
        self.seq
    }

    fn check_payload(&self) -> Result<(), String> {
        let n = self.cores.len();
        let cols = [
            ("est_power", self.est_power.len()),
            ("true_power", self.true_power.len()),
            ("raw", self.raw.len()),
            ("out", self.out.len()),
            ("alarms", self.alarms.len()),
            ("energy", self.energy.len()),
        ];
        for (name, len) in cols {
            if len != n {
                return Err(format!("column {name} has {len} rows for {n} cores"));
            }
        }
        if self.unit_raw.len() != n * self.unit_labels.len() {
            return Err(format!(
                "unit_raw has {} cells for {n} cores x {} labels",
                self.unit_raw.len(),
                self.unit_labels.len()
            ));
        }
        if self.unit_labels.windows(2).any(|w| w[0] >= w[1]) {
            return Err("unit_labels must be strictly sorted".into());
        }
        for (name, col) in [("est_power", &self.est_power), ("true_power", &self.true_power), ("energy", &self.energy)] {
            if col.iter().any(|x| !x.is_finite()) {
                return Err(format!("non-finite value in {name}"));
            }
        }
        // The windowed integer invariant, per row: Σ unit_raw == raw.
        let l = self.unit_labels.len();
        for (i, &r) in self.raw.iter().enumerate() {
            let row: u64 = self.unit_raw[i * l..(i + 1) * l].iter().sum();
            if row != r {
                return Err(format!(
                    "core {} unit_raw sums to {row}, raw is {r}",
                    self.cores[i]
                ));
            }
        }
        Ok(())
    }
}

impl WindowBatch {
    /// Builds the batch for one shard round from per-core rows
    /// (`(core id, class labels, window)`), folding each core's raw
    /// attribution into the sorted label union.
    ///
    /// # Panics
    /// Panics if a row's labels and `unit_raw` lengths disagree.
    #[must_use]
    pub fn from_rows(
        shard: u64,
        seq: u64,
        window: u64,
        rows: &[(String, Vec<String>, CoreWindow)],
    ) -> WindowBatch {
        let mut unit_labels: Vec<String> = rows
            .iter()
            .flat_map(|(_, labels, _)| labels.iter().cloned())
            .collect();
        unit_labels.sort();
        unit_labels.dedup();
        let l = unit_labels.len();
        let mut unit_raw = vec![0u64; rows.len() * l];
        for (i, (_, labels, w)) in rows.iter().enumerate() {
            assert_eq!(labels.len(), w.unit_raw.len(), "labels and unit_raw align");
            for (label, &r) in labels.iter().zip(&w.unit_raw) {
                let j = unit_labels
                    .binary_search(label)
                    .expect("label is in the union");
                unit_raw[i * l + j] += r;
            }
        }
        WindowBatch {
            v: BATCH_VERSION,
            seq,
            ts_ns: 0,
            shard,
            window,
            cores: rows.iter().map(|(id, _, _)| id.clone()).collect(),
            est_power: rows.iter().map(|(_, _, w)| w.est_power).collect(),
            true_power: rows.iter().map(|(_, _, w)| w.true_power).collect(),
            raw: rows.iter().map(|(_, _, w)| w.raw).collect(),
            out: rows.iter().map(|(_, _, w)| w.out).collect(),
            alarms: rows.iter().map(|(_, _, w)| w.alarms).collect(),
            energy: rows.iter().map(|(_, _, w)| w.energy).collect(),
            unit_labels,
            unit_raw,
        }
    }

    /// A copy with `ts_ns` zeroed, for differential byte comparisons
    /// (the repo-wide determinism contract confines wall clock to
    /// `ts_ns` fields).
    #[must_use]
    pub fn strip_timing(&self) -> WindowBatch {
        WindowBatch {
            ts_ns: 0,
            ..self.clone()
        }
    }

    /// Projects one core's row into a single-core batch (the
    /// `/cores/<id>/events` wire shape). Returns `None` for an unknown
    /// core id.
    #[must_use]
    pub fn project_core(&self, core: &str, seq: u64) -> Option<WindowBatch> {
        let i = self.cores.iter().position(|c| c == core)?;
        let l = self.unit_labels.len();
        Some(WindowBatch {
            v: BATCH_VERSION,
            seq,
            ts_ns: self.ts_ns,
            shard: self.shard,
            window: self.window,
            cores: vec![self.cores[i].clone()],
            est_power: vec![self.est_power[i]],
            true_power: vec![self.true_power[i]],
            raw: vec![self.raw[i]],
            out: vec![self.out[i]],
            alarms: vec![self.alarms[i]],
            energy: vec![self.energy[i]],
            unit_labels: self.unit_labels.clone(),
            unit_raw: self.unit_raw[i * l..(i + 1) * l].to_vec(),
        })
    }

    /// Serializes to one JSONL line (no trailing newline).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        framing::to_jsonl(self)
    }
}

/// Poll outcome for a [`BatchSubscriber`].
pub enum BatchPoll {
    /// A delivered batch.
    Batch(Arc<WindowBatch>),
    /// Nothing arrived within the timeout.
    Timeout,
    /// The hub closed and the queue is drained.
    Closed,
}

struct SubState {
    id: u64,
    queue: VecDeque<Arc<WindowBatch>>,
    dropped: u64,
    open: bool,
}

struct HubState {
    subs: Vec<SubState>,
    next_id: u64,
    closed: bool,
}

/// Bounded drop-oldest fan-out of [`WindowBatch`]es, one per shard.
///
/// Publishing never blocks: a subscriber whose queue is full loses its
/// oldest batch (counted in `fleet.hub.dropped`). The deepest queue
/// ([`BatchHub::max_depth`]) is the serving layer's admission-control
/// watermark.
pub struct BatchHub {
    state: Mutex<HubState>,
    cond: Condvar,
    cap: usize,
}

fn hub_lock(hub: &BatchHub) -> MutexGuard<'_, HubState> {
    // Poison-proof: a panicking subscriber thread must not cascade.
    hub.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl BatchHub {
    /// A hub whose subscribers each buffer at most `cap` batches.
    #[must_use]
    pub fn new(cap: usize) -> Arc<BatchHub> {
        Arc::new(BatchHub {
            state: Mutex::new(HubState {
                subs: Vec::new(),
                next_id: 0,
                closed: false,
            }),
            cond: Condvar::new(),
            cap: cap.max(1),
        })
    }

    /// Publishes one batch to every open subscriber (drop-oldest on a
    /// full queue; never blocks the shard).
    pub fn publish(&self, batch: WindowBatch) {
        let batch = Arc::new(batch);
        let mut st = hub_lock(self);
        if st.closed {
            return;
        }
        for sub in st.subs.iter_mut().filter(|s| s.open) {
            if sub.queue.len() >= self.cap {
                sub.queue.pop_front();
                sub.dropped += 1;
                apollo_telemetry::counter("fleet.hub.dropped").inc();
            }
            sub.queue.push_back(Arc::clone(&batch));
        }
        drop(st);
        self.cond.notify_all();
    }

    /// Registers a new subscriber.
    pub fn subscribe(self: &Arc<Self>) -> BatchSubscriber {
        let mut st = hub_lock(self);
        let id = st.next_id;
        st.next_id += 1;
        st.subs.push(SubState {
            id,
            queue: VecDeque::new(),
            dropped: 0,
            open: true,
        });
        drop(st);
        BatchSubscriber {
            hub: Arc::clone(self),
            id,
        }
    }

    /// Closes the hub: subscribers drain their queues and then see
    /// [`BatchPoll::Closed`].
    pub fn close(&self) {
        hub_lock(self).closed = true;
        self.cond.notify_all();
    }

    /// Whether [`BatchHub::close`] has been called.
    #[must_use]
    pub fn closed(&self) -> bool {
        hub_lock(self).closed
    }

    /// Deepest subscriber queue — the admission-control watermark
    /// input (0 with no subscribers).
    #[must_use]
    pub fn max_depth(&self) -> usize {
        hub_lock(self)
            .subs
            .iter()
            .filter(|s| s.open)
            .map(|s| s.queue.len())
            .max()
            .unwrap_or(0)
    }

    /// Open subscribers.
    #[must_use]
    pub fn active(&self) -> usize {
        hub_lock(self).subs.iter().filter(|s| s.open).count()
    }

    /// Total batches dropped across all (live) subscribers.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        hub_lock(self).subs.iter().map(|s| s.dropped).sum()
    }
}

/// One streaming consumer of a [`BatchHub`].
pub struct BatchSubscriber {
    hub: Arc<BatchHub>,
    id: u64,
}

impl BatchSubscriber {
    /// Waits up to `timeout` for the next batch.
    pub fn poll(&self, timeout: Duration) -> BatchPoll {
        let mut st = hub_lock(&self.hub);
        loop {
            let closed = st.closed;
            let Some(sub) = st.subs.iter_mut().find(|s| s.id == self.id) else {
                return BatchPoll::Closed;
            };
            if let Some(batch) = sub.queue.pop_front() {
                return BatchPoll::Batch(batch);
            }
            if closed {
                return BatchPoll::Closed;
            }
            let (next, wait) = self
                .hub
                .cond
                .wait_timeout(st, timeout)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st = next;
            if wait.timed_out() {
                // One more non-blocking look, then report the timeout.
                let Some(sub) = st.subs.iter_mut().find(|s| s.id == self.id) else {
                    return BatchPoll::Closed;
                };
                if let Some(batch) = sub.queue.pop_front() {
                    return BatchPoll::Batch(batch);
                }
                return if st.closed {
                    BatchPoll::Closed
                } else {
                    BatchPoll::Timeout
                };
            }
        }
    }
}

impl Drop for BatchSubscriber {
    fn drop(&mut self) {
        let mut st = hub_lock(&self.hub);
        st.subs.retain(|s| s.id != self.id);
        drop(st);
        self.hub.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(raw: &[u64]) -> CoreWindow {
        CoreWindow {
            window: 0,
            est_power: 1.0,
            true_power: 1.5,
            raw: raw.iter().sum(),
            out: raw.iter().sum::<u64>() >> 2,
            alarms: 0,
            energy: 4.0,
            unit_raw: raw.to_vec(),
        }
    }

    #[test]
    fn batch_roundtrips_and_validates() {
        let rows = vec![
            (
                "c0".to_owned(),
                vec!["alu".to_owned(), "fetch".to_owned()],
                window(&[6, 2]),
            ),
            (
                "c1".to_owned(),
                vec!["fetch".to_owned(), "lsu".to_owned()],
                window(&[3, 5]),
            ),
        ];
        let b = WindowBatch::from_rows(2, 7, 3, &rows);
        assert_eq!(b.unit_labels, vec!["alu", "fetch", "lsu"]);
        // c0: alu=6 fetch=2 lsu=0; c1: alu=0 fetch=3 lsu=5.
        assert_eq!(b.unit_raw, vec![6, 2, 0, 0, 3, 5]);
        let line = b.to_jsonl();
        let back: WindowBatch = framing::validate_framed(&line).unwrap();
        assert_eq!(back, b);
        assert_eq!(b.strip_timing(), b, "from_rows leaves ts_ns at 0");
    }

    #[test]
    fn payload_check_rejects_broken_invariant() {
        let rows = vec![(
            "c0".to_owned(),
            vec!["alu".to_owned()],
            window(&[4]),
        )];
        let mut b = WindowBatch::from_rows(0, 0, 0, &rows);
        b.unit_raw[0] = 5;
        let err = framing::validate_framed::<WindowBatch>(&b.to_jsonl()).unwrap_err();
        assert!(err.contains("unit_raw sums"), "{err}");
    }

    #[test]
    fn project_core_keeps_row_invariant() {
        let rows = vec![
            ("a".to_owned(), vec!["alu".to_owned()], window(&[4])),
            ("b".to_owned(), vec!["alu".to_owned()], window(&[9])),
        ];
        let b = WindowBatch::from_rows(0, 0, 5, &rows);
        let p = b.project_core("b", 11).unwrap();
        assert_eq!(p.cores, vec!["b"]);
        assert_eq!(p.seq, 11);
        assert_eq!(p.raw, vec![9]);
        p.check_payload().unwrap();
        assert!(b.project_core("nope", 0).is_none());
    }

    #[test]
    fn hub_drops_oldest_and_reports_watermark() {
        let hub = BatchHub::new(2);
        let sub = hub.subscribe();
        for seq in 0..4u64 {
            let rows = vec![("c".to_owned(), vec!["alu".to_owned()], window(&[1]))];
            hub.publish(WindowBatch::from_rows(0, seq, seq, &rows));
        }
        assert_eq!(hub.max_depth(), 2);
        assert_eq!(hub.dropped(), 2);
        // Oldest two were dropped: delivery starts at seq 2.
        let BatchPoll::Batch(b) = sub.poll(Duration::from_millis(100)) else {
            panic!("expected batch");
        };
        assert_eq!(b.seq, 2);
        hub.close();
        let BatchPoll::Batch(b) = sub.poll(Duration::from_millis(100)) else {
            panic!("expected drain after close");
        };
        assert_eq!(b.seq, 3);
        assert!(matches!(
            sub.poll(Duration::from_millis(10)),
            BatchPoll::Closed
        ));
    }

    #[test]
    fn dropped_subscriber_leaves_no_state() {
        let hub = BatchHub::new(4);
        let sub = hub.subscribe();
        assert_eq!(hub.active(), 1);
        drop(sub);
        assert_eq!(hub.active(), 0);
        assert_eq!(hub.max_depth(), 0);
    }
}
