//! The sharded executor: bulkhead-isolated shard threads with
//! deterministic circuit breakers.
//!
//! Each shard thread owns a disjoint set of cores and advances them
//! in lockstep window rounds, publishing one columnar
//! [`WindowBatch`] per round to its [`BatchHub`] and folding it into
//! the shared [`FleetAggregator`]. The whole attempt runs behind a
//! `catch_unwind` bulkhead: a panicking core takes down *its shard's
//! attempt*, never a sibling shard, the accept loop, or the
//! aggregator.
//!
//! Recovery reuses the supervisor's deterministic circuit breaker
//! ([`BackoffPolicy`], [`Decision`]): a failed attempt backs off
//! `delay_ms(failures)` (pure, jitter-free) and restarts; after
//! `give_up` consecutive failures the shard parks `Degraded`, its
//! cores are removed from the aggregate (coverage drops — nothing
//! blocks), and siblings keep serving. A restarting shard *replays*
//! its already-published rounds with publication suppressed — the
//! cores are deterministic state machines, so the recovered stream is
//! byte-identical to one that never failed, and the per-shard batch
//! `seq` stays dense across restarts.

use crate::aggregate::{FleetAggregate, FleetAggregator};
use crate::batch::{BatchHub, WindowBatch};
use crate::core::{CoreMonitor, CoreSpec, CoreWindow};
use apollo_core::{ApolloModel, DesignContext};
use apollo_introspect::sync::plock;
use apollo_introspect::{panic_text, BackoffPolicy, Decision, HealthRegistry, PipelineState};
use apollo_telemetry::FieldValue;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A seeded shard-kill instruction: panic shard `shard` immediately
/// after it publishes window round `window` of attempt `attempt`.
/// Purely deterministic — the chaos differentials replay plans and
/// compare transcripts byte for byte.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ShardKill {
    /// Target shard index.
    pub shard: usize,
    /// Window round to die after publishing.
    pub window: u64,
    /// Attempt the kill applies to (0-based); a kill listed only for
    /// attempt 0 lets the restarted attempt run through.
    pub attempt: u32,
}

/// Fleet execution configuration.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Window rounds per shard; 0 = run until the stop flag rises.
    pub windows: u64,
    /// Circuit-breaker backoff shared by every shard.
    pub backoff: BackoffPolicy,
    /// Seeded kill plan (empty in production).
    pub kills: Vec<ShardKill>,
    /// Capture each shard's published batch transcript (stripped of
    /// `ts_ns`) in its [`ShardOutcome`] — differential tests and the
    /// chaos bench turn this on; unbounded serving runs leave it off.
    pub collect_batches: bool,
    /// Target publication cadence: one round per `pace_ms`, anchored
    /// at shard start (a *schedule*, not a per-round sleep). Bounds a
    /// fleet's CPU draw on small machines, and a restarted shard
    /// free-runs through its backlog until it is back on schedule, so
    /// fleet coverage recovers after a kill instead of lagging
    /// forever. 0 = free-running.
    pub pace_ms: u64,
    /// Per-subscriber batch queue bound in each shard hub.
    pub hub_cap: usize,
    /// Aggregation reporting tolerance, in windows (see
    /// [`FleetAggregator::new`]).
    pub lag_windows: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            windows: 16,
            backoff: BackoffPolicy::default(),
            kills: Vec::new(),
            collect_batches: false,
            pace_ms: 0,
            hub_cap: 256,
            lag_windows: 2,
        }
    }
}

/// Shared fleet state wiring the executor to the serving layer: one
/// [`BatchHub`] per shard, the core→shard routing table, the health
/// registry behind `/healthz`, and the aggregation tier.
pub struct ShardRuntime {
    /// One hub per shard, indexed by shard.
    pub hubs: Vec<Arc<BatchHub>>,
    /// Health registry rows (`shard0`, `shard1`, …).
    pub health: Arc<HealthRegistry>,
    /// The shared aggregation tier (lock with [`ShardRuntime::snapshot`]
    /// or [`plock`]).
    pub aggregator: Mutex<FleetAggregator>,
    /// Core id → owning shard index.
    pub core_shard: BTreeMap<String, usize>,
    /// Cores configured across all shards.
    pub cores_total: usize,
}

impl ShardRuntime {
    /// Builds the runtime for an explicit shard layout.
    #[must_use]
    pub fn new(shards: &[Vec<CoreSpec>], cfg: &FleetConfig) -> Arc<ShardRuntime> {
        let cores_total = shards.iter().map(Vec::len).sum();
        let mut core_shard = BTreeMap::new();
        for (k, shard) in shards.iter().enumerate() {
            for spec in shard {
                core_shard.insert(spec.id.clone(), k);
            }
        }
        Arc::new(ShardRuntime {
            hubs: (0..shards.len()).map(|_| BatchHub::new(cfg.hub_cap)).collect(),
            health: Arc::new(HealthRegistry::new()),
            aggregator: Mutex::new(FleetAggregator::new(cores_total, cfg.lag_windows)),
            core_shard,
            cores_total,
        })
    }

    /// Snapshots the fleet aggregate (locking the aggregation tier).
    pub fn snapshot(&self, ts_ns: u64) -> FleetAggregate {
        plock(&self.aggregator).snapshot(ts_ns)
    }

    /// Closes every shard hub (ends all batch streams).
    pub fn close(&self) {
        for hub in &self.hubs {
            hub.close();
        }
    }
}

/// Terminal state of one shard.
#[derive(Clone, Debug)]
pub struct ShardOutcome {
    /// Shard index.
    pub shard: usize,
    /// `Completed` or `Degraded`.
    pub state: PipelineState,
    /// Attempts used (1 + restarts).
    pub attempts: u32,
    /// Window rounds published.
    pub windows: u64,
    /// The full decision log, in program order.
    pub decisions: Vec<Decision>,
    /// Published batch transcript (`ts_ns`-stripped JSONL), when
    /// [`FleetConfig::collect_batches`] was set.
    pub batches: Vec<String>,
}

/// Final state of a fleet run.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-shard outcomes, in shard order.
    pub outcomes: Vec<ShardOutcome>,
    /// The final fleet aggregate.
    pub aggregate: FleetAggregate,
    /// Cores configured across all shards.
    pub cores_total: usize,
}

impl FleetReport {
    /// Shards parked `Degraded`.
    #[must_use]
    pub fn degraded(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.state == PipelineState::Degraded)
            .count()
    }

    /// The canonical decision transcript: JSON of
    /// `[(shard-label, decisions)]`, byte-comparable across reruns.
    #[must_use]
    pub fn decision_transcript(&self) -> String {
        let rows: Vec<(String, &Vec<Decision>)> = self
            .outcomes
            .iter()
            .map(|o| (format!("shard{}", o.shard), &o.decisions))
            .collect();
        serde_json::to_string(&rows).expect("decision log serializes")
    }
}

/// Round-robin assignment of cores to `n_shards` shards (core `i` →
/// shard `i % n_shards`). Pure, so routing tables are reproducible.
#[must_use]
pub fn shard_cores(specs: Vec<CoreSpec>, n_shards: usize) -> Vec<Vec<CoreSpec>> {
    let n = n_shards.max(1);
    let mut shards: Vec<Vec<CoreSpec>> = (0..n).map(|_| Vec::new()).collect();
    for (i, spec) in specs.into_iter().enumerate() {
        shards[i % n].push(spec);
    }
    shards
}

fn now_ns() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

/// Stop-sliced sleep: wakes every 20 ms to poll the stop flag, so a
/// `/shutdown` never waits out a long backoff.
fn sleep_sliced(ms: u64, stop: &AtomicBool) {
    let mut left = ms;
    while left > 0 && !stop.load(Ordering::Relaxed) {
        let step = left.min(20);
        std::thread::sleep(Duration::from_millis(step));
        left -= step;
    }
}

/// Runs the fleet to completion: one thread per shard, joined in
/// shard order. Returns the per-shard outcomes plus the final
/// aggregate snapshot.
pub fn run_fleet(
    ctx: &Arc<DesignContext>,
    model: &Arc<ApolloModel>,
    shards: &[Vec<CoreSpec>],
    cfg: &FleetConfig,
    runtime: &Arc<ShardRuntime>,
    stop: &Arc<AtomicBool>,
) -> FleetReport {
    let handles: Vec<_> = shards
        .iter()
        .enumerate()
        .map(|(k, specs)| {
            let ctx = Arc::clone(ctx);
            let model = Arc::clone(model);
            let specs = specs.clone();
            let cfg = cfg.clone();
            let runtime = Arc::clone(runtime);
            let stop = Arc::clone(stop);
            std::thread::spawn(move || run_shard(&ctx, &model, k, &specs, &cfg, &runtime, &stop))
        })
        .collect();
    let outcomes: Vec<ShardOutcome> = handles
        .into_iter()
        .map(|h| h.join().expect("shard threads never propagate panics"))
        .collect();
    let aggregate = runtime.snapshot(0);
    FleetReport {
        outcomes,
        aggregate,
        cores_total: runtime.cores_total,
    }
}

#[allow(clippy::too_many_lines)]
fn run_shard(
    ctx: &DesignContext,
    model: &ApolloModel,
    k: usize,
    specs: &[CoreSpec],
    cfg: &FleetConfig,
    runtime: &ShardRuntime,
    stop: &AtomicBool,
) -> ShardOutcome {
    let shard_id = format!("shard{k}");
    let hub = &runtime.hubs[k];
    // Cadence anchor: all shard threads start together, so pacing
    // against this instant keeps sibling shards aligned and lets a
    // restarted shard catch back up to the fleet schedule.
    let started = std::time::Instant::now();
    let mut decisions: Vec<Decision> = Vec::new();
    let mut batches: Vec<String> = Vec::new();
    // Durable across attempts: the dense batch seq and the published
    // high-water mark (replayed rounds below it are suppressed).
    let mut seq = 0u64;
    let mut windows_done = 0u64;
    let mut failures = 0u32;
    let mut attempt = 0u32;
    loop {
        decisions.push(Decision::Start {
            attempt,
            resume: windows_done > 0,
        });
        runtime
            .health
            .report_state(&shard_id, "starting", u64::from(attempt), 0);
        let result = catch_unwind(AssertUnwindSafe(|| -> Result<(), String> {
            let mut monitors: Vec<CoreMonitor<'_>> = specs
                .iter()
                .map(|s| CoreMonitor::new(ctx, model, s).map_err(|e| e.to_string()))
                .collect::<Result<_, String>>()?;
            let labels: Vec<Vec<String>> =
                monitors.iter().map(|m| m.unit_labels().to_vec()).collect();
            let mut round = 0u64;
            while cfg.windows == 0 || round < cfg.windows {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let rows: Vec<(String, Vec<String>, CoreWindow)> = monitors
                    .iter_mut()
                    .enumerate()
                    .map(|(i, m)| (specs[i].id.clone(), labels[i].clone(), m.step_window()))
                    .collect();
                if round >= windows_done {
                    let alarms: u64 = rows.iter().map(|(_, _, w)| w.alarms).sum();
                    let mut batch = WindowBatch::from_rows(k as u64, seq, round, &rows);
                    batch.ts_ns = now_ns();
                    plock(&runtime.aggregator).ingest(&batch);
                    if cfg.collect_batches {
                        batches.push(batch.strip_timing().to_jsonl());
                    }
                    hub.publish(batch);
                    seq += 1;
                    windows_done = round + 1;
                    apollo_telemetry::counter("fleet.windows").inc();
                    runtime
                        .health
                        .report_window(&shard_id, windows_done, 0, alarms, false, 0);
                    if cfg
                        .kills
                        .iter()
                        .any(|kill| kill.shard == k && kill.window == round && kill.attempt == attempt)
                    {
                        panic!("chaos: injected shard kill after window {round}");
                    }
                    if cfg.pace_ms > 0 {
                        let target_ms = windows_done.saturating_mul(cfg.pace_ms);
                        let elapsed_ms = started.elapsed().as_millis() as u64;
                        if target_ms > elapsed_ms {
                            sleep_sliced(target_ms - elapsed_ms, stop);
                        }
                    }
                }
                round += 1;
            }
            Ok(())
        }));
        let reason = match result {
            Ok(Ok(())) => {
                decisions.push(Decision::Completed {
                    attempt,
                    windows: windows_done,
                });
                runtime
                    .health
                    .report_state(&shard_id, "completed", u64::from(attempt), 0);
                return ShardOutcome {
                    shard: k,
                    state: PipelineState::Completed,
                    attempts: attempt + 1,
                    windows: windows_done,
                    decisions,
                    batches,
                };
            }
            Ok(Err(spec_err)) => spec_err,
            Err(payload) => panic_text(payload.as_ref()).to_owned(),
        };
        failures += 1;
        decisions.push(Decision::Failed {
            attempt,
            reason: reason.clone(),
        });
        apollo_telemetry::counter("fleet.shard.failures").inc();
        if failures >= cfg.backoff.give_up {
            decisions.push(Decision::Degraded { failures });
            runtime
                .health
                .report_state(&shard_id, "degraded", u64::from(attempt), 0);
            plock(&runtime.aggregator).remove_shard(k as u64);
            apollo_telemetry::gauge("fleet.shards.degraded")
                .set(plock(&runtime.aggregator).shards_degraded() as f64);
            apollo_telemetry::emit_event(
                "fleet.shard.degraded",
                &[
                    ("shard", FieldValue::from(k)),
                    ("failures", FieldValue::from(u64::from(failures))),
                ],
            );
            return ShardOutcome {
                shard: k,
                state: PipelineState::Degraded,
                attempts: attempt + 1,
                windows: windows_done,
                decisions,
                batches,
            };
        }
        let delay_ms = cfg.backoff.delay_ms(failures);
        decisions.push(Decision::Backoff { failures, delay_ms });
        runtime.health.report_state(
            &shard_id,
            "backoff",
            u64::from(attempt + 1),
            u64::from(failures),
        );
        apollo_telemetry::emit_event(
            "fleet.shard.restart",
            &[
                ("shard", FieldValue::from(k)),
                ("attempt", FieldValue::from(u64::from(attempt + 1))),
                ("delay_ms", FieldValue::from(delay_ms)),
                ("reason", FieldValue::from(reason.as_str())),
            ],
        );
        sleep_sliced(delay_ms, stop);
        attempt += 1;
    }
}
