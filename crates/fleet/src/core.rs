//! One monitored core as a resumable per-window state machine.
//!
//! The introspect monitor ([`apollo_introspect::run_monitor`]) owns
//! its whole loop: it runs a pipeline to completion on the calling
//! thread. A fleet shard instead interleaves *many* cores window by
//! window, so [`CoreMonitor`] re-expresses the same per-cycle loop —
//! simulate, tap proxies, accumulate exact integer attribution,
//! window the ground truth, update drift detectors — as
//! [`CoreMonitor::step_window`]: advance one core until its next OPM
//! window closes and return the window row. Values produced this way
//! are computed in cycle order from the same serial recurrence as the
//! monitor, so they are bit-identical across reruns, shard counts and
//! core→shard assignments.

use apollo_core::{ApolloError, ApolloModel, DesignContext};
use apollo_cpu::benchmarks::{self, Benchmark};
use apollo_cpu::CpuSim;
use apollo_opm::{
    AttributionAccumulator, AttributionMap, DriftConfig, DriftDetector, ProxyTaps, QuantizedOpm,
};
use apollo_sim::WindowTap;

/// Configuration of one monitored core in the fleet.
#[derive(Clone, Debug)]
pub struct CoreSpec {
    /// Stable core id (routing key for `/cores/<id>/…`).
    pub id: String,
    /// The workload this core runs (restarted when it halts).
    pub bench: Benchmark,
    /// OPM window length `T` in cycles (power of two ≥ 4).
    pub window_t: usize,
    /// Weight quantization bits `B`.
    pub bits: u8,
    /// Drift-detector settings (shared by both residual monitors).
    pub drift: DriftConfig,
}

impl CoreSpec {
    /// A mixed-preset fleet of `n` cores mirroring the supervisor's
    /// [`apollo_introspect::fleet_specs`] recipe: benchmarks cycle
    /// through the Table-4 vocabulary, every second core doubles its
    /// window and every third drops quantization bits, so shards
    /// exercise heterogeneous window cadences and meter widths.
    #[must_use]
    pub fn fleet(n: usize, window_t: usize, bits: u8) -> Vec<CoreSpec> {
        let benches = [
            benchmarks::dhrystone(),
            benchmarks::maxpwr_cpu(),
            benchmarks::saxpy_simd(),
            benchmarks::daxpy(),
        ];
        (0..n)
            .map(|i| {
                let bench = benches[i % benches.len()].clone();
                let window_t = if i % 2 == 1 { window_t * 2 } else { window_t };
                let bits = if i % 3 == 2 { bits.saturating_sub(2).max(4) } else { bits };
                CoreSpec {
                    id: format!("c{i}-{}", bench.name),
                    bench,
                    window_t,
                    bits,
                    drift: DriftConfig::default(),
                }
            })
            .collect()
    }
}

/// One closed OPM window from one core. Cumulative fields (`energy`,
/// `alarms`) carry the core's full-stream state so the aggregation
/// tier needs no per-core history.
#[derive(Clone, Debug, PartialEq)]
pub struct CoreWindow {
    /// Zero-based window index for this core.
    pub window: u64,
    /// De-scaled quantized OPM estimate for the window.
    pub est_power: f64,
    /// Ground-truth simulated mean power for the window.
    pub true_power: f64,
    /// Raw integer window accumulator (Σ per-unit raw, bit-exact).
    pub raw: u64,
    /// Hardware window output (`raw >> log2(T)`).
    pub out: u64,
    /// Cumulative drift alarms (quantization + model residual).
    pub alarms: u64,
    /// Cumulative estimated energy (power · cycles).
    pub energy: f64,
    /// Raw integer attribution per class, in the core's class order.
    pub unit_raw: Vec<u64>,
}

/// The per-core pipeline state. Borrows the shared [`DesignContext`]
/// (the simulator holds netlist references), so monitors are
/// constructed inside their shard thread's scope.
pub struct CoreMonitor<'a> {
    ctx: &'a DesignContext,
    model: &'a ApolloModel,
    bench: Benchmark,
    sim: CpuSim<'a>,
    taps: ProxyTaps,
    acc: AttributionAccumulator,
    wtap: WindowTap,
    quant_drift: DriftDetector,
    truth_drift: DriftDetector,
    unit_labels: Vec<String>,
    toggled: Vec<bool>,
    float_acc: f64,
    window_t: usize,
    cycle: u64,
    energy: f64,
    alarms: u64,
}

impl<'a> CoreMonitor<'a> {
    /// Builds the monitor for `spec` against a shared design context
    /// and model.
    ///
    /// # Errors
    /// Returns [`ApolloError::Spec`] for an invalid OPM spec (bad
    /// window / bit-width) or a model the quantizer rejects.
    pub fn new(
        ctx: &'a DesignContext,
        model: &'a ApolloModel,
        spec: &CoreSpec,
    ) -> Result<Self, ApolloError> {
        let opm = QuantizedOpm::from_model(model, spec.bits, spec.window_t)?;
        let map = AttributionMap::from_model(model);
        let taps = ProxyTaps::new(ctx.netlist(), &opm.bits);
        let acc = AttributionAccumulator::new(&opm, &map);
        let q = opm.bits.len();
        let sim = ctx.simulate(&spec.bench.program, &spec.bench.data);
        Ok(CoreMonitor {
            ctx,
            model,
            bench: spec.bench.clone(),
            sim,
            taps,
            acc,
            wtap: WindowTap::new(spec.window_t),
            quant_drift: DriftDetector::new("quant", spec.drift.clone()),
            truth_drift: DriftDetector::new("truth", spec.drift.clone()),
            unit_labels: map.classes.iter().map(|c| c.label.clone()).collect(),
            toggled: vec![false; q],
            float_acc: 0.0,
            window_t: spec.window_t,
            cycle: 0,
            energy: 0.0,
            alarms: 0,
        })
    }

    /// Attribution class labels, in the core's stable class order.
    #[must_use]
    pub fn unit_labels(&self) -> &[String] {
        &self.unit_labels
    }

    /// Cycles simulated so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Advances the core until its next OPM window closes and returns
    /// the window row. The workload restarts transparently when it
    /// halts (fleet cores are unbounded by design; the shard decides
    /// how many windows to take).
    pub fn step_window(&mut self) -> CoreWindow {
        loop {
            if self.sim.halted() {
                self.sim = self.ctx.simulate(&self.bench.program, &self.bench.data);
            }
            self.sim.step();
            self.cycle += 1;
            let power = self.sim.sim().power();
            {
                let s = self.sim.sim();
                for (k, slot) in self.toggled.iter_mut().enumerate() {
                    *slot = self.taps.toggled(s, k);
                }
            }
            // Float proxy model, in the exact FP order of
            // `ApolloModel::predict_full`: intercept, then proxies in
            // model order — the quantization-drift reference.
            let mut pred = self.model.intercept;
            for (k, p) in self.model.proxies.iter().enumerate() {
                if self.toggled[k] {
                    pred += p.weight;
                }
            }
            self.float_acc += pred;

            let window_attr = self.acc.cycle(|k| self.toggled[k]);
            let window_true = self.wtap.push(&power);
            let Some(attr) = window_attr else {
                continue;
            };
            let truth = window_true.expect("attribution and power windows share T");
            let est = self.acc.est_power(&attr);
            let float_power = self.float_acc / self.window_t as f64;
            self.float_acc = 0.0;
            self.energy += est * self.window_t as f64;
            let qs = self.quant_drift.observe(est - float_power);
            let ts = self.truth_drift.observe(est - truth.mean.total);
            self.alarms += u64::from(qs.alarm) + u64::from(ts.alarm);
            return CoreWindow {
                window: attr.window,
                est_power: est,
                true_power: truth.mean.total,
                raw: attr.total,
                out: attr.output,
                alarms: self.alarms,
                energy: self.energy,
                unit_raw: attr.raw,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apollo_core::{train_per_cycle, FeatureSpace, TrainOptions};
    use apollo_cpu::CpuConfig;

    fn tiny_model(ctx: &DesignContext) -> ApolloModel {
        let suite = vec![(benchmarks::dhrystone(), 200)];
        let trace = ctx.capture_suite(&suite, 40);
        let fs = FeatureSpace::build(&trace.toggles);
        train_per_cycle(
            &trace,
            ctx.netlist(),
            &fs,
            &TrainOptions {
                q_target: 8,
                ..TrainOptions::default()
            },
        )
        .model
    }

    #[test]
    fn step_window_is_deterministic_and_sum_exact() {
        let ctx = DesignContext::new(&CpuConfig::tiny());
        let model = tiny_model(&ctx);
        let spec = CoreSpec {
            id: "c0".into(),
            bench: benchmarks::maxpwr_cpu(),
            window_t: 16,
            bits: 8,
            drift: DriftConfig::default(),
        };
        let run = |spec: &CoreSpec| {
            let mut m = CoreMonitor::new(&ctx, &model, spec).unwrap();
            (0..6).map(|_| m.step_window()).collect::<Vec<_>>()
        };
        let a = run(&spec);
        let b = run(&spec);
        assert_eq!(a, b, "window stream must be bit-identical across reruns");
        for (i, w) in a.iter().enumerate() {
            assert_eq!(w.window, i as u64, "dense per-core windows");
            assert_eq!(
                w.unit_raw.iter().sum::<u64>(),
                w.raw,
                "per-unit attribution must sum bit-exactly"
            );
            assert!(w.est_power.is_finite() && w.true_power.is_finite());
        }
    }

    #[test]
    fn fleet_specs_mix_windows_and_bits() {
        let specs = CoreSpec::fleet(6, 16, 10);
        assert_eq!(specs.len(), 6);
        assert!(specs.iter().any(|s| s.window_t == 32));
        assert!(specs.iter().any(|s| s.bits == 8));
        let ids: std::collections::BTreeSet<_> = specs.iter().map(|s| s.id.clone()).collect();
        assert_eq!(ids.len(), 6, "core ids must be unique");
    }
}
