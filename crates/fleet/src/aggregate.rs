//! Degrade-don't-die fleet aggregation.
//!
//! The aggregation tier folds shard batches into a fleet-wide view —
//! p50/p99/mean power, per-unit attribution rollups, drift-alarm
//! fan-in — and *never blocks on missing cores*: a shard that is
//! mid-restart, parked `Degraded`, or simply slow shows up as reduced
//! `cores_reporting` against `cores_total`, not as a stalled scrape.
//!
//! State is kept per shard, so parking a shard removes exactly its
//! contribution ([`FleetAggregator::remove_shard`]): the surviving
//! aggregate is bit-identical to a run where the removed cores never
//! existed (the kill-vs-absent differential), because every sum is
//! integer or ordered-fold arithmetic over label- and id-sorted maps —
//! no float accumulation order depends on shard interleaving.

use crate::batch::WindowBatch;
use apollo_opm::AttributionRollup;
use apollo_telemetry::framing::{self, Framed};
use std::collections::BTreeMap;

/// Schema version of [`FleetAggregate`] records.
pub const AGGREGATE_VERSION: u32 = 1;

/// The latest reading from one core.
#[derive(Clone, Debug, PartialEq)]
pub struct CoreSample {
    /// Latest closed window index.
    pub window: u64,
    /// De-scaled OPM estimate for that window.
    pub est_power: f64,
    /// Ground-truth mean power for that window.
    pub true_power: f64,
    /// Cumulative drift alarms.
    pub alarms: u64,
    /// Cumulative estimated energy.
    pub energy: f64,
}

/// One published fleet-wide aggregate (the `/fleet/metrics` payload's
/// structured twin and the final report record).
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FleetAggregate {
    /// Schema version ([`AGGREGATE_VERSION`]).
    pub v: u32,
    /// Dense publication sequence number.
    pub seq: u64,
    /// Wall-clock stamp (zeroed by [`FleetAggregate::comparable`]).
    pub ts_ns: u64,
    /// Highest window index any reporting core has closed.
    pub window: u64,
    /// Cores configured into the fleet.
    pub cores_total: u64,
    /// Cores whose latest window is within the reporting lag of
    /// `window` — the explicit coverage field: consumers see partial
    /// fleets instead of blocking on them.
    pub cores_reporting: u64,
    /// Shards currently parked `Degraded`.
    pub shards_degraded: u64,
    /// Median estimated power across reporting cores (nearest-rank).
    pub p50_power: f64,
    /// 99th-percentile estimated power (nearest-rank).
    pub p99_power: f64,
    /// Mean estimated power across reporting cores.
    pub mean_power: f64,
    /// Drift alarms summed across reporting cores.
    pub alarms: u64,
    /// Cumulative estimated energy summed across reporting cores,
    /// folded in core-id order (deterministic).
    pub energy: f64,
    /// Sorted union of attribution class labels.
    pub unit_labels: Vec<String>,
    /// Fleet-wide raw attribution rollup per label (bit-exact integer
    /// sums over every ingested window of every live shard).
    pub unit_raw: Vec<u64>,
}

impl Framed for FleetAggregate {
    const VERSION: u32 = AGGREGATE_VERSION;

    fn version(&self) -> u32 {
        self.v
    }

    fn seq(&self) -> u64 {
        self.seq
    }

    fn check_payload(&self) -> Result<(), String> {
        if self.unit_labels.len() != self.unit_raw.len() {
            return Err(format!(
                "{} unit labels for {} rollup cells",
                self.unit_labels.len(),
                self.unit_raw.len()
            ));
        }
        if self.cores_total > 0 && self.cores_reporting > self.cores_total {
            return Err(format!(
                "cores_reporting {} exceeds cores_total {}",
                self.cores_reporting, self.cores_total
            ));
        }
        for (name, x) in [
            ("p50_power", self.p50_power),
            ("p99_power", self.p99_power),
            ("mean_power", self.mean_power),
            ("energy", self.energy),
        ] {
            if !x.is_finite() {
                return Err(format!("non-finite {name}"));
            }
        }
        Ok(())
    }
}

impl FleetAggregate {
    /// Serializes to one JSONL line (no trailing newline).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        framing::to_jsonl(self)
    }

    /// A copy with run-shape fields zeroed (`ts_ns`, `seq`,
    /// `cores_total`, `shards_degraded`) for the kill-vs-absent byte
    /// comparison: those four fields legitimately differ between a
    /// fleet that degraded a shard and a fleet configured without it,
    /// while everything the survivors computed must be identical.
    #[must_use]
    pub fn comparable(&self) -> FleetAggregate {
        FleetAggregate {
            ts_ns: 0,
            seq: 0,
            cores_total: 0,
            shards_degraded: 0,
            ..self.clone()
        }
    }
}

#[derive(Default)]
struct ShardAgg {
    rollup: AttributionRollup,
    latest: BTreeMap<String, CoreSample>,
}

/// Streaming fleet aggregator: ingest shard batches, snapshot
/// fleet-wide aggregates at any time.
pub struct FleetAggregator {
    cores_total: u64,
    lag_windows: u64,
    per_shard: BTreeMap<u64, ShardAgg>,
    shards_degraded: u64,
    seq: u64,
}

impl FleetAggregator {
    /// An empty aggregator for a fleet of `cores_total` configured
    /// cores. `lag_windows` is the reporting tolerance: a core whose
    /// latest window trails the fleet maximum by more than this is
    /// excluded from `cores_reporting` (and from the power quantiles)
    /// until it catches up — mixed window cadences and mid-restart
    /// shards degrade coverage instead of skewing quantiles.
    #[must_use]
    pub fn new(cores_total: usize, lag_windows: u64) -> FleetAggregator {
        FleetAggregator {
            cores_total: cores_total as u64,
            lag_windows,
            per_shard: BTreeMap::new(),
            shards_degraded: 0,
            seq: 0,
        }
    }

    /// Folds one shard batch in: refreshes each core's latest sample
    /// and accumulates the shard's attribution rollup.
    pub fn ingest(&mut self, batch: &WindowBatch) {
        let agg = self.per_shard.entry(batch.shard).or_default();
        let l = batch.unit_labels.len();
        for i in 0..batch.cores.len() {
            agg.rollup
                .ingest(&batch.unit_labels, &batch.unit_raw[i * l..(i + 1) * l]);
        }
        for (i, core) in batch.cores.iter().enumerate() {
            agg.latest.insert(
                core.clone(),
                CoreSample {
                    window: batch.window,
                    est_power: batch.est_power[i],
                    true_power: batch.true_power[i],
                    alarms: batch.alarms[i],
                    energy: batch.energy[i],
                },
            );
        }
    }

    /// Removes a parked shard's entire contribution (latest samples
    /// *and* rollup) and counts it degraded. The surviving aggregate
    /// is then bit-identical to a fleet that never had those cores.
    pub fn remove_shard(&mut self, shard: u64) {
        if self.per_shard.remove(&shard).is_some() {
            self.shards_degraded += 1;
        }
    }

    /// Degraded shards so far.
    #[must_use]
    pub fn shards_degraded(&self) -> u64 {
        self.shards_degraded
    }

    /// The latest sample for one core, if it is live.
    #[must_use]
    pub fn core_sample(&self, core: &str) -> Option<&CoreSample> {
        self.per_shard.values().find_map(|s| s.latest.get(core))
    }

    /// Snapshots the fleet-wide aggregate. Pure except for the `seq`
    /// counter; `ts_ns` is the caller's stamp (0 for differential
    /// runs).
    pub fn snapshot(&mut self, ts_ns: u64) -> FleetAggregate {
        let w_max = self
            .per_shard
            .values()
            .flat_map(|s| s.latest.values().map(|c| c.window))
            .max()
            .unwrap_or(0);
        let floor = w_max.saturating_sub(self.lag_windows);
        // Reporting cores in core-id order across shards: BTreeMap
        // iteration makes every fold below order-deterministic.
        let mut reporting: Vec<(&String, &CoreSample)> = self
            .per_shard
            .values()
            .flat_map(|s| s.latest.iter())
            .filter(|(_, c)| c.window >= floor)
            .collect();
        reporting.sort_by(|a, b| a.0.cmp(b.0));
        let mut powers: Vec<f64> = reporting.iter().map(|(_, c)| c.est_power).collect();
        powers.sort_by(f64::total_cmp);
        let nearest_rank = |q: f64| -> f64 {
            if powers.is_empty() {
                return 0.0;
            }
            let rank = (q * powers.len() as f64).ceil().max(1.0) as usize;
            powers[rank.min(powers.len()) - 1]
        };
        let mean = if powers.is_empty() {
            0.0
        } else {
            powers.iter().sum::<f64>() / powers.len() as f64
        };
        let mut rollup = AttributionRollup::new();
        for agg in self.per_shard.values() {
            rollup.merge(&agg.rollup);
        }
        let seq = self.seq;
        self.seq += 1;
        FleetAggregate {
            v: AGGREGATE_VERSION,
            seq,
            ts_ns,
            window: w_max,
            cores_total: self.cores_total,
            cores_reporting: reporting.len() as u64,
            shards_degraded: self.shards_degraded,
            p50_power: nearest_rank(0.50),
            p99_power: nearest_rank(0.99),
            mean_power: mean,
            alarms: reporting.iter().map(|(_, c)| c.alarms).sum(),
            energy: reporting.iter().map(|(_, c)| c.energy).sum(),
            unit_labels: rollup.raw.keys().cloned().collect(),
            unit_raw: rollup.raw.values().copied().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::CoreWindow;

    fn batch(shard: u64, seq: u64, window: u64, cores: &[(&str, f64, &[u64])]) -> WindowBatch {
        let rows: Vec<(String, Vec<String>, CoreWindow)> = cores
            .iter()
            .map(|(id, p, raw)| {
                (
                    (*id).to_owned(),
                    (0..raw.len()).map(|i| format!("u{i}")).collect(),
                    CoreWindow {
                        window,
                        est_power: *p,
                        true_power: *p,
                        raw: raw.iter().sum(),
                        out: 0,
                        alarms: 1,
                        energy: *p * 4.0,
                        unit_raw: raw.to_vec(),
                    },
                )
            })
            .collect();
        WindowBatch::from_rows(shard, seq, window, &rows)
    }

    #[test]
    fn coverage_counts_lagging_cores_out() {
        let mut agg = FleetAggregator::new(3, 1);
        agg.ingest(&batch(0, 0, 5, &[("a", 1.0, &[2]), ("b", 2.0, &[3])]));
        agg.ingest(&batch(1, 0, 2, &[("c", 9.0, &[4])]));
        let snap = agg.snapshot(0);
        assert_eq!(snap.window, 5);
        assert_eq!(snap.cores_total, 3);
        assert_eq!(snap.cores_reporting, 2, "core c lags past the tolerance");
        // Quantiles over the reporting cores only.
        assert_eq!(snap.p50_power, 1.0);
        assert_eq!(snap.p99_power, 2.0);
        // The rollup still counts every ingested window (history is
        // not coverage).
        assert_eq!(snap.unit_raw.iter().sum::<u64>(), 9);
        snap.check_payload().unwrap();
    }

    #[test]
    fn remove_shard_equals_absent_shard() {
        let mk = |with_shard1: bool| {
            let mut agg = FleetAggregator::new(if with_shard1 { 4 } else { 2 }, 2);
            agg.ingest(&batch(0, 0, 0, &[("a", 1.0, &[2]), ("b", 2.0, &[3])]));
            if with_shard1 {
                agg.ingest(&batch(1, 0, 0, &[("c", 5.0, &[7]), ("d", 6.0, &[8])]));
            }
            agg.ingest(&batch(0, 1, 1, &[("a", 1.5, &[4]), ("b", 2.5, &[5])]));
            if with_shard1 {
                agg.remove_shard(1);
            }
            agg.snapshot(123)
        };
        let killed = mk(true);
        let absent = mk(false);
        assert_eq!(killed.cores_reporting, absent.cores_reporting);
        assert_eq!(
            killed.comparable().to_jsonl(),
            absent.comparable().to_jsonl(),
            "survivor aggregate must be byte-identical"
        );
        assert_eq!(killed.shards_degraded, 1);
        assert_eq!(absent.shards_degraded, 0);
    }

    #[test]
    fn empty_fleet_snapshots_cleanly() {
        let mut agg = FleetAggregator::new(0, 2);
        let snap = agg.snapshot(0);
        assert_eq!(snap.cores_reporting, 0);
        assert_eq!(snap.p50_power, 0.0);
        snap.check_payload().unwrap();
        let line = snap.to_jsonl();
        let back: FleetAggregate = framing::validate_framed(&line).unwrap();
        assert_eq!(back, snap);
    }
}
