//! The fleet endpoint: per-core routing, admission control, and
//! batched event streaming over one zero-dependency TCP listener.
//!
//! Routes:
//!
//! * `GET /fleet/metrics` — Prometheus-style text of the current
//!   [`FleetAggregate`](crate::aggregate::FleetAggregate): quantile
//!   power, coverage (`fleet_cores_reporting` / `fleet_cores_total`),
//!   degraded-shard count and the per-unit attribution rollup.
//! * `GET /fleet/events` — streaming JSONL of every shard's
//!   [`WindowBatch`](crate::batch::WindowBatch)es (one columnar record
//!   per shard per window round).
//! * `GET /cores/<id>/metrics` — latest sample for one core.
//! * `GET /cores/<id>/events` — that core's rows projected out of its
//!   shard's batches, with a per-subscriber dense `seq`.
//! * `GET /healthz` / `GET /status` — shard health from the shared
//!   [`HealthRegistry`]: a fleet with a `Degraded` shard answers `503`
//!   on `/healthz` while every other route keeps serving.
//! * `GET /shutdown` — raises the shared stop flag.
//!
//! The protocol edge reuses the introspect server's hardened
//! primitives ([`read_request_head`], bounded lines, read/write
//! timeouts, connection cap), so both serving layers shed and fail
//! identically. On top of that the fleet adds **admission control**:
//! when a shard hub's deepest subscriber queue crosses
//! [`FleetServerOptions::watermark`], new event subscriptions are shed
//! with `503` + `Retry-After` instead of being admitted into an
//! already-backlogged fan-out.

use crate::shard::ShardRuntime;
use apollo_introspect::server::{
    is_timeout, read_request_head, respond, respond_with_headers,
};
use apollo_introspect::sync::plock;
use apollo_telemetry::FieldValue;
use std::fmt::Write as _;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Fleet serving knobs (superset of the introspect server's hardening
/// options, plus the admission-control watermark).
#[derive(Clone, Debug)]
pub struct FleetServerOptions {
    /// Per-connection read timeout (stalled request ⇒ `408`).
    pub read_timeout: Duration,
    /// Per-connection write timeout (stalled event client ⇒ eviction).
    pub write_timeout: Duration,
    /// Maximum concurrent connection handlers; excess peers get `503`
    /// + `Retry-After`.
    pub max_conns: usize,
    /// Byte cap on any single request or header line (`400` beyond).
    pub max_line_bytes: usize,
    /// Admission watermark: a new event subscription against a shard
    /// hub whose deepest queue exceeds this is shed with `503`.
    pub watermark: usize,
    /// Advisory retry delay attached to every load-shedding `503`
    /// (rendered as a whole-second `Retry-After` header, rounded up).
    pub retry_after_ms: u64,
}

impl Default for FleetServerOptions {
    fn default() -> Self {
        FleetServerOptions {
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_conns: 256,
            max_line_bytes: 8 * 1024,
            watermark: 128,
            retry_after_ms: 1000,
        }
    }
}

/// Running fleet server: bound address plus lifecycle control.
pub struct FleetServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    runtime: Arc<ShardRuntime>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl FleetServerHandle {
    /// The bound listen address (resolves port 0 to the real port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server: raises the stop flag, closes every shard hub
    /// (ending all event streams), and joins all server threads.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.runtime.close();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let conns = std::mem::take(&mut *plock(&self.conns));
        for h in conns {
            let _ = h.join();
        }
    }
}

/// Binds `listen` (port 0 picks a free port) and serves the fleet
/// runtime until `stop` becomes true.
///
/// # Errors
/// Returns the bind error if the address is unavailable.
pub fn serve_fleet(
    listen: &str,
    runtime: Arc<ShardRuntime>,
    stop: Arc<AtomicBool>,
    opts: FleetServerOptions,
) -> std::io::Result<FleetServerHandle> {
    let listener = TcpListener::bind(listen)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let accept = {
        let stop = Arc::clone(&stop);
        let runtime = Arc::clone(&runtime);
        let conns = Arc::clone(&conns);
        std::thread::spawn(move || accept_loop(&listener, &runtime, &stop, &conns, &opts))
    };
    Ok(FleetServerHandle {
        addr,
        stop,
        runtime,
        accept: Some(accept),
        conns,
    })
}

fn accept_loop(
    listener: &TcpListener,
    runtime: &Arc<ShardRuntime>,
    stop: &Arc<AtomicBool>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    opts: &FleetServerOptions,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let live = {
                    let mut guard = plock(conns);
                    let (done, alive): (Vec<_>, Vec<_>) = std::mem::take(&mut *guard)
                        .into_iter()
                        .partition(JoinHandle::is_finished);
                    *guard = alive;
                    drop(guard);
                    for h in done {
                        let _ = h.join();
                    }
                    plock(conns).len()
                };
                if live >= opts.max_conns {
                    let _ = stream.set_write_timeout(Some(opts.write_timeout));
                    let _ = shed(&mut stream, "conn_cap", opts);
                    continue;
                }
                let runtime = Arc::clone(runtime);
                let stop = Arc::clone(stop);
                let opts = opts.clone();
                let handle = std::thread::spawn(move || {
                    // Peer noise must never take the fleet endpoint down.
                    let _ = handle_connection(stream, &runtime, &stop, &opts);
                });
                plock(conns).push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Answers a load-shedding `503` with an advisory `Retry-After`.
fn shed(out: &mut TcpStream, reason: &str, opts: &FleetServerOptions) -> std::io::Result<()> {
    apollo_telemetry::counter("fleet.http.shed").inc();
    apollo_telemetry::emit_event(
        "fleet.shed",
        &[
            ("reason", FieldValue::from(reason)),
            ("retry_after_ms", FieldValue::from(opts.retry_after_ms)),
        ],
    );
    let secs = opts.retry_after_ms.div_ceil(1000).max(1);
    respond_with_headers(
        out,
        "503 Service Unavailable",
        "text/plain",
        &[("Retry-After", &secs.to_string())],
        "overloaded; retry later\n",
    )
}

fn now_ns() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

fn handle_connection(
    stream: TcpStream,
    runtime: &Arc<ShardRuntime>,
    stop: &Arc<AtomicBool>,
    opts: &FleetServerOptions,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(opts.read_timeout))?;
    stream.set_write_timeout(Some(opts.write_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    let Some(path) = read_request_head(&mut reader, &mut out, opts.max_line_bytes)? else {
        return Ok(());
    };
    match path.as_str() {
        "/" => respond(
            &mut out,
            "200 OK",
            "text/plain; charset=utf-8",
            "apollo fleet: /fleet/metrics, /fleet/events, /cores/<id>/metrics, /cores/<id>/events, /healthz, /status, /shutdown\n",
        ),
        "/healthz" => {
            let healthy = runtime.health.healthy();
            apollo_telemetry::counter("fleet.healthz.scrapes").inc();
            if healthy {
                respond(&mut out, "200 OK", "text/plain", "ok\n")
            } else {
                respond(&mut out, "503 Service Unavailable", "text/plain", "degraded\n")
            }
        }
        "/status" => {
            let snap = runtime.health.snapshot(Vec::new());
            let status = if snap.healthy {
                "200 OK"
            } else {
                "503 Service Unavailable"
            };
            let body = format!("{}\n", snap.to_jsonl());
            respond(&mut out, status, "application/json", &body)
        }
        "/fleet/metrics" => {
            let agg = runtime.snapshot(now_ns());
            apollo_telemetry::counter("fleet.scrapes").inc();
            apollo_telemetry::emit_event(
                "fleet.coverage",
                &[
                    ("window", FieldValue::from(agg.window)),
                    ("cores_reporting", FieldValue::from(agg.cores_reporting)),
                    ("cores_total", FieldValue::from(agg.cores_total)),
                ],
            );
            respond(&mut out, "200 OK", "text/plain; version=0.0.4", &fleet_gauges(&agg))
        }
        "/fleet/events" => {
            if runtime.hubs.iter().any(|h| h.max_depth() > opts.watermark) {
                return shed(&mut out, "watermark", opts);
            }
            stream_fleet_events(&mut out, runtime, stop)
        }
        "/shutdown" => {
            stop.store(true, Ordering::Relaxed);
            respond(&mut out, "200 OK", "text/plain", "shutting down\n")
        }
        p => {
            if let Some(rest) = p.strip_prefix("/cores/") {
                match rest.split_once('/') {
                    Some((core, "metrics")) => return core_metrics(&mut out, runtime, core),
                    Some((core, "events")) => {
                        let Some(&shard) = runtime.core_shard.get(core) else {
                            return respond(&mut out, "404 Not Found", "text/plain", "unknown core\n");
                        };
                        if runtime.hubs[shard].max_depth() > opts.watermark {
                            return shed(&mut out, "watermark", opts);
                        }
                        return stream_core_events(&mut out, runtime, shard, core, stop);
                    }
                    _ => {}
                }
            }
            respond(&mut out, "404 Not Found", "text/plain", "unknown path\n")
        }
    }
}

/// Renders the fleet aggregate as Prometheus-style gauge text.
fn fleet_gauges(agg: &crate::aggregate::FleetAggregate) -> String {
    let mut body = String::new();
    let rows: [(&str, f64); 9] = [
        ("fleet_cores_total", agg.cores_total as f64),
        ("fleet_cores_reporting", agg.cores_reporting as f64),
        ("fleet_shards_degraded", agg.shards_degraded as f64),
        ("fleet_window", agg.window as f64),
        ("fleet_p50_power", agg.p50_power),
        ("fleet_p99_power", agg.p99_power),
        ("fleet_mean_power", agg.mean_power),
        ("fleet_alarms", agg.alarms as f64),
        ("fleet_energy", agg.energy),
    ];
    for (name, value) in rows {
        let _ = writeln!(body, "# TYPE {name} gauge");
        let _ = writeln!(body, "{name} {value}");
    }
    if !agg.unit_labels.is_empty() {
        let _ = writeln!(body, "# TYPE fleet_unit_raw gauge");
        for (label, raw) in agg.unit_labels.iter().zip(&agg.unit_raw) {
            let _ = writeln!(body, "fleet_unit_raw{{unit=\"{label}\"}} {raw}");
        }
    }
    body
}

/// Latest single-core sample, or `404` for an unknown/parked core.
fn core_metrics(
    out: &mut TcpStream,
    runtime: &Arc<ShardRuntime>,
    core: &str,
) -> std::io::Result<()> {
    let sample = plock(&runtime.aggregator).core_sample(core).cloned();
    let Some(s) = sample else {
        return respond(out, "404 Not Found", "text/plain", "unknown core\n");
    };
    let mut body = String::new();
    let rows: [(&str, f64); 5] = [
        ("fleet_core_window", s.window as f64),
        ("fleet_core_est_power", s.est_power),
        ("fleet_core_true_power", s.true_power),
        ("fleet_core_alarms", s.alarms as f64),
        ("fleet_core_energy", s.energy),
    ];
    for (name, value) in rows {
        let _ = writeln!(body, "# TYPE {name} gauge");
        let _ = writeln!(body, "{name}{{core=\"{core}\"}} {value}");
    }
    respond(out, "200 OK", "text/plain; version=0.0.4", &body)
}

fn write_ndjson_head(out: &mut TcpStream) -> std::io::Result<()> {
    write!(
        out,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n"
    )?;
    out.flush()
}

/// Streams every shard's batches (original per-shard `seq` kept) until
/// all hubs close, the stop flag rises, or the client stalls out.
fn stream_fleet_events(
    out: &mut TcpStream,
    runtime: &Arc<ShardRuntime>,
    stop: &Arc<AtomicBool>,
) -> std::io::Result<()> {
    use crate::batch::BatchPoll;
    let subs: Vec<_> = runtime.hubs.iter().map(|h| h.subscribe()).collect();
    write_ndjson_head(out)?;
    let mut open: Vec<bool> = vec![true; subs.len()];
    while open.iter().any(|&o| o) {
        if stop.load(Ordering::Relaxed) && runtime.hubs.iter().all(|h| h.closed()) {
            // Final drain below still runs for each open sub.
        }
        let mut progressed = false;
        for (i, sub) in subs.iter().enumerate() {
            if !open[i] {
                continue;
            }
            match sub.poll(Duration::from_millis(20)) {
                BatchPoll::Batch(b) => {
                    progressed = true;
                    if let Err(e) = writeln!(out, "{}", b.to_jsonl()).and_then(|()| out.flush()) {
                        if is_timeout(&e) {
                            apollo_telemetry::counter("fleet.http.slow_evicted").inc();
                        }
                        return Ok(());
                    }
                }
                BatchPoll::Timeout => {}
                BatchPoll::Closed => open[i] = false,
            }
        }
        if !progressed && stop.load(Ordering::Relaxed) && runtime.hubs.iter().all(|h| h.closed()) {
            break;
        }
    }
    Ok(())
}

/// Streams one core's projected rows with a per-subscriber dense `seq`
/// (re-stamped at send time, so delivered streams pass `trace-lint`
/// even after hub-side drops).
fn stream_core_events(
    out: &mut TcpStream,
    runtime: &Arc<ShardRuntime>,
    shard: usize,
    core: &str,
    stop: &Arc<AtomicBool>,
) -> std::io::Result<()> {
    use crate::batch::BatchPoll;
    let sub = runtime.hubs[shard].subscribe();
    write_ndjson_head(out)?;
    let mut seq = 0u64;
    loop {
        match sub.poll(Duration::from_millis(100)) {
            BatchPoll::Batch(b) => {
                let Some(row) = b.project_core(core, seq) else {
                    continue;
                };
                seq += 1;
                if let Err(e) = writeln!(out, "{}", row.to_jsonl()).and_then(|()| out.flush()) {
                    if is_timeout(&e) {
                        apollo_telemetry::counter("fleet.http.slow_evicted").inc();
                    }
                    return Ok(());
                }
            }
            BatchPoll::Timeout => {
                if stop.load(Ordering::Relaxed) && runtime.hubs[shard].closed() {
                    return Ok(());
                }
            }
            BatchPoll::Closed => return Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::FleetAggregator;
    use crate::batch::{BatchHub, WindowBatch};
    use crate::core::CoreWindow;
    use apollo_introspect::server::http_get_lines;
    use apollo_introspect::{http_get, HealthRegistry};
    use apollo_telemetry::framing;
    use std::collections::BTreeMap;

    fn test_batch(shard: u64, seq: u64, window: u64, cores: &[&str]) -> WindowBatch {
        let rows: Vec<(String, Vec<String>, CoreWindow)> = cores
            .iter()
            .enumerate()
            .map(|(i, id)| {
                (
                    (*id).to_owned(),
                    vec!["alu".to_owned()],
                    CoreWindow {
                        window,
                        est_power: 1.0 + i as f64,
                        true_power: 1.0,
                        raw: 4,
                        out: 1,
                        alarms: 0,
                        energy: 8.0,
                        unit_raw: vec![4],
                    },
                )
            })
            .collect();
        WindowBatch::from_rows(shard, seq, window, &rows)
    }

    fn test_runtime(cores: &[&str]) -> Arc<ShardRuntime> {
        let mut core_shard = BTreeMap::new();
        for c in cores {
            core_shard.insert((*c).to_owned(), 0usize);
        }
        Arc::new(ShardRuntime {
            hubs: vec![BatchHub::new(8)],
            health: Arc::new(HealthRegistry::new()),
            aggregator: Mutex::new(FleetAggregator::new(cores.len(), 2)),
            core_shard,
            cores_total: cores.len(),
        })
    }

    fn start(
        runtime: &Arc<ShardRuntime>,
        opts: FleetServerOptions,
    ) -> (FleetServerHandle, String, Arc<AtomicBool>) {
        let stop = Arc::new(AtomicBool::new(false));
        let server =
            serve_fleet("127.0.0.1:0", Arc::clone(runtime), Arc::clone(&stop), opts).unwrap();
        let addr = server.addr().to_string();
        (server, addr, stop)
    }

    #[test]
    fn routes_serve_fleet_and_core_metrics() {
        let runtime = test_runtime(&["c0", "c1"]);
        plock(&runtime.aggregator).ingest(&test_batch(0, 0, 3, &["c0", "c1"]));
        let (server, addr, _stop) = start(&runtime, FleetServerOptions::default());
        let index = http_get_lines(&addr, "/", None).unwrap();
        assert!(index[0].contains("/fleet/metrics"), "{index:?}");
        let metrics = http_get_lines(&addr, "/fleet/metrics", None).unwrap();
        assert!(
            metrics.iter().any(|l| l == "fleet_cores_total 2"),
            "{metrics:?}"
        );
        assert!(
            metrics.iter().any(|l| l == "fleet_unit_raw{unit=\"alu\"} 8"),
            "{metrics:?}"
        );
        let core = http_get_lines(&addr, "/cores/c1/metrics", None).unwrap();
        assert!(
            core.iter().any(|l| l == "fleet_core_est_power{core=\"c1\"} 2"),
            "{core:?}"
        );
        let missing = http_get(&addr, "/cores/zz/metrics", None, Duration::from_secs(5)).unwrap();
        assert_eq!(missing.status, 404);
        let health = http_get_lines(&addr, "/healthz", None).unwrap();
        assert_eq!(health, vec!["ok"]);
        server.stop();
    }

    #[test]
    fn degraded_fleet_fails_healthz_but_keeps_serving() {
        let runtime = test_runtime(&["c0"]);
        runtime.health.report_state("shard0", "degraded", 3, 0);
        let (server, addr, _stop) = start(&runtime, FleetServerOptions::default());
        let res = http_get(&addr, "/healthz", None, Duration::from_secs(5)).unwrap();
        assert_eq!(res.status, 503);
        let metrics = http_get_lines(&addr, "/fleet/metrics", None).unwrap();
        assert!(!metrics.is_empty(), "metrics keep serving while degraded");
        server.stop();
    }

    #[test]
    fn watermark_sheds_events_with_retry_after() {
        let runtime = test_runtime(&["c0"]);
        let opts = FleetServerOptions {
            watermark: 1,
            retry_after_ms: 2500,
            ..FleetServerOptions::default()
        };
        // A parked subscriber backs the hub queue up past the
        // watermark before the scrape arrives.
        let parked = runtime.hubs[0].subscribe();
        for seq in 0..3 {
            runtime.hubs[0].publish(test_batch(0, seq, seq, &["c0"]));
        }
        let (server, addr, _stop) = start(&runtime, opts);
        let res = http_get(&addr, "/fleet/events", None, Duration::from_secs(5)).unwrap();
        assert_eq!(res.status, 503);
        assert_eq!(res.retry_after_ms, Some(3000), "2500ms rounds up to 3s");
        let res = http_get(&addr, "/cores/c0/events", None, Duration::from_secs(5)).unwrap();
        assert_eq!(res.status, 503);
        drop(parked);
        server.stop();
    }

    #[test]
    fn core_events_project_with_dense_seq() {
        let runtime = test_runtime(&["c0", "c1"]);
        let (server, addr, _stop) = start(&runtime, FleetServerOptions::default());
        let publisher = {
            let runtime = Arc::clone(&runtime);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(150));
                for seq in 0..4u64 {
                    runtime.hubs[0].publish(test_batch(0, seq, seq, &["c0", "c1"]));
                }
                runtime.hubs[0].close();
            })
        };
        let lines = http_get_lines(&addr, "/cores/c1/events", Some(4)).unwrap();
        publisher.join().unwrap();
        assert_eq!(lines.len(), 4, "{lines:?}");
        for (i, l) in lines.iter().enumerate() {
            let b: WindowBatch = framing::validate_framed(l).unwrap();
            assert_eq!(b.seq, i as u64, "dense per-subscriber seq");
            assert_eq!(b.cores, vec!["c1"]);
        }
        server.stop();
    }

    #[test]
    fn shutdown_raises_the_shared_stop_flag() {
        let runtime = test_runtime(&["c0"]);
        let (server, addr, stop) = start(&runtime, FleetServerOptions::default());
        let lines = http_get_lines(&addr, "/shutdown", None).unwrap();
        assert!(lines.iter().any(|l| l.contains("shutting down")));
        assert!(stop.load(Ordering::Relaxed));
        server.stop();
    }
}
