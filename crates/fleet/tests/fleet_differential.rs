//! Fleet chaos differentials and aggregation fan-in properties.
//!
//! The executor's determinism contract is byte-level: batch streams
//! and aggregation reports are pure functions of the core specs and
//! the seeded kill plan (wall clock confined to `ts_ns`, which the
//! collected transcripts strip). Three differentials pin it on real
//! simulated cores — rerun identity, kill-vs-absent bulkhead identity,
//! and recovery identity — and proptests pin the aggregation tier's
//! independence from shard count and core→shard assignment on
//! synthetic batches.

use apollo_core::{train_per_cycle, ApolloModel, DesignContext, FeatureSpace, TrainOptions};
use apollo_cpu::{benchmarks, CpuConfig};
use apollo_fleet::core::CoreWindow;
use apollo_fleet::{
    run_fleet, shard_cores, CoreSpec, FleetAggregator, FleetConfig, FleetReport, ShardKill,
    ShardRuntime, WindowBatch,
};
use apollo_introspect::{BackoffPolicy, PipelineState};
use proptest::prelude::*;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

fn tiny_fleet() -> (Arc<DesignContext>, Arc<ApolloModel>) {
    let ctx = Arc::new(DesignContext::new(&CpuConfig::tiny()));
    let suite = vec![(benchmarks::dhrystone(), 200)];
    let trace = ctx.capture_suite(&suite, 40);
    let fs = FeatureSpace::build(&trace.toggles);
    let model = train_per_cycle(
        &trace,
        ctx.netlist(),
        &fs,
        &TrainOptions {
            q_target: 8,
            ..TrainOptions::default()
        },
    )
    .model;
    (ctx, Arc::new(model))
}

fn run(
    ctx: &Arc<DesignContext>,
    model: &Arc<ApolloModel>,
    shards: &[Vec<CoreSpec>],
    cfg: &FleetConfig,
) -> FleetReport {
    let runtime = ShardRuntime::new(shards, cfg);
    let stop = Arc::new(AtomicBool::new(false));
    run_fleet(ctx, model, shards, cfg, &runtime, &stop)
}

fn fast_backoff(give_up: u32) -> BackoffPolicy {
    BackoffPolicy {
        base_ms: 1,
        factor: 2,
        max_ms: 4,
        give_up,
    }
}

#[test]
fn seeded_kill_reruns_are_byte_identical_and_degrade_one_shard() {
    let (ctx, model) = tiny_fleet();
    let shards = shard_cores(CoreSpec::fleet(4, 8, 8), 2);
    let cfg = FleetConfig {
        windows: 4,
        backoff: fast_backoff(2),
        kills: vec![
            ShardKill { shard: 1, window: 1, attempt: 0 },
            ShardKill { shard: 1, window: 3, attempt: 1 },
        ],
        collect_batches: true,
        ..FleetConfig::default()
    };
    let a = run(&ctx, &model, &shards, &cfg);
    let b = run(&ctx, &model, &shards, &cfg);
    assert_eq!(a.decision_transcript(), b.decision_transcript());
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.batches, y.batches, "shard {} stream diverged", x.shard);
    }
    assert_eq!(a.degraded(), 1, "the kill plan must park exactly shard 1");
    assert_eq!(a.outcomes[1].state, PipelineState::Degraded);
    assert_eq!(a.outcomes[0].state, PipelineState::Completed);
    assert_eq!(a.outcomes[0].windows, 4, "sibling shard must finish every round");
}

#[test]
fn killed_shard_leaves_survivors_identical_to_absence() {
    let (ctx, model) = tiny_fleet();
    let shards = shard_cores(CoreSpec::fleet(4, 8, 8), 2);
    let kill_cfg = FleetConfig {
        windows: 4,
        backoff: fast_backoff(2),
        kills: vec![
            ShardKill { shard: 1, window: 1, attempt: 0 },
            ShardKill { shard: 1, window: 3, attempt: 1 },
        ],
        collect_batches: true,
        ..FleetConfig::default()
    };
    let killed = run(&ctx, &model, &shards, &kill_cfg);

    // Same layout, but the killed shard's cores never existed: its
    // slot stays so surviving shard indices (and batch `shard` fields)
    // line up.
    let mut absent_shards = shards.clone();
    absent_shards[1] = Vec::new();
    let absent_cfg = FleetConfig {
        windows: 4,
        backoff: fast_backoff(2),
        collect_batches: true,
        ..FleetConfig::default()
    };
    let absent = run(&ctx, &model, &absent_shards, &absent_cfg);

    assert_eq!(
        killed.outcomes[0].batches, absent.outcomes[0].batches,
        "survivor stream must be byte-identical to the absent-core run"
    );
    assert_eq!(
        killed.aggregate.comparable().to_jsonl(),
        absent.aggregate.comparable().to_jsonl(),
        "survivor aggregate must be byte-identical to the absent-core run"
    );
    assert_eq!(killed.aggregate.shards_degraded, 1);
    assert_eq!(absent.aggregate.shards_degraded, 0);
    assert_eq!(killed.aggregate.cores_reporting, 2);
}

#[test]
fn recovered_shard_stream_equals_never_killed_stream() {
    let (ctx, model) = tiny_fleet();
    let shards = shard_cores(CoreSpec::fleet(4, 8, 8), 2);
    let recover_cfg = FleetConfig {
        windows: 4,
        backoff: fast_backoff(4),
        kills: vec![ShardKill { shard: 1, window: 1, attempt: 0 }],
        collect_batches: true,
        ..FleetConfig::default()
    };
    let clean_cfg = FleetConfig {
        kills: Vec::new(),
        ..recover_cfg.clone()
    };
    let recovered = run(&ctx, &model, &shards, &recover_cfg);
    let clean = run(&ctx, &model, &shards, &clean_cfg);

    assert_eq!(recovered.degraded(), 0, "one kill under give_up=4 must recover");
    assert_eq!(recovered.outcomes[1].attempts, 2);
    assert_eq!(
        recovered.outcomes[1].batches, clean.outcomes[1].batches,
        "replay suppression must make the recovered stream byte-identical"
    );
    assert_eq!(
        recovered.aggregate.comparable().to_jsonl(),
        clean.aggregate.comparable().to_jsonl()
    );
    // Dense seq across the restart: the published stream is 0..4.
    let seqs: Vec<u64> = recovered.outcomes[1]
        .batches
        .iter()
        .map(|line| {
            let b: WindowBatch = apollo_telemetry::framing::validate_framed(line).unwrap();
            b.seq
        })
        .collect();
    assert_eq!(seqs, vec![0, 1, 2, 3]);
}

// --- aggregation fan-in properties over synthetic batches -----------

/// One synthetic core: id index, per-window powers and raw
/// attribution over a 3-label vocabulary.
#[derive(Clone, Debug)]
struct SynthCore {
    power: Vec<f64>,
    raw: Vec<[u64; 3]>,
}

const LABELS: [&str; 3] = ["alu", "fetch", "lsu"];

fn synth_cores(windows: usize) -> impl Strategy<Value = Vec<SynthCore>> {
    prop::collection::vec(
        (
            prop::collection::vec(0.01f64..100.0, windows),
            prop::collection::vec(
                (0u64..1000, 0u64..1000, 0u64..1000).prop_map(|(a, b, c)| [a, b, c]),
                windows,
            ),
        )
            .prop_map(|(power, raw)| SynthCore { power, raw }),
        1..8,
    )
}

/// Ingest the same per-core window rows under an arbitrary core→shard
/// assignment and snapshot the aggregate.
fn aggregate_under(
    cores: &[SynthCore],
    windows: usize,
    assign: &[usize],
    n_shards: usize,
) -> apollo_fleet::FleetAggregate {
    let mut agg = FleetAggregator::new(cores.len(), u64::MAX);
    for w in 0..windows {
        for shard in 0..n_shards {
            let rows: Vec<(String, Vec<String>, CoreWindow)> = cores
                .iter()
                .enumerate()
                .filter(|(i, _)| assign[*i] % n_shards == shard)
                .map(|(i, c)| {
                    let raw: u64 = c.raw[w].iter().sum();
                    (
                        format!("core{i:03}"),
                        LABELS.iter().map(|l| (*l).to_owned()).collect(),
                        CoreWindow {
                            window: w as u64,
                            est_power: c.power[w],
                            true_power: c.power[w],
                            raw,
                            out: raw >> 2,
                            alarms: w as u64,
                            energy: c.power[w] * 8.0,
                            unit_raw: c.raw[w].to_vec(),
                        },
                    )
                })
                .collect();
            if rows.is_empty() {
                continue;
            }
            agg.ingest(&WindowBatch::from_rows(shard as u64, w as u64, w as u64, &rows));
        }
    }
    agg.snapshot(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fleet p50/p99/mean and the per-unit rollup are independent of
    /// shard count (1/2/4) and of the core→shard assignment: every
    /// sharding of the same per-core rows yields a byte-identical
    /// comparable aggregate.
    #[test]
    fn aggregate_is_invariant_under_sharding(
        cores in synth_cores(3),
        assign_seed in prop::collection::vec(0usize..64, 8),
    ) {
        let windows = 3;
        let assign: Vec<usize> = (0..cores.len()).map(|i| assign_seed[i % assign_seed.len()]).collect();
        let reference = aggregate_under(&cores, windows, &vec![0; cores.len()], 1);
        for n_shards in [1usize, 2, 4] {
            let sharded = aggregate_under(&cores, windows, &assign, n_shards);
            prop_assert_eq!(
                sharded.comparable().to_jsonl(),
                reference.comparable().to_jsonl(),
                "aggregate diverged under {} shards", n_shards
            );
        }
    }

    /// Σ per-core raw attribution equals the fleet rollup bit-for-bit,
    /// label by label, under any sharding.
    #[test]
    fn rollup_sums_cores_bit_exactly(
        cores in synth_cores(2),
        n_shards in prop::sample::select(vec![1usize, 2, 4]),
        assign_seed in prop::collection::vec(0usize..64, 8),
    ) {
        let windows = 2;
        let assign: Vec<usize> = (0..cores.len()).map(|i| assign_seed[i % assign_seed.len()]).collect();
        let snap = aggregate_under(&cores, windows, &assign, n_shards);
        prop_assert_eq!(snap.unit_labels.len(), LABELS.len());
        for (j, label) in snap.unit_labels.iter().enumerate() {
            let k = LABELS.iter().position(|l| l == label).unwrap();
            let want: u64 = cores.iter().flat_map(|c| c.raw.iter().map(|r| r[k])).sum();
            prop_assert_eq!(snap.unit_raw[j], want, "label {} rollup", label);
        }
        // Coverage: every core reported its latest window.
        prop_assert_eq!(snap.cores_reporting, cores.len() as u64);
        prop_assert_eq!(snap.window, windows as u64 - 1);
    }
}
