//! Exit-code contract of the `apollo` binary.
//!
//! CI scripts and the smoke jobs script against these codes: `0` on
//! success, `1` for runtime failures (missing model, unreachable
//! endpoint), `2` for usage errors. Every failure here must surface
//! *before* any heavy work starts, so the whole suite is fast.

use std::process::{Command, Output};

fn apollo(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_apollo"))
        .args(args)
        .output()
        .expect("spawn apollo")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("no exit code (killed by signal?)")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn no_arguments_is_a_usage_error() {
    let out = apollo(&[]);
    assert_eq!(code(&out), 2);
    assert!(stderr(&out).contains("usage:"), "{}", stderr(&out));
}

#[test]
fn unknown_subcommand_is_a_usage_error() {
    let out = apollo(&["frobnicate"]);
    assert_eq!(code(&out), 2);
}

#[test]
fn trailing_value_flag_is_a_named_error() {
    // Regression: `parse_flags` used to swallow a trailing value flag
    // silently, turning `--model` into a missing-flag usage error with
    // no hint. It must name the flag.
    let out = apollo(&["eval", "--config", "tiny", "--model"]);
    assert_eq!(code(&out), 2);
    assert!(
        stderr(&out).contains("--model requires a value"),
        "must name the flag: {}",
        stderr(&out)
    );
}

#[test]
fn bare_positional_argument_is_rejected() {
    let out = apollo(&["eval", "tiny"]);
    assert_eq!(code(&out), 2);
    assert!(
        stderr(&out).contains("unexpected argument `tiny`"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn eval_with_missing_model_fails_with_code_1() {
    let out = apollo(&[
        "eval",
        "--config",
        "tiny",
        "--model",
        "/nonexistent/model.json",
    ]);
    assert_eq!(code(&out), 1);
    assert!(
        stderr(&out).contains("/nonexistent/model.json"),
        "error must name the path: {}",
        stderr(&out)
    );
}

#[test]
fn profile_wrapper_propagates_nested_failure() {
    // `profile eval` wraps the command; the wrapper must not replace
    // the nested failure with success.
    let out = apollo(&[
        "profile",
        "eval",
        "--config",
        "tiny",
        "--model",
        "/nonexistent/model.json",
    ]);
    assert_eq!(code(&out), 1, "profile must propagate the inner exit code");
}

#[test]
fn monitor_with_missing_model_fails_with_code_1() {
    let out = apollo(&[
        "monitor",
        "--config",
        "tiny",
        "--model",
        "/nonexistent/model.json",
    ]);
    assert_eq!(code(&out), 1);
}

#[test]
fn monitor_without_model_is_a_usage_error() {
    let out = apollo(&["monitor", "--config", "tiny"]);
    assert_eq!(code(&out), 2);
}

#[test]
fn scrape_of_unreachable_endpoint_fails_with_code_1() {
    // Port 9 (discard) is never bound in the test environment, so the
    // connection is refused immediately.
    let out = apollo(&["scrape", "--addr", "127.0.0.1:9", "--path", "/metrics"]);
    assert_eq!(code(&out), 1);
    assert!(stderr(&out).contains("scrape"), "{}", stderr(&out));
}

#[test]
fn trace_lint_with_missing_input_fails_with_code_1() {
    let out = apollo(&["trace-lint", "--in", "/nonexistent/trace.jsonl"]);
    assert_eq!(code(&out), 1);
}
