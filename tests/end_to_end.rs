//! Cross-crate integration tests: the full APOLLO pipeline from RTL
//! design to trained model, OPM hardware, and droop analysis.

use apollo_suite::core::{
    benchgen::GaConfig, run_emulator_flow, run_ga, train_per_cycle, train_tau, window_nrmse,
    DesignContext, FeatureSpace, SelectionPenalty, TrainOptions,
};
use apollo_suite::cpu::{benchmarks, CpuConfig};
use apollo_suite::mlkit::metrics;
use apollo_suite::opm::droop::DroopAnalysis;
use apollo_suite::opm::{build_opm, AreaReport, QuantizedOpm};

/// The full automated flow of the paper's Figure 2, end to end on the
/// tiny design: GA data generation → feature collection → MCP selection
/// → per-cycle model → quantized OPM hardware → co-simulation.
#[test]
fn full_pipeline_ga_to_opm() {
    let config = CpuConfig::tiny();
    let ctx = DesignContext::new(&config);

    // 1. GA training data.
    let ga = run_ga(
        &ctx,
        &GaConfig {
            population: 10,
            generations: 5,
            body_len_min: 10,
            body_len_max: 48,
            reps: 8,
            warmup: 150,
            fitness_cycles: 200,
            threads: 2,
            ..GaConfig::default()
        },
    );
    assert!(ga.power_spread() > 1.5, "GA spread {}", ga.power_spread());

    // 2. Capture + train.
    let suite = ga.training_suite(20, 100, config.dram_words);
    let trace = ctx.capture_suite(&suite, 150);
    let fs = FeatureSpace::build(&trace.toggles);
    assert!(fs.n_candidates() > 100, "candidates {}", fs.n_candidates());
    let trained = train_per_cycle(
        &trace,
        ctx.netlist(),
        &fs,
        &TrainOptions {
            q_target: 24,
            ..TrainOptions::default()
        },
    );
    let model = trained.model;
    assert!(model.q() >= 12);
    assert!(model.monitored_fraction() < 0.01);

    // 3. Held-out accuracy.
    let test = ctx.capture_suite(&[(benchmarks::maxpwr_cpu(), 400)], 150);
    let pred = model.predict_full(&test.toggles);
    let y = test.labels();
    let r2 = metrics::r2(&y, &pred);
    assert!(r2 > 0.5, "held-out R² = {r2}");

    // 4. Quantize, build the OPM, co-simulate bit-exactly.
    let quant = QuantizedOpm::from_model(&model, 10, 8).expect("quantization");
    let hw = build_opm(&quant).expect("build_opm");
    let proxy = ctx.capture_bits(&benchmarks::maxpwr_cpu(), &model.bits(), 256, 150);
    let cosim = hw.cosim(&proxy.toggles);
    assert_eq!(cosim.sums, quant.raw_sums_proxy(&proxy.toggles));
    assert_eq!(cosim.windows, quant.window_outputs_proxy(&proxy.toggles));

    // 5. Hardware cost is small relative to the host.
    let report = AreaReport::from_areas(&hw, ctx.netlist());
    assert!(report.area_overhead < 0.08, "area {}", report.area_overhead);
}

/// MCP selection must beat Lasso selection at equal Q on a shared test
/// set (the paper's central claim, Figure 10's shape).
#[test]
fn mcp_beats_lasso_at_equal_q() {
    let config = CpuConfig::tiny();
    let ctx = DesignContext::new(&config);
    let mut suite = vec![
        (benchmarks::dhrystone(), 300),
        (benchmarks::maxpwr_cpu(), 300),
        (benchmarks::daxpy(), 300),
    ];
    // Random coverage like the GA set.
    use apollo_suite::cpu::benchmarks::random::{random_body, wrap_body, GenWeights};
    for seed in 0..10u64 {
        suite.push((
            benchmarks::Benchmark {
                name: format!("r{seed}"),
                program: wrap_body(&random_body(seed, 60, &GenWeights::default()), 8),
                data: vec![0xA5A5_5A5A; 128],
                cycles: 150,
            },
            150,
        ));
    }
    let trace = ctx.capture_suite(&suite, 150);
    let fs = FeatureSpace::build(&trace.toggles);
    let test = ctx.capture_suite(
        &[
            (benchmarks::saxpy_simd(), 400),
            (benchmarks::memcpy_l2(&config), 400),
        ],
        150,
    );
    let y = test.labels();

    let eval = |penalty| {
        let m = train_per_cycle(
            &trace,
            ctx.netlist(),
            &fs,
            &TrainOptions {
                q_target: 20,
                penalty,
                ..TrainOptions::default()
            },
        )
        .model;
        let pred = m.predict_full(&test.toggles);
        (m.q(), metrics::nrmse(&y, &pred))
    };
    let (q_mcp, e_mcp) = eval(SelectionPenalty::Mcp { gamma: 10.0 });
    let (q_lasso, e_lasso) = eval(SelectionPenalty::Lasso);
    assert!(q_mcp.abs_diff(q_lasso) <= 8, "q {q_mcp} vs {q_lasso}");
    assert!(
        e_mcp <= e_lasso * 1.15,
        "MCP NRMSE {e_mcp:.3} should not be much worse than Lasso {e_lasso:.3}"
    );
}

/// The multi-cycle APOLLOτ model must beat naive per-cycle averaging at
/// large windows (Figure 11's shape), and window error must fall as T
/// grows.
#[test]
fn multicycle_model_shape() {
    let config = CpuConfig::tiny();
    let ctx = DesignContext::new(&config);
    let suite = vec![
        (benchmarks::dhrystone(), 512),
        (benchmarks::maxpwr_cpu(), 512),
        (benchmarks::daxpy(), 512),
        (benchmarks::saxpy_simd(), 512),
    ];
    let trace = ctx.capture_suite(&suite, 150);
    let fs = FeatureSpace::build(&trace.toggles);
    let opts = TrainOptions {
        q_target: 20,
        ..TrainOptions::default()
    };
    let per_cycle = train_per_cycle(&trace, ctx.netlist(), &fs, &opts).model;
    let tau8 = train_tau(&trace, ctx.netlist(), &fs, 8, &opts);

    let test = ctx.capture_suite(&[(benchmarks::memcpy_l2(&config), 1024)], 150);
    let labels = test.labels();
    let pc_pred = per_cycle.predict_full(&test.toggles);

    let e1 = window_nrmse(&pc_pred, &labels, 1);
    let avg64 = apollo_suite::core::window_average(&pc_pred, 64);
    let e64_avg = window_nrmse(&avg64, &labels, 64);
    let tau64 = tau8.predict_windows(&test.toggles, 64);
    let e64_tau = window_nrmse(&tau64, &labels, 64);

    assert!(e64_avg < e1, "averaging helps: {e64_avg} < {e1}");
    assert!(
        e64_tau < e64_avg * 1.1,
        "APOLLOτ(8) at T=64 ({e64_tau:.3}) should be at least comparable to averaging ({e64_avg:.3})"
    );
}

/// Emulator-assisted flow + droop analysis on a long workload.
#[test]
fn emulator_flow_and_droop() {
    let config = CpuConfig::tiny();
    let ctx = DesignContext::new(&config);
    let suite = vec![
        (benchmarks::maxpwr_cpu(), 400),
        (benchmarks::dhrystone(), 400),
        (benchmarks::cache_miss(&config), 300),
        (benchmarks::saxpy_simd(), 400),
    ];
    let trace = ctx.capture_suite(&suite, 150);
    let fs = FeatureSpace::build(&trace.toggles);
    let model = train_per_cycle(
        &trace,
        ctx.netlist(),
        &fs,
        &TrainOptions {
            q_target: 24,
            ..TrainOptions::default()
        },
    )
    .model;

    let long = benchmarks::hmmer_like(&config, 6);
    let report = run_emulator_flow(&ctx, &model, &long, 4_000, 150);
    assert!(report.reduction_factor() > 50.0);
    assert!(report.inference_cycles_per_second() > 1e6);
    let r2 = metrics::r2(&report.ground_truth, &report.power_trace);
    assert!(r2 > 0.6, "long-trace R² = {r2}");

    // ΔI agreement between the (float) model trace and ground truth.
    let analysis = DroopAnalysis::analyze(&report.power_trace, &report.ground_truth, 0.95);
    assert!(analysis.pearson > 0.6, "ΔI Pearson = {}", analysis.pearson);
}

/// Models survive serialization (deploy/reload cycle).
#[test]
fn model_persistence_roundtrip() {
    let config = CpuConfig::tiny();
    let ctx = DesignContext::new(&config);
    let trace = ctx.capture_suite(&[(benchmarks::maxpwr_cpu(), 500)], 150);
    let fs = FeatureSpace::build(&trace.toggles);
    let model = train_per_cycle(
        &trace,
        ctx.netlist(),
        &fs,
        &TrainOptions {
            q_target: 12,
            ..TrainOptions::default()
        },
    )
    .model;
    let json = serde_json::to_string(&model).unwrap();
    let back: apollo_suite::core::ApolloModel = serde_json::from_str(&json).unwrap();
    let a = model.predict_full(&trace.toggles);
    let b = back.predict_full(&trace.toggles);
    for (x, y) in a.iter().zip(&b) {
        assert!((x - y).abs() < 1e-9);
    }
}
